//! End-to-end integration tests across the whole stack: workloads →
//! schedulers → simulated processor → Cuttlefish runtime, checking the
//! paper's headline claims at reduced scale.

use bench::{RunOutcome, Scenario, Setup};
use cuttlefish::{Config, Policy};
use workloads::ProgModel;

const SCALE: f64 = 0.2;

/// One single-node experiment, described and executed through the
/// Scenario builder — the workspace's single construction path.
fn run(name: &str, setup: Setup, model: ProgModel, cfg: Config) -> RunOutcome {
    Scenario::bench(name, model, SCALE)
        .policy(setup.node_policy(cfg))
        .build()
        .run()
        .single()
        .expect("single-node scenario")
        .clone()
}

#[test]
fn cuttlefish_saves_energy_on_memory_bound_benchmarks() {
    for name in ["Heat-irt", "MiniFE", "HPCCG", "AMG"] {
        let b = name;
        let base = run(b, Setup::Default, ProgModel::OpenMp, Config::default());
        let tuned = run(
            b,
            Setup::Cuttlefish(Policy::Both),
            ProgModel::OpenMp,
            Config::default(),
        );
        let saving = 1.0 - tuned.joules / base.joules;
        let slowdown = tuned.seconds / base.seconds - 1.0;
        assert!(
            saving > 0.09,
            "{name}: memory-bound saving should be large, got {:.1}%",
            saving * 100.0
        );
        assert!(
            slowdown < 0.10,
            "{name}: slowdown must stay small, got {:.1}%",
            slowdown * 100.0
        );
    }
}

#[test]
fn cuttlefish_saves_energy_on_compute_bound_benchmarks() {
    for name in ["UTS", "SOR-irt"] {
        let b = name;
        let base = run(b, Setup::Default, ProgModel::OpenMp, Config::default());
        let tuned = run(
            b,
            Setup::Cuttlefish(Policy::Both),
            ProgModel::OpenMp,
            Config::default(),
        );
        let saving = 1.0 - tuned.joules / base.joules;
        assert!(
            saving > 0.015,
            "{name}: compute-bound saving should be positive, got {:.1}%",
            saving * 100.0
        );
    }
}

#[test]
fn cuttlefish_core_loses_on_compute_bound_as_in_paper() {
    // §5.1: "Compared to the Default, Cuttlefish-Core required more
    // energy in UTS, SOR-irt, SOR-rt and SOR-ws" — because it pins the
    // uncore at max where the Default's firmware would have lowered it.
    let b = "UTS";
    let base = run(b, Setup::Default, ProgModel::OpenMp, Config::default());
    let core_only = run(
        b,
        Setup::Cuttlefish(Policy::CoreOnly),
        ProgModel::OpenMp,
        Config::default(),
    );
    assert!(
        core_only.joules > base.joules,
        "Cuttlefish-Core must lose energy on UTS: {} vs {} J",
        core_only.joules,
        base.joules
    );
}

#[test]
fn policy_ordering_matches_paper_on_memory_bound() {
    // For memory-bound benchmarks: Both > Uncore-only and Both >
    // Core-only in energy savings (§5.1).
    let b = "Heat-irt";
    let base = run(b, Setup::Default, ProgModel::OpenMp, Config::default());
    let joules = |p: Policy| {
        run(
            b,
            Setup::Cuttlefish(p),
            ProgModel::OpenMp,
            Config::default(),
        )
        .joules
    };
    let both = joules(Policy::Both);
    let core = joules(Policy::CoreOnly);
    let uncore = joules(Policy::UncoreOnly);
    assert!(both < core, "Both beats Core-only: {both} vs {core}");
    assert!(both < uncore, "Both beats Uncore-only: {both} vs {uncore}");
    assert!(
        core < base.joules && uncore < base.joules,
        "each alone still saves"
    );
}

#[test]
fn frequency_assignments_match_table2() {
    // Compute-bound: CFopt max, UFopt near min.
    let o = run(
        "UTS",
        Setup::Cuttlefish(Policy::Both),
        ProgModel::OpenMp,
        Config::default(),
    );
    let frequent: Vec<_> = o.report.iter().filter(|r| r.is_frequent()).collect();
    assert!(!frequent.is_empty());
    for r in &frequent {
        assert_eq!(r.cf_opt.map(|f| f.ghz()), Some(2.3), "UTS CFopt");
        assert!(
            r.uf_opt.map(|f| f.ghz()).unwrap_or(9.9) <= 1.4,
            "UTS UFopt near min"
        );
    }

    // Memory-bound: CFopt near min, UFopt at the knee.
    let o = run(
        "Heat-irt",
        Setup::Cuttlefish(Policy::Both),
        ProgModel::OpenMp,
        Config::default(),
    );
    let frequent: Vec<_> = o.report.iter().filter(|r| r.is_frequent()).collect();
    assert!(!frequent.is_empty());
    for r in &frequent {
        if let Some(cf) = r.cf_opt {
            assert!(cf.ghz() <= 1.4, "Heat CFopt near min, got {cf}");
        }
        if let Some(uf) = r.uf_opt {
            assert!(
                (2.0..=2.4).contains(&uf.ghz()),
                "Heat UFopt at the 2.2 GHz knee, got {uf}"
            );
        }
    }
}

#[test]
fn obliviousness_openmp_vs_hclib() {
    // §5.2: the same benchmark under a different programming model
    // yields similar savings and the same frequency conclusions.
    let b = "Heat-irt";
    let mut savings = Vec::new();
    for model in [ProgModel::OpenMp, ProgModel::HClib] {
        let base = run(b, Setup::Default, model, Config::default());
        let tuned = run(b, Setup::Cuttlefish(Policy::Both), model, Config::default());
        savings.push(1.0 - tuned.joules / base.joules);
        // Frequency conclusions identical across models.
        let freq = tuned
            .report
            .iter()
            .find(|r| r.is_frequent())
            .expect("frequent range");
        assert!(freq.cf_opt.map(|f| f.ghz()).unwrap_or(9.9) <= 1.4);
    }
    let diff = (savings[0] - savings[1]).abs();
    assert!(
        diff < 0.06,
        "savings across models should be similar: {:.3} vs {:.3}",
        savings[0],
        savings[1]
    );
}

#[test]
fn tinv_sensitivity_trend() {
    // Table 3: larger Tinv → no more saving than smaller Tinv (within
    // noise), and savings stay positive across the sweep.
    let b = "Heat-irt";
    let base = run(b, Setup::Default, ProgModel::OpenMp, Config::default());
    let mut savings = Vec::new();
    for tinv in [10u64, 40] {
        let tuned = run(
            b,
            Setup::Cuttlefish(Policy::Both),
            ProgModel::OpenMp,
            Config::default().with_tinv_ms(tinv),
        );
        savings.push(1.0 - tuned.joules / base.joules);
    }
    assert!(
        savings.iter().all(|&s| s > 0.05),
        "savings positive: {savings:?}"
    );
    assert!(
        savings[1] <= savings[0] + 0.03,
        "40ms should not beat 10ms materially: {savings:?}"
    );
}
