//! Proof that the `FrequencyController` refactor is behaviour
//! preserving: driving a fixed workload through the trait objects the
//! Scenario builder constructs yields bit-identical energy, timing,
//! and frequency residency to calling the concrete controllers'
//! inherent `on_quantum` methods — plus policy smoke tests through the
//! `cluster` path.

use bench::Scenario;
use cluster::{BspApp, Cluster, CommModel, SteppingMode};
use cuttlefish::controller::{NodePolicy, OracleEntry, OracleTable, PidGains};
use cuttlefish::driver::CuttlefishDriver;
use cuttlefish::{Config, Policy, TipiSlab};
use simproc::engine::{Chunk, SimProcessor};
use simproc::freq::{Freq, HASWELL_2650V3};
use simproc::governor::DefaultGovernor;
use simproc::perf::CostProfile;
use std::collections::BTreeMap;
use workloads::{ChunkPhase, SyntheticSpec, WorkloadSpec};

/// A phase-changing workload description: alternates memory-bound and
/// compute-bound chunks (~2 virtual seconds per phase at these sizes)
/// so the controllers actually move frequencies. `WorkloadSpec` is the
/// single construction path — both the concrete-controller arm and the
/// Scenario-built arm instantiate the identical stream from it.
fn phased() -> WorkloadSpec {
    phased_capped(CHUNKS)
}

fn phased_capped(chunks: u64) -> WorkloadSpec {
    WorkloadSpec::Synthetic(SyntheticSpec {
        phases: vec![ChunkPhase::streaming(2_000), ChunkPhase::compute(2_000)],
        total_chunks: Some(chunks),
    })
}

struct Fingerprint {
    energy_bits: u64,
    now_ns: u64,
    instructions_bits: u64,
    residency: BTreeMap<(u32, u32), u64>,
}

fn fingerprint(proc: &SimProcessor) -> Fingerprint {
    Fingerprint {
        energy_bits: proc.total_energy_joules().to_bits(),
        now_ns: proc.now_ns(),
        instructions_bits: proc.total_instructions().to_bits(),
        residency: proc.frequency_residency().clone(),
    }
}

fn assert_identical(direct: &Fingerprint, via_trait: &Fingerprint, label: &str) {
    assert_eq!(
        direct.energy_bits, via_trait.energy_bits,
        "{label}: energy must be bit-identical"
    );
    assert_eq!(direct.now_ns, via_trait.now_ns, "{label}: virtual time");
    assert_eq!(
        direct.instructions_bits, via_trait.instructions_bits,
        "{label}: instructions"
    );
    assert_eq!(
        direct.residency, via_trait.residency,
        "{label}: frequency residency map"
    );
}

const CHUNKS: u64 = 160_000; // ~8 virtual seconds across 20 cores

/// Run the Scenario-built arm: machine, workload, and controller all
/// come out of the builder; the stepping loop matches the direct arm's
/// plain per-quantum loop.
fn via_scenario(
    workload: WorkloadSpec,
    policy: NodePolicy,
) -> (Fingerprint, Vec<cuttlefish::daemon::NodeReport>) {
    let scenario = Scenario::workload(workload).policy(policy).build();
    let (mut proc, mut wl, mut ctrl) = scenario.build_single_node();
    while !proc.workload_drained(wl.as_mut()) {
        proc.step(wl.as_mut());
        ctrl.on_quantum(&mut proc);
    }
    let report = ctrl.report();
    (fingerprint(&proc), report)
}

#[test]
fn default_governor_trait_dispatch_is_bit_identical() {
    // Direct: the concrete type's inherent on_quantum.
    let direct = {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut governor = DefaultGovernor::new();
        let mut wl = phased().build(proc.n_cores(), 0);
        while !proc.workload_drained(wl.as_mut()) {
            proc.step(wl.as_mut());
            governor.on_quantum(&mut proc);
        }
        fingerprint(&proc)
    };
    // Via the Scenario builder and dynamic dispatch.
    let (via_trait, _) = via_scenario(phased(), NodePolicy::Default);
    assert_identical(&direct, &via_trait, "DefaultGovernor");
}

#[test]
fn cuttlefish_driver_trait_dispatch_is_bit_identical() {
    let direct = {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut driver = CuttlefishDriver::new(&proc, Config::default());
        let mut wl = phased().build(proc.n_cores(), 0);
        while !proc.workload_drained(wl.as_mut()) {
            proc.step(wl.as_mut());
            driver.on_quantum(&mut proc);
        }
        (fingerprint(&proc), driver.daemon().report())
    };
    let via_trait = via_scenario(phased(), NodePolicy::Cuttlefish(Config::default()));
    assert_identical(&direct.0, &via_trait.0, "CuttlefishDriver");
    // The daemon's learned state is identical too.
    assert_eq!(direct.1.len(), via_trait.1.len(), "same TIPI ranges");
    for (a, b) in direct.1.iter().zip(&via_trait.1) {
        assert_eq!(a.slab, b.slab);
        assert_eq!(a.cf_opt, b.cf_opt);
        assert_eq!(a.uf_opt, b.uf_opt);
        assert_eq!(a.occurrences, b.occurrences);
    }
}

#[test]
fn pinned_equals_manual_frequency_pinning() {
    // The old Figure 3 harness set frequencies by hand before the run;
    // the Pinned controller must reproduce that exactly.
    let (cf, uf) = (Freq(18), Freq(21));
    let direct = {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        proc.set_core_freq(cf);
        proc.set_uncore_freq(uf);
        let mut wl = phased_capped(CHUNKS / 4).build(proc.n_cores(), 0);
        while !proc.workload_drained(wl.as_mut()) {
            proc.step(wl.as_mut());
        }
        fingerprint(&proc)
    };
    let (via_trait, _) = via_scenario(phased_capped(CHUNKS / 4), NodePolicy::Pinned { cf, uf });
    assert_identical(&direct, &via_trait, "Pinned");
}

/// The virtual-clock layer must be observation-equivalent: a cluster
/// run with idle fast-forwarding enabled (the default) produces
/// bit-identical energy, timing, residency, and barrier accounting to
/// the historical quantum-by-quantum idle stepping, for every
/// controller policy — including across Cuttlefish `Tinv` ticks and
/// the firmware governor's idle ramp-down, both of which fire *during*
/// barrier waits.
#[test]
fn cluster_idle_fast_forward_is_bit_identical() {
    // Imbalanced app: long barrier waits every superstep (the §4.6
    // slack shape) — the path the event layer fast-forwards hardest.
    let app = BspApp::imbalanced(3, 8, 0, 3, small_bsp_chunks);
    for policy in [
        NodePolicy::Default,
        NodePolicy::Cuttlefish(Config {
            warmup_ns: 500_000_000,
            idle_guard: Some(0.3),
            ..Config::default()
        }),
        NodePolicy::Pinned {
            cf: Freq(12),
            uf: Freq(22),
        },
        // The oracle's Tinv ticks are scheduled events on the same
        // clock as the Cuttlefish driver's; its capacity must stop at
        // every tick and the tick must fire identically either way.
        NodePolicy::Oracle(OracleTable {
            slab_width: 0.004,
            tinv_ns: 20_000_000,
            entries: vec![
                OracleEntry {
                    slab: TipiSlab(0),
                    cf: Freq(23),
                    uf: Freq(12),
                },
                OracleEntry {
                    slab: TipiSlab(16),
                    cf: Freq(12),
                    uf: Freq(22),
                },
            ],
        }),
        // The PID loop only fast-forwards from its absorbing idle
        // fixed point (integral on the clamp, level on the floor), and
        // its replay must count quanta bit-identically.
        NodePolicy::PidUncore {
            config: Config {
                warmup_ns: 500_000_000,
                idle_guard: Some(0.3),
                ..Config::default()
            },
            gains: PidGains::default(),
        },
    ] {
        let run = |mode: SteppingMode| {
            let mut cluster = Cluster::new(3, policy.clone(), CommModel::default());
            cluster.set_stepping(mode);
            let outcome = cluster.run_program(&mut &app);
            let reports = cluster.reports();
            (outcome, cluster.residency(), reports)
        };
        let (fast, fast_res, fast_reports) = run(SteppingMode::EventDriven);
        let (slow, slow_res, slow_reports) = run(SteppingMode::Lockstep);
        let label = policy.name();
        assert_eq!(
            fast.joules.to_bits(),
            slow.joules.to_bits(),
            "{label}: energy"
        );
        assert_eq!(
            fast.seconds.to_bits(),
            slow.seconds.to_bits(),
            "{label}: wall time"
        );
        assert_eq!(
            fast.instructions.to_bits(),
            slow.instructions.to_bits(),
            "{label}: instructions"
        );
        assert_eq!(
            fast.barrier_wait_s.to_bits(),
            slow.barrier_wait_s.to_bits(),
            "{label}: barrier wait"
        );
        assert_eq!(fast.node_barrier_wait_s, slow.node_barrier_wait_s);
        assert_eq!(fast.node_joules, slow.node_joules);
        assert_eq!(fast_res, slow_res, "{label}: residency map");
        assert_eq!(fast_reports.len(), slow_reports.len());
        for (a, b) in fast_reports.iter().zip(&slow_reports) {
            assert_eq!(a.len(), b.len(), "{label}: report shape");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.cf_opt, y.cf_opt, "{label}: CFopt");
                assert_eq!(x.uf_opt, y.uf_opt, "{label}: UFopt");
                assert_eq!(x.occurrences, y.occurrences, "{label}: occurrences");
            }
        }
        // And the fast path genuinely skipped work on this shape.
        assert!(
            fast.stepped_quanta < slow.stepped_quanta,
            "{label}: fast-forward must reduce stepped quanta \
             ({} vs {})",
            fast.stepped_quanta,
            slow.stepped_quanta
        );
        assert_eq!(fast.total_quanta, slow.total_quanta, "{label}: clock");
    }
}

/// Per-node barrier accounting: the waits sum to the total, and in the
/// imbalanced app the overloaded node is the one that never waits.
#[test]
fn barrier_wait_is_attributed_per_node() {
    let app = BspApp::imbalanced(3, 6, 0, 3, small_bsp_chunks);
    let outcome = Cluster::new(3, NodePolicy::Default, CommModel::default()).run_program(&mut &app);
    assert_eq!(outcome.node_barrier_wait_s.len(), 3);
    let sum: f64 = outcome.node_barrier_wait_s.iter().sum();
    assert!(
        (sum - outcome.barrier_wait_s).abs() <= 1e-9 * outcome.barrier_wait_s.max(1.0),
        "per-node waits must sum to the total"
    );
    assert!(
        outcome.node_barrier_wait_s[0] < 1e-9,
        "the slow node sets the barrier and never waits"
    );
    assert!(outcome.node_barrier_wait_s[1] > 1.0);
    assert!(outcome.node_barrier_wait_s[2] > 1.0);
}

fn small_bsp_chunks() -> Vec<Chunk> {
    (0..40)
        .map(|_| {
            Chunk::new(30_000_000, 1_390_000, 590_000).with_profile(CostProfile::new(0.55, 12.0))
        })
        .collect()
}

/// The same §4.6 weighted-imbalance shape, constructed purely through
/// the Scenario builder (no hand-built `BspApp`): a 2-node synthetic
/// BSP scenario whose node 0 carries 3× the work must attribute the
/// wait to node 1 only.
#[test]
fn scenario_built_bsp_cluster_attributes_waits() {
    let outcome = Scenario::synthetic(SyntheticSpec {
        phases: vec![ChunkPhase {
            chunks: 40,
            instructions: 30_000_000,
            misses_local: 1_390_000,
            misses_remote: 590_000,
            cpi: 0.55,
            mlp: 12.0,
        }],
        total_chunks: None,
    })
    .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
    .bsp_weighted(6, 4.0e6, vec![3, 1])
    .build()
    .run();
    let cluster = outcome.cluster().expect("cluster outcome");
    let waits = &cluster.outcome.node_barrier_wait_s;
    assert_eq!(waits.len(), 2);
    assert!(waits[0] < 1e-9, "the loaded node never waits");
    assert!(waits[1] > 1.0, "the light node waits, got {}", waits[1]);
}

#[test]
fn core_only_and_uncore_only_smoke_through_cluster() {
    let app = BspApp::uniform(2, 12, small_bsp_chunks);
    for policy in [Policy::CoreOnly, Policy::UncoreOnly] {
        let cfg = Config {
            warmup_ns: 500_000_000,
            idle_guard: Some(0.3),
            ..Config::default()
        }
        .with_policy(policy);
        let mut cluster = Cluster::new(2, NodePolicy::Cuttlefish(cfg), CommModel::default());
        let outcome = cluster.run_program(&mut &app);
        assert!(outcome.seconds > 0.0 && outcome.joules > 0.0);
        // Uniform report path: every node reports, whatever the policy.
        let reports = cluster.reports();
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert!(
                !report.is_empty(),
                "{}: node report must not be empty",
                policy.name()
            );
        }
    }
}

#[test]
fn pinned_cluster_reports_uniformly() {
    let app = BspApp::uniform(2, 4, small_bsp_chunks);
    let mut cluster = Cluster::new(
        2,
        NodePolicy::Pinned {
            cf: Freq(12),
            uf: Freq(22),
        },
        CommModel::default(),
    );
    let outcome = cluster.run_program(&mut &app);
    assert!(outcome.joules > 0.0);
    for report in cluster.reports() {
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].cf_opt, Some(Freq(12)));
        assert_eq!(report[0].uf_opt, Some(Freq(22)));
    }
}
