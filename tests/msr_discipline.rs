//! Integration tests of the MSR access discipline: the Cuttlefish
//! runtime must only touch the machine through its allow-listed
//! session, and `stop()` must leave no trace — the MSR-SAFE contract
//! of the paper's methodology.

use cuttlefish::driver::CuttlefishDriver;
use cuttlefish::Config;
use simproc::engine::{Chunk, Workload};
use simproc::freq::{Freq, HASWELL_2650V3};
use simproc::msr::{self, Access, MsrFile, MsrSession};
use simproc::perf::CostProfile;
use simproc::SimProcessor;

struct Steady;
impl Workload for Steady {
    fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
        Some(Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0)))
    }
    fn is_done(&self) -> bool {
        false
    }
}

#[test]
fn stop_restores_all_control_registers() {
    let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
    // Pre-set a custom operating point (as a sysadmin might).
    proc.set_core_freq(Freq(18));
    proc.set_uncore_freq(Freq(25));
    let mut wl = Steady;
    proc.step(&mut wl);
    let perf_ctl_before = proc.msr_read(msr::IA32_PERF_CTL).unwrap();
    let uncore_before = proc.msr_read(msr::MSR_UNCORE_RATIO_LIMIT).unwrap();

    let mut driver = CuttlefishDriver::new(&proc, Config::default());
    for _ in 0..8_000 {
        proc.step(&mut wl);
        driver.on_quantum(&mut proc);
    }
    assert_ne!(
        proc.msr_read(msr::IA32_PERF_CTL).unwrap(),
        perf_ctl_before,
        "the daemon must actually have changed frequencies"
    );

    driver.stop(&mut proc);
    assert_eq!(proc.msr_read(msr::IA32_PERF_CTL).unwrap(), perf_ctl_before);
    assert_eq!(
        proc.msr_read(msr::MSR_UNCORE_RATIO_LIMIT).unwrap(),
        uncore_before
    );
}

#[test]
fn session_denies_unlisted_registers() {
    let proc = SimProcessor::new(HASWELL_2650V3.clone());
    let session = MsrSession::open(proc.msr_file(), &[(msr::IA32_PERF_CTL, Access::ReadWrite)]);
    // Energy counter not on this narrow list: denied even though the
    // device implements it.
    assert!(session
        .read(proc.msr_file(), msr::MSR_PKG_ENERGY_STATUS)
        .is_err());
}

#[test]
fn counters_are_never_writable_even_with_full_allowlist() {
    let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
    let session = MsrSession::open(proc.msr_file(), &MsrSession::cuttlefish_allowlist());
    for addr in [
        msr::MSR_PKG_ENERGY_STATUS,
        msr::SIM_TOR_INSERT_MISS_LOCAL,
        msr::SIM_TOR_INSERT_MISS_REMOTE,
        msr::IA32_FIXED_CTR0,
    ] {
        assert!(
            session.write(proc.msr_file_mut(), addr, 0).is_err(),
            "counter {addr:#x} must be read-only"
        );
    }
}

#[test]
fn rapl_wraparound_does_not_break_long_runs() {
    // 2^32 RAPL counts at 61 µJ/count = 262 kJ; at ~60 W that's >1 h of
    // virtual time — too slow to simulate directly, so inject energy
    // through the device interface and verify a profiling interval that
    // crosses the wrap still reports sane JPI.
    let mut file = MsrFile::new(2, 23, 30);
    file.add_energy(262_000.0); // just below the wrap
    file.add_inst_retired(0, 1e9);
    let before = simproc::profile::CounterSnapshot {
        energy_counts: file.read(msr::MSR_PKG_ENERGY_STATUS).unwrap(),
        inst_retired: file.read_core(0, msr::IA32_FIXED_CTR0).unwrap(),
        tor_local: 0,
        tor_remote: 0,
        t_ns: 0,
    };
    file.add_energy(300.0); // crosses 262144 J = 2^32 counts
    file.add_inst_retired(0, 1e8);
    let after = simproc::profile::CounterSnapshot {
        energy_counts: file.read(msr::MSR_PKG_ENERGY_STATUS).unwrap(),
        inst_retired: file
            .read_core(0, msr::IA32_FIXED_CTR0)
            .unwrap()
            .wrapping_add(0),
        tor_local: 0,
        tor_remote: 0,
        t_ns: 20_000_000,
    };
    assert!(
        after.energy_counts < before.energy_counts,
        "counter wrapped"
    );
    let s = simproc::profile::delta(&before, &after).expect("sample");
    let expect_jpi = 300.0 / 1e8;
    assert!(
        (s.jpi - expect_jpi).abs() / expect_jpi < 0.01,
        "JPI across the wrap: {} vs {}",
        s.jpi,
        expect_jpi
    );
}
