//! Offline shim for `proptest`: the strategy/runner surface the
//! workspace's property tests use.
//!
//! Differences from the real crate: cases are sampled uniformly (no
//! size ramping), failing inputs are not shrunk (the panic message
//! carries the case number and the assertion's own formatting), and
//! `ProptestConfig` fields other than `cases` are ignored. Seeds are
//! derived deterministically from the test name, so runs are
//! reproducible.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct OneOf<S>(pub Vec<S>);

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // f64 only, matching the shimmed rand (no f32 sampling in the tree).
    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Deterministic test RNG (SplitMix64 over a name-derived seed).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's name so every test draws an independent
        /// but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure from any displayable reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Runner configuration. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; the shim keeps it.
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; failures abort only the current case's
/// closure via `return Err(..)`, exactly like the real macro.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($strategy),+])
    };
}

/// The property-test entry point: declares `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {} failed: {e}", config.cases);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec((0u32..5, 1.0f64..2.0).prop_map(|(a, b)| a as f64 * b), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!((0.0..10.0).contains(&x), "got {x}");
            }
        }

        #[test]
        fn oneof_picks_an_arm(p in prop_oneof![Just(1), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case 0")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
