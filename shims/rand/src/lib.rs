//! Offline shim for `rand`: the `SmallRng`/`Rng`/`SeedableRng` surface
//! the workloads and schedulers use, backed by SplitMix64.
//!
//! Deterministic per seed (which is what the deterministic simulation
//! relies on), but the value stream differs from the real crate's
//! `SmallRng` — callers must not depend on specific draws.

pub mod rngs {
    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng { state: seed }
    }
}

/// The raw-output layer of the `Rng` stack.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A range random values can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// f64 only: an f32 impl would make integer-literal-free call sites like
// `x * rng.gen_range(0.35..0.65)` ambiguous, and the workspace samples
// no f32.
impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
    }
}
