//! Offline shim for `serde`: marker traits only.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! model types to keep them serialization-ready, but nothing in the
//! tree actually drives a serializer, so empty marker traits are a
//! faithful stand-in. The derive macros (re-exported here exactly like
//! the real crate's `derive` feature) emit empty impls of these traits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
