//! Offline shim for `serde_derive`: the derives emit empty marker-trait
//! impls (`impl serde::Serialize for T {}`), which is all the workspace
//! needs — nothing actually serializes, the derives only document
//! intent and keep the source compatible with the real crate.

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the deriving type, panicking on generics (no
/// type in this workspace derives serde traits generically).
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Ident(name) => return name.to_string(),
                        _ => continue,
                    }
                }
            }
        }
    }
    panic!("serde shim derive: could not find a struct/enum name");
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input.clone());
    if input
        .into_iter()
        .any(|tt| matches!(&tt, TokenTree::Punct(p) if p.as_char() == '<'))
    {
        panic!(
            "serde shim derive: generic types are not supported (deriving {trait_name} for {name})"
        );
    }
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
