//! Offline shim for `crossbeam`: the `deque` module's
//! Worker/Stealer/Injector triple, implemented over `Mutex<VecDeque>`.
//!
//! Semantics match crossbeam-deque as the workspace uses it: the owner
//! pushes and pops LIFO at the bottom of its deque, stealers take FIFO
//! from the top, and the injector is a shared FIFO whose
//! `steal_batch_and_pop` moves a batch into the destination worker.
//! The lock-based implementation trades crossbeam's lock-freedom for
//! simplicity; contention behaviour differs but the scheduling
//! discipline (child-first local, FIFO steal) is identical.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    pub enum Steal<T> {
        /// Nothing to steal.
        Empty,
        /// One stolen item.
        Success(T),
        /// Lost a race; try again. (The mutex-based shim never returns
        /// this, but callers match on it.)
        Retry,
    }

    fn lock<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        q.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The owner's end of a work-stealing deque.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops LIFO (child-first).
        pub fn new_lifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push onto the owner's end (the bottom).
        pub fn push(&self, item: T) {
            lock(&self.q).push_back(item);
        }

        /// Pop from the owner's end (LIFO).
        pub fn pop(&self) -> Option<T> {
            lock(&self.q).pop_back()
        }

        /// A handle other threads use to steal from the top.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.q).is_empty()
        }
    }

    /// The thieves' end of a worker's deque (FIFO).
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal one item from the top of the victim's deque.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.q).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A shared FIFO queue all workers can inject into and steal from.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Push an item onto the global queue.
        pub fn push(&self, item: T) {
            lock(&self.q).push_back(item);
        }

        /// Steal one item.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.q).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steal a batch into `dest`'s deque, returning the first item.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = lock(&self.q);
            let first = match q.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            let batch = (q.len() / 2).min(16);
            if batch > 0 {
                let mut dq = lock(&dest.q);
                for _ in 0..batch {
                    match q.pop_front() {
                        Some(t) => dq.push_back(t),
                        None => break,
                    }
                }
            }
            Steal::Success(first)
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.q).is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_is_lifo_stealer_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn injector_batch_moves_items() {
            let inj = Injector::new();
            let w = Worker::new_lifo();
            for i in 0..10 {
                inj.push(i);
            }
            // First pop returns 0, and a batch lands in the worker.
            assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success(0)));
            assert!(!w.is_empty());
            let mut seen = 0;
            while w.pop().is_some() {
                seen += 1;
            }
            while let Steal::Success(_) = inj.steal() {
                seen += 1;
            }
            assert_eq!(seen, 9, "no items lost");
        }
    }
}
