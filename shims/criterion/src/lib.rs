//! Offline shim for `criterion`: times each benchmark for a fixed
//! budget and prints mean ns/iter. No statistics, baselines, or plots;
//! the `--test`/`--quick` flags run every benchmark once (so bench
//! targets stay cheap to smoke-test).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API parity; the
/// shim always runs setup once per routine call and times only the
/// routine).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Target measurement time per benchmark.
const BUDGET: Duration = Duration::from_millis(200);

/// The benchmark harness.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            quick: self.quick,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters > 0 {
            b.total.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        println!("{name:<40} {mean_ns:>14.1} ns/iter  ({} iters)", b.iters);
        self
    }
}

/// Passed to the benchmark closure; accumulates timing.
pub struct Bencher {
    quick: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.total += elapsed;
        self.iters += iters;
    }

    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up + calibration: grow the batch until it is measurable.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.record(dt, batch);
            if self.quick {
                return;
            }
            if self.total >= BUDGET {
                return;
            }
            if dt < Duration::from_millis(10) && batch < u64::MAX / 2 {
                batch *= 2;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; only the routine
    /// is on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.record(t0.elapsed(), 1);
            if self.quick || self.total >= BUDGET {
                return;
            }
        }
    }
}

/// Declare a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut b = Bencher {
            quick: true,
            total: Duration::ZERO,
            iters: 0,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn iter_batched_times_routine() {
        let mut b = Bencher {
            quick: true,
            total: Duration::ZERO,
            iters: 0,
        };
        b.iter_batched(
            || vec![1, 2, 3],
            |v| v.into_iter().sum::<i32>(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.iters, 1);
    }
}
