//! Offline shim for `parking_lot`: a non-poisoning [`Mutex`] built on
//! `std::sync::Mutex`. Matches the parking_lot calling convention the
//! workspace uses — `lock()` returns the guard directly (a poisoned
//! std mutex is recovered rather than propagated, which is exactly
//! parking_lot's no-poisoning semantics).

use std::fmt;

/// Guard type: parking_lot's guard is its own type, but the std guard
/// has the same Deref/DerefMut surface.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Non-poisoning mutual exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
