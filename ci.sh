#!/usr/bin/env bash
# CI entry point. Mirrors what a hosted workflow would run; keep this
# the single source of truth for "is the tree green" — the GitHub
# workflow (.github/workflows/ci.yml) is a thin caller.
#
# Usage: ./ci.sh [--quick]
#   --quick   PR-time mode: skip the full release workspace build and
#             the examples/bench compile checks (the test build and the
#             release bench bins still cover those crates).
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *)
      echo "ci.sh: unknown argument '$arg' (usage: ./ci.sh [--quick])" >&2
      exit 2
      ;;
  esac
done

# Name the failing stage: a bare `set -e` exit says nothing about which
# cargo invocation died, which made red CI runs needlessly slow to read.
STAGE="startup"
stage() {
  STAGE="$1"
  echo "== $STAGE"
}
trap 'echo "ci.sh: FAILED in stage \"$STAGE\"" >&2' ERR

# Determinism: never let a CI run silently rewrite Cargo.lock (the
# registry is offline here, but --locked keeps the invariant explicit
# and matches what a hosted runner should do).
LOCKED=--locked

if [[ "$QUICK" -eq 0 ]]; then
  stage "tier-1 build: release"
  cargo build --release "$LOCKED"
fi

stage "workspace tests (strict superset of the tier-1 'cargo test -q')"
cargo test --workspace -q "$LOCKED"

stage "formatting"
cargo fmt --check

stage "clippy (warnings are errors)"
cargo clippy --workspace --all-targets "$LOCKED" -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  stage "examples and bench targets compile"
  cargo build --examples "$LOCKED"
  cargo build -p bench --benches "$LOCKED"
fi

stage "bench bins build: release"
cargo build --release -p bench --bins "$LOCKED"

stage "bench smoke"
# Every figure/table bin runs its reduced grid and writes a typed JSON
# artifact; grid_aggregate re-parses each one (schema gate) and emits
# the BENCH_smoke.json trajectory point at the repo root.
SMOKE_DIR=target/bench-smoke
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
BINS="fig2 fig3 fig10 fig11 table1 table2 table3 ablation residency debug_report"
for bin in $BINS; do
  stage "bench smoke: $bin"
  cargo run --release -q -p bench "$LOCKED" --bin "$bin" -- \
    --smoke --json "$SMOKE_DIR/$bin.json" >/dev/null
done
stage "bench smoke: validate + aggregate"
cargo run --release -q -p bench "$LOCKED" --bin grid_aggregate -- \
  --out BENCH_smoke.json "$SMOKE_DIR"/*.json

stage "bench smoke: trajectory gate"
# The committed BENCH_smoke.json is the perf-trajectory data point. The
# metrics are deterministic virtual quantities, so a diff here means
# the change moved a number — commit the regenerated file alongside the
# change that moved it (that is how the trajectory accrues points).
if git -C . rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  if ! git diff --exit-code -- BENCH_smoke.json; then
    echo "ci.sh: BENCH_smoke.json drifted from the committed trajectory point;" >&2
    echo "       commit the regenerated file with the change that moved it." >&2
    false
  fi
fi

echo "CI green."
