#!/usr/bin/env bash
# CI entry point. Mirrors what a hosted workflow would run; keep this
# the single source of truth for "is the tree green" — the GitHub
# workflow (.github/workflows/ci.yml) is a thin caller.
#
# Usage: ./ci.sh [--quick]
#   --quick   PR-time mode: skip the full release workspace build and
#             the examples/bench compile checks (the test build and the
#             release bench bins still cover those crates).
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *)
      echo "ci.sh: unknown argument '$arg' (usage: ./ci.sh [--quick])" >&2
      exit 2
      ;;
  esac
done

# Name the failing stage: a bare `set -e` exit says nothing about which
# cargo invocation died, which made red CI runs needlessly slow to read.
STAGE="startup"
stage() {
  STAGE="$1"
  echo "== $STAGE"
}
# (the kill reaps the serve-smoke daemon if a gate fails while it is
# up — otherwise the orphan outlives the script and holds CI open)
trap 'echo "ci.sh: FAILED in stage \"$STAGE\"" >&2; kill "${SERVE_PID:-}" 2>/dev/null || true' ERR

# Determinism: never let a CI run silently rewrite Cargo.lock (the
# registry is offline here, but --locked keeps the invariant explicit
# and matches what a hosted runner should do).
LOCKED=--locked

if [[ "$QUICK" -eq 0 ]]; then
  stage "tier-1 build: release"
  cargo build --release "$LOCKED"
fi

stage "workspace tests (strict superset of the tier-1 'cargo test -q')"
cargo test --workspace -q "$LOCKED"

stage "formatting"
cargo fmt --check

stage "docs (rustdoc, warnings are errors)"
# Part of the quick path: the Scenario API is documentation-driven
# (scenario files are written against the rustdoc schema), so broken
# intra-doc links or malformed docs fail CI.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q "$LOCKED"

stage "clippy (warnings are errors)"
cargo clippy --workspace --all-targets "$LOCKED" -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  stage "examples and bench targets compile"
  cargo build --examples "$LOCKED"
  cargo build -p bench --benches "$LOCKED"
fi

stage "bench bins build: release"
cargo build --release -p bench --bins "$LOCKED"
cargo build --release -p serve --bins "$LOCKED"

stage "fuzz smoke"
# Differential six-governor fuzzing over the fixed-seed campaign (see
# docs/FUZZING.md): zero invariant violations, and the report must be
# byte-identical regardless of how the cases are sharded across
# workers — the determinism contract the whole subsystem rests on.
# (The committed regression corpus itself replays under `cargo test`
# via the fuzz_regressions test above.)
FUZZ_DIR=target/fuzz-smoke
rm -rf "$FUZZ_DIR"
mkdir -p "$FUZZ_DIR"
FUZZ_CASES=200
[[ "$QUICK" -eq 1 ]] && FUZZ_CASES=32
./target/release/scenario_fuzz --seed 0xC0FFEE --cases "$FUZZ_CASES" \
  --json "$FUZZ_DIR/campaign.json"
./target/release/scenario_fuzz --seed 0xC0FFEE --cases 32 --shards 1 \
  --json "$FUZZ_DIR/shard1.json"
./target/release/scenario_fuzz --seed 0xC0FFEE --cases 32 --shards 4 \
  --json "$FUZZ_DIR/shard4.json"
cmp "$FUZZ_DIR/shard1.json" "$FUZZ_DIR/shard4.json"

stage "scenario file check"
# Any cell is runnable from a checked-in scenario file without
# recompiling; the committed expected artifact pins the contract that
# a scenario file reproduces its grid cell bit for bit from JSON
# alone (the output lands outside $SMOKE_DIR so the aggregate glob
# below never picks it up).
SCEN_DIR=target/scenario-check
rm -rf "$SCEN_DIR"
mkdir -p "$SCEN_DIR"
# (--no-store: this stage gates the computation itself, so it must
# never be satisfied from a cache, and must not pollute the default
# store root.)
cargo run --release -q -p bench "$LOCKED" --bin fig2 -- \
  --scenario scenarios/fig2-uts-default.json --no-store \
  --json "$SCEN_DIR/fig2-uts-default.json" >/dev/null
cargo run --release -q -p bench "$LOCKED" --bin bench_diff -- \
  --exact scenarios/fig2-uts-default.expected.json "$SCEN_DIR/fig2-uts-default.json"
# The oracle governor from a file: the committed scenario carries the
# operating-point table inline, and its artifact must be bit-identical
# to the fig10 smoke grid's derived-table Oracle cell.
cargo run --release -q -p bench "$LOCKED" --bin fig10 -- \
  --scenario scenarios/fig10-heat-oracle.json --no-store \
  --json "$SCEN_DIR/fig10-heat-oracle.json" >/dev/null
cargo run --release -q -p bench "$LOCKED" --bin bench_diff -- \
  --exact scenarios/fig10-heat-oracle.expected.json "$SCEN_DIR/fig10-heat-oracle.json"

stage "bench smoke"
# Every figure/table bin runs its reduced grid and writes a typed JSON
# artifact plus a .timing sidecar (wall-clock + stepped/total quanta —
# the bins also print a before/after stepping-rate line: under the old
# pure quantum loop every virtual quantum was an engine step);
# grid_aggregate re-parses each artifact (schema gate) and emits the
# candidate trajectory point with the timing folded into `meta`.
SMOKE_DIR=target/bench-smoke
SMOKE_STORE=target/bench-smoke-store
rm -rf "$SMOKE_DIR" "$SMOKE_STORE"
mkdir -p "$SMOKE_DIR"
BINS="fig2 fig3 fig10 fig11 table1 table2 table3 ablation residency debug_report"
# The cold pass runs the built binaries directly (no cargo-run shim:
# the warm-cache ratio below compares this wall-clock against a cached
# re-run, so both passes must measure the bins, not cargo startup) and
# populates a fresh result store.
COLD_START=$(date +%s%N)
for bin in $BINS; do
  stage "bench smoke: $bin (cold)"
  "./target/release/$bin" \
    --smoke --store "$SMOKE_STORE" --json "$SMOKE_DIR/$bin.json" >/dev/null
done
COLD_NS=$(($(date +%s%N) - COLD_START))
stage "bench smoke: validate + aggregate"
# (the *.json glob expands before the aggregate file exists, and the
# .timing sidecars end in .timing, so exactly the ten bin artifacts match)
#
# The fast-forward floors keep the analytic advances engaged — a
# regression to per-quantum stepping leaves every artifact byte
# unchanged, so only these counters can catch it. fig3 is all pinned
# frequencies (its busy steady state fast-forwards almost entirely:
# thousands-fold). ablation's floor is deliberately below the PR's
# 10x target: three of its cells run the per-quantum PID uncore
# governor, which by the controller contract can never grant busy
# capacity (no closed-form fixed point), so the grid-level ratio is
# structurally bounded near 2.5x at smoke scale. residency carries the
# 256-node fleet cell, whose barrier/exchange-dominated timelines the
# event scheduler must keep fast-forwarding (PR 7's floor).
cargo run --release -q -p bench "$LOCKED" --bin grid_aggregate -- \
  --out "$SMOKE_DIR/BENCH_smoke.json" \
  --require-fast-forward fig3=8 --require-fast-forward ablation=2 \
  --require-fast-forward residency=5 \
  "$SMOKE_DIR"/*.json

stage "bench smoke: trajectory diff (informational)"
# Tolerance-band view of how far this tree moved the committed
# trajectory point — never fails CI; the exact gate below decides.
cargo run --release -q -p bench "$LOCKED" --bin bench_diff -- \
  BENCH_smoke.json "$SMOKE_DIR/BENCH_smoke.json" || true

stage "bench smoke: trajectory gate"
# The committed BENCH_smoke.json is the perf-trajectory data point. Its
# `grids` metrics are deterministic virtual quantities, so any drift
# means the change moved a number — commit the regenerated file
# alongside the change that moved it (that is how the trajectory
# accrues points). The run-dependent `meta.timing` section is excluded
# from the gate, which is what lets the committed point carry
# wall-clock metadata without going stale every run.
GATE_RC=0
cargo run --release -q -p bench "$LOCKED" --bin bench_diff -- \
  --exact BENCH_smoke.json "$SMOKE_DIR/BENCH_smoke.json" || GATE_RC=$?
if [[ "$GATE_RC" -eq 1 ]]; then
  cp "$SMOKE_DIR/BENCH_smoke.json" BENCH_smoke.json
  echo "ci.sh: BENCH_smoke.json drifted from the committed trajectory point;" >&2
  echo "       the regenerated file has been copied over it — commit it with" >&2
  echo "       the change that moved it." >&2
  false
elif [[ "$GATE_RC" -ne 0 ]]; then
  # Exit 2 = unreadable/wrong-schema baseline, not drift: keep the
  # committed file as evidence and surface bench_diff's own error.
  echo "ci.sh: bench_diff could not compare the trajectory points (rc=$GATE_RC)" >&2
  false
fi

stage "bench smoke: warm cache"
# The whole suite again against the store the cold pass just
# populated. Three gates: every grid 100% hits (a single miss means a
# cell's identity or the code fingerprint is unstable between
# identical invocations), byte-identical artifacts (a hit must
# reproduce the miss path exactly), and >=10x grid wall-clock (the
# point of the store; a broken load path that silently recomputes
# passes the first two gates but not this one). The ratio is taken
# over the per-grid wall-clock the aggregates record in meta.timing —
# at smoke scale the end-to-end suite time is dominated by ten
# process startups in both passes, so it stays informational.
WARM_DIR=target/bench-warm
rm -rf "$WARM_DIR"
mkdir -p "$WARM_DIR"
WARM_START=$(date +%s%N)
for bin in $BINS; do
  "./target/release/$bin" \
    --smoke --store "$SMOKE_STORE" --json "$WARM_DIR/$bin.json" >/dev/null
done
WARM_NS=$(($(date +%s%N) - WARM_START))
for bin in $BINS; do
  ./target/release/bench_diff --exact "$SMOKE_DIR/$bin.json" "$WARM_DIR/$bin.json"
done
HIT_FLAGS=()
for bin in $BINS; do
  HIT_FLAGS+=(--require-hit-rate "$bin=1")
done
./target/release/grid_aggregate --out "$WARM_DIR/BENCH_smoke.json" \
  "${HIT_FLAGS[@]}" "$WARM_DIR"/*.json
sum_wall_ms() { awk '/"wall_ms"/ {gsub(/,/, ""); s += $2} END {print s}' "$1"; }
COLD_MS=$(sum_wall_ms "$SMOKE_DIR/BENCH_smoke.json")
WARM_MS=$(sum_wall_ms "$WARM_DIR/BENCH_smoke.json")
echo "warm cache: grids cold ${COLD_MS} ms, warm ${WARM_MS} ms;" \
  "suite end-to-end cold $((COLD_NS / 1000000)) ms, warm $((WARM_NS / 1000000)) ms"
if ! awk -v c="$COLD_MS" -v w="$WARM_MS" 'BEGIN { exit !(w > 0 && c >= 10 * w) }'; then
  echo "ci.sh: warm grids ran less than 10x faster than cold (${COLD_MS} ms vs ${WARM_MS} ms)" >&2
  false
fi

stage "serve smoke"
# The daemon against the store the smoke passes just warmed: every
# checked-in scenario file must be served entirely from the store
# (100% hits — the daemon never touches the simulator), each artifact
# byte-identical to the committed expected artifact (the same bytes
# the batch `--scenario --json` path writes), and a graceful
# `shutdown` must drain the daemon to a 0 exit. This is the serving
# half of the cache contract the warm-cache stage gates for the bins.
SERVE_DIR=target/serve-smoke
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
# Pre-warm through the *batch* path: not every scenario cell is in the
# grid-warmed store (fig10-heat-oracle carries its operating-point
# table inline, so its identity differs from the fig10 grid's
# derive-form Oracle cell — identical artifact bytes, distinct store
# key). One `--scenario --store` run per file commits whatever the
# grids did not, and turns the all-hits gate below into the sharing
# contract itself: the daemon must hit entries committed by the grid
# pass (fig2) and by the batch scenario path (fig10) alike.
for scen in scenarios/*.json; do
  [[ "$scen" == *.expected.json ]] && continue
  # regression-* files are the fuzz corpus (tests/fuzz_regressions.rs),
  # not figure scenarios: no bin prefix, no expected artifact, and
  # synthetic workloads are store-refused by design.
  [[ "$scen" == scenarios/regression-* ]] && continue
  name=$(basename "$scen" .json)
  "./target/release/${name%%-*}" --scenario "$scen" --store "$SMOKE_STORE" \
    --json "$SERVE_DIR/warm-$name.json" >/dev/null
done
PORT_FILE="$SERVE_DIR/addr"
./target/release/cuttlefish-serve serve \
  --addr 127.0.0.1:0 --store "$SMOKE_STORE" --port-file "$PORT_FILE" \
  > "$SERVE_DIR/daemon.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [[ -f "$PORT_FILE" ]] && break
  sleep 0.05
done
if [[ ! -f "$PORT_FILE" ]]; then
  echo "ci.sh: daemon never wrote its port file; log:" >&2
  cat "$SERVE_DIR/daemon.log" >&2
  false
fi
SERVE_ADDR=$(cat "$PORT_FILE")
for scen in scenarios/*.json; do
  [[ "$scen" == *.expected.json ]] && continue
  [[ "$scen" == scenarios/regression-* ]] && continue
  name=$(basename "$scen" .json)
  stage "serve smoke: $name"
  ./target/release/cuttlefish-serve submit "$scen" \
    --addr "$SERVE_ADDR" --wait --json "$SERVE_DIR/$name.json"
  cmp "scenarios/$name.expected.json" "$SERVE_DIR/$name.json"
done
stage "serve smoke: all hits + graceful shutdown"
./target/release/cuttlefish-serve stats --addr "$SERVE_ADDR" --require-all-hits
./target/release/cuttlefish-serve shutdown --addr "$SERVE_ADDR"
wait "$SERVE_PID"
SERVE_PID=

if [[ "$QUICK" -eq 0 ]]; then
  stage "full-scale oracle gate (informational)"
  # Paper §5's central claim at CUTTLEFISH_SCALE=1.0: the online search
  # must land within a small energy gap of the static oracle. A few
  # seconds in release mode, but informational for now — scale-1.0
  # behaviour is still being tightened, so a red gap is a loud warning
  # in the log, not a red build.
  cargo test --release -q -p bench "$LOCKED" --test oracle_gate -- --ignored ||
    echo "ci.sh: full-scale oracle gate FAILED (informational only)" >&2
fi

echo "CI green."
