#!/usr/bin/env bash
# CI entry point. Mirrors what a hosted workflow would run; keep this
# the single source of truth for "is the tree green".
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1 build: release"
cargo build --release

echo "== workspace tests (strict superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

echo "== formatting"
cargo fmt --check

echo "== clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== examples and bench targets compile"
cargo build --examples
cargo build -p bench --benches --bins

echo "CI green."
