//! Domain scenario: an iterative stencil solver (the paper's Heat
//! benchmark) under all four execution setups.
//!
//! Shows what a user of the library sees: the same solver, four energy
//! outcomes — and why adapting both frequency domains beats adapting
//! either alone. Each run is one declarative [`Scenario`] differing
//! only in its node policy.
//!
//! Run with: `cargo run --release --example stencil_solver`

use bench::Scenario;
use cuttlefish::controller::NodePolicy;
use cuttlefish::{Config, Policy};
use workloads::ProgModel;

fn run_one(policy: NodePolicy) -> (f64, f64) {
    let outcome = Scenario::bench("Heat-ws", ProgModel::OpenMp, 0.25)
        .policy(policy)
        .seed(7)
        .build()
        .run();
    (outcome.seconds(), outcome.joules())
}

fn main() {
    println!("Heat diffusion, 32K x 32K grid (scaled), work-sharing, 20 cores\n");
    let (t0, e0) = run_one(NodePolicy::Default);
    println!("{:<18} {:>8.2} s {:>8.0} J  (baseline)", "Default", t0, e0);
    for policy in [Policy::Both, Policy::CoreOnly, Policy::UncoreOnly] {
        let node_policy = NodePolicy::Cuttlefish(Config::default().with_policy(policy));
        let name = node_policy.name();
        let (t, e) = run_one(node_policy);
        println!(
            "{:<18} {:>8.2} s {:>8.0} J  energy {:+.1}%, time {:+.1}%",
            name,
            t,
            e,
            (1.0 - e / e0) * 100.0,
            (t / t0 - 1.0) * 100.0,
        );
    }
    println!("\nThe paper's observation: for this memory-bound solver the energy");
    println!("win comes from lowering *both* the core clock (cores stall on DRAM");
    println!("anyway) and the uncore clock (2.2 GHz sustains the same bandwidth");
    println!("as 3.0 GHz) — either alone leaves a third of the saving behind.");
}
