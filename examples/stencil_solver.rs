//! Domain scenario: an iterative stencil solver (the paper's Heat
//! benchmark) under all four execution setups.
//!
//! Shows what a user of the library sees: the same solver, four energy
//! outcomes — and why adapting both frequency domains beats adapting
//! either alone.
//!
//! Run with: `cargo run --release --example stencil_solver`

use cuttlefish::controller::NodePolicy;
use cuttlefish::{Config, Policy};
use simproc::freq::HASWELL_2650V3;
use simproc::SimProcessor;
use workloads::{heat, ProgModel, Scale, Style};

fn run_one(policy: &NodePolicy) -> (f64, f64) {
    let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
    let bench = heat::benchmark(Style::WorkSharing, Scale(0.25));
    let mut wl = bench.instantiate(ProgModel::OpenMp, proc.n_cores(), 7);

    let mut controller = policy.build(&mut proc);

    while !proc.workload_drained(wl.as_mut()) {
        proc.step(wl.as_mut());
        controller.on_quantum(&mut proc);
    }
    (proc.now_seconds(), proc.total_energy_joules())
}

fn main() {
    println!("Heat diffusion, 32K x 32K grid (scaled), work-sharing, 20 cores\n");
    let (t0, e0) = run_one(&NodePolicy::Default);
    println!("{:<18} {:>8.2} s {:>8.0} J  (baseline)", "Default", t0, e0);
    for policy in [Policy::Both, Policy::CoreOnly, Policy::UncoreOnly] {
        let node_policy = NodePolicy::Cuttlefish(Config::default().with_policy(policy));
        let (t, e) = run_one(&node_policy);
        println!(
            "{:<18} {:>8.2} s {:>8.0} J  energy {:+.1}%, time {:+.1}%",
            node_policy.name(),
            t,
            e,
            (1.0 - e / e0) * 100.0,
            (t / t0 - 1.0) * 100.0,
        );
    }
    println!("\nThe paper's observation: for this memory-bound solver the energy");
    println!("win comes from lowering *both* the core clock (cores stall on DRAM");
    println!("anyway) and the uncore clock (2.2 GHz sustains the same bandwidth");
    println!("as 3.0 GHz) — either alone leaves a third of the saving behind.");
}
