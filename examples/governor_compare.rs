//! Watch two governors drive the same phase-changing application.
//!
//! AMG cycles through fine (memory-bound) and coarse (cache-resident)
//! multigrid levels — the hardest case for a tuner. This example
//! prints a side-by-side per-second view of the Default governor and
//! Cuttlefish: frequencies, power, and what the daemon has learned.
//! Both runs are the same Scenario description with one field changed.
//!
//! Run with: `cargo run --release --example governor_compare`

use bench::Scenario;
use cuttlefish::controller::NodePolicy;
use cuttlefish::Config;
use workloads::ProgModel;

struct Row {
    t: f64,
    cf: f64,
    uf: f64,
    watts: f64,
}

fn run(policy: NodePolicy) -> (Vec<Row>, f64, f64) {
    let scenario = Scenario::bench("AMG", ProgModel::OpenMp, 0.25)
        .policy(policy)
        .seed(3)
        .build();
    let (mut proc, mut wl, mut controller) = scenario.build_single_node();
    let mut rows = Vec::new();
    let mut q = 0u64;
    while !proc.workload_drained(wl.as_mut()) {
        proc.step(wl.as_mut());
        controller.on_quantum(&mut proc);
        q += 1;
        if q.is_multiple_of(1000) {
            rows.push(Row {
                t: proc.now_seconds(),
                cf: proc.core_freq().ghz(),
                uf: proc.uncore_freq().ghz(),
                watts: proc.last_quantum().power_watts,
            });
        }
    }
    (rows, proc.now_seconds(), proc.total_energy_joules())
}

fn main() {
    println!("AMG (22 V-cycles, scaled): Default vs Cuttlefish, sampled each second\n");
    let (def_rows, def_t, def_e) = run(NodePolicy::Default);
    let (cf_rows, cf_t, cf_e) = run(NodePolicy::Cuttlefish(Config::default()));

    println!(
        "{:>6}  | {:>6} {:>6} {:>7} | {:>6} {:>6} {:>7}",
        "t(s)", "CF", "UF", "W", "CF", "UF", "W"
    );
    println!("        |        Default          |        Cuttlefish");
    for i in 0..def_rows.len().min(cf_rows.len()) {
        let d = &def_rows[i];
        let c = &cf_rows[i];
        println!(
            "{:>6.1}  | {:>5.1}G {:>5.1}G {:>6.1}W | {:>5.1}G {:>5.1}G {:>6.1}W",
            d.t, d.cf, d.uf, d.watts, c.cf, c.uf, c.watts
        );
    }
    println!(
        "\nDefault:    {def_t:.1} s, {def_e:.0} J\nCuttlefish: {cf_t:.1} s, {cf_e:.0} J ({:+.1}% energy, {:+.1}% time)",
        (1.0 - cf_e / def_e) * 100.0,
        (cf_t / def_t - 1.0) * 100.0
    );
}
