//! Quickstart: tune a steady parallel workload with Cuttlefish.
//!
//! Mirrors the paper's two-call usage: wrap the region you want tuned
//! (here: the whole simulated execution) and let the daemon discover
//! the memory access pattern and pick frequencies. The experiment is
//! described once, declaratively, through the Scenario builder — the
//! same description could be serialized to JSON and run by any
//! figure/table bin via `--scenario`.
//!
//! Run with: `cargo run --release --example quickstart`

use bench::Scenario;
use cuttlefish::controller::NodePolicy;
use cuttlefish::Config;
use workloads::{ChunkPhase, SyntheticSpec};

fn main() {
    // A steady memory-bound kernel: every core streams chunks with
    // TIPI ≈ 0.064 (the paper's Heat-like MAP), endlessly.
    let scenario = Scenario::synthetic(SyntheticSpec {
        phases: vec![ChunkPhase::streaming(1)],
        total_chunks: None,
    })
    .policy(NodePolicy::Cuttlefish(Config::default()))
    .duration_s(15.0)
    .build();

    // For interactive stepping the builder hands out the parts —
    // machine, workload, controller — exactly as Scenario::run() would
    // construct them. Swapping the policy (Default / Pinned / Ondemand
    // / a future governor) is one line above.
    let (mut proc, mut wl, mut controller) = scenario.build_single_node();
    println!("machine: {} ({} cores)", proc.spec().name, proc.n_cores());

    let seconds = 15;
    for quantum in 0..(seconds * 1000) {
        proc.step(wl.as_mut());
        controller.on_quantum(&mut proc);
        if quantum % 1000 == 999 {
            println!(
                "t={:>4.1}s  CF {}  UF {}  power {:5.1} W",
                proc.now_seconds(),
                proc.core_freq(),
                proc.uncore_freq(),
                proc.last_quantum().power_watts,
            );
        }
    }

    println!("\ndiscovered TIPI ranges:");
    for r in controller.report() {
        println!(
            "  {} — {:4.1}% of samples, CFopt {:?}, UFopt {:?}",
            r.label,
            r.share * 100.0,
            r.cf_opt.map(|f| f.to_string()),
            r.uf_opt.map(|f| f.to_string()),
        );
    }
    let jpi = proc.total_energy_joules() / proc.total_instructions();
    println!("energy per instruction: {:.3} nJ", jpi * 1e9);

    // cuttlefish::stop().
    controller.stop(&mut proc);
    proc.step(wl.as_mut());
    println!(
        "after stop(): CF {}  UF {} (restored)",
        proc.core_freq(),
        proc.uncore_freq()
    );
}
