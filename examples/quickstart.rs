//! Quickstart: tune a steady parallel workload with Cuttlefish.
//!
//! Mirrors the paper's two-call usage: wrap the region you want tuned
//! (here: the whole simulated execution) and let the daemon discover
//! the memory access pattern and pick frequencies.
//!
//! Run with: `cargo run --release --example quickstart`

use cuttlefish::controller::NodePolicy;
use cuttlefish::Config;
use simproc::engine::{Chunk, Workload};
use simproc::freq::HASWELL_2650V3;
use simproc::perf::CostProfile;
use simproc::SimProcessor;

/// A steady memory-bound kernel: every core streams chunks with
/// TIPI ≈ 0.064 (the paper's Heat-like MAP).
struct Streaming;

impl Workload for Streaming {
    fn next_chunk(&mut self, _core: usize, _now_ns: u64) -> Option<Chunk> {
        Some(Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0)))
    }
    fn is_done(&self) -> bool {
        false
    }
}

fn main() {
    let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
    println!("machine: {} ({} cores)", proc.spec().name, proc.n_cores());

    // cuttlefish::start() — the controller owns the daemon and its MSR
    // session; stop() restores the frequency settings. Swapping the
    // policy (Default / Pinned / a future governor) is this one line.
    let mut controller = NodePolicy::Cuttlefish(Config::default()).build(&mut proc);

    let mut wl = Streaming;
    let seconds = 15;
    for quantum in 0..(seconds * 1000) {
        proc.step(&mut wl);
        controller.on_quantum(&mut proc);
        if quantum % 1000 == 999 {
            println!(
                "t={:>4.1}s  CF {}  UF {}  power {:5.1} W",
                proc.now_seconds(),
                proc.core_freq(),
                proc.uncore_freq(),
                proc.last_quantum().power_watts,
            );
        }
    }

    println!("\ndiscovered TIPI ranges:");
    for r in controller.report() {
        println!(
            "  {} — {:4.1}% of samples, CFopt {:?}, UFopt {:?}",
            r.label,
            r.share * 100.0,
            r.cf_opt.map(|f| f.to_string()),
            r.uf_opt.map(|f| f.to_string()),
        );
    }
    let jpi = proc.total_energy_joules() / proc.total_instructions();
    println!("energy per instruction: {:.3} nJ", jpi * 1e9);

    // cuttlefish::stop().
    controller.stop(&mut proc);
    proc.step(&mut wl);
    println!(
        "after stop(): CF {}  UF {} (restored)",
        proc.core_freq(),
        proc.uncore_freq()
    );
}
