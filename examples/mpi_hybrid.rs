//! MPI+X hybrid execution with per-node Cuttlefish (paper §4.6).
//!
//! Four nodes run a bulk-synchronous stencil (MPI across nodes,
//! work-sharing inside each node). Each node carries its own Cuttlefish
//! daemon tuning its own package. The example shows both the win (each
//! node reaches the single-node savings) and the documented limitation:
//! with one slow node, the fast nodes wait at the barrier — Cuttlefish
//! does not reclaim that slack by slowing them just-in-time.
//!
//! Every cluster here is one declarative [`Scenario`]: four nodes, a
//! synthetic stencil phase, a BSP topology — the imbalanced case is
//! the same description with per-node weights.
//!
//! Run with: `cargo run --release --example mpi_hybrid`

use bench::{Scenario, ScenarioOutcome};
use cuttlefish::controller::NodePolicy;
use cuttlefish::Config;
use simproc::freq::{Freq, HASWELL_2650V3};
use workloads::{ChunkPhase, SyntheticSpec};

/// One superstep of the memory-bound stencil: ~0.4 s per node.
fn stencil() -> SyntheticSpec {
    SyntheticSpec {
        phases: vec![ChunkPhase {
            chunks: 120,
            instructions: 30_000_000,
            misses_local: 1_390_000,
            misses_remote: 590_000,
            cpi: 0.55,
            mlp: 12.0,
        }],
        total_chunks: None,
    }
}

fn cuttlefish_cfg() -> Config {
    Config {
        warmup_ns: 500_000_000,
        idle_guard: Some(0.3), // filter barrier-boundary samples
        ..Config::default()
    }
}

/// 4 stencil nodes under `policy`, 40 supersteps; `weights` loads
/// individual ranks (empty = balanced).
fn cluster(policy: NodePolicy, weights: Vec<u32>) -> ScenarioOutcome {
    let mut builder = Scenario::synthetic(stencil()).nodes(4, &HASWELL_2650V3, policy);
    builder = if weights.is_empty() {
        builder.bsp(40, 4.0e6)
    } else {
        builder.bsp_weighted(40, 4.0e6, weights)
    };
    builder.build().run()
}

fn report(label: &str, weights: Vec<u32>) {
    let base = cluster(NodePolicy::Default, weights.clone());
    let tuned = cluster(NodePolicy::Cuttlefish(cuttlefish_cfg()), weights.clone());
    let tuned_cluster = tuned.cluster().expect("cluster outcome");
    println!("== {label}");
    println!(
        "   Default:    {:>6.2} s  {:>6.0} J   (barrier wait {:>5.2} node-s)",
        base.seconds(),
        base.joules(),
        base.cluster()
            .expect("cluster outcome")
            .outcome
            .barrier_wait_s
    );
    println!(
        "   Cuttlefish: {:>6.2} s  {:>6.0} J   energy {:+.1}%, time {:+.1}%",
        tuned.seconds(),
        tuned.joules(),
        (1.0 - tuned.joules() / base.joules()) * 100.0,
        (tuned.seconds() / base.seconds() - 1.0) * 100.0
    );
    // The same cluster driven by a third controller — an oracle pin at
    // the memory-bound optimum Cuttlefish discovers (Table 2: CF 1.2,
    // UF 2.2) — shows what the exploration costs relative to knowing
    // the answer up front.
    let oracle = cluster(
        NodePolicy::Pinned {
            cf: Freq(12),
            uf: Freq(22),
        },
        weights,
    );
    println!(
        "   Oracle pin: {:>6.2} s  {:>6.0} J   energy {:+.1}%, time {:+.1}%",
        oracle.seconds(),
        oracle.joules(),
        (1.0 - oracle.joules() / base.joules()) * 100.0,
        (oracle.seconds() / base.seconds() - 1.0) * 100.0
    );
    for (i, rep) in tuned_cluster.reports.iter().enumerate() {
        for r in rep.iter().filter(|r| r.is_frequent()) {
            println!(
                "   node {i}: TIPI {} → CFopt {:?}, UFopt {:?}",
                r.label,
                r.cf_opt.map(|f| f.to_string()),
                r.uf_opt.map(|f| f.to_string())
            );
        }
    }
}

fn main() {
    println!("MPI+X: 4 nodes x 20 cores, BSP stencil, 40 supersteps\n");
    report("balanced ranks", Vec::new());
    println!();
    report(
        "rank 0 does 2x work (the §4.6 slack case — no reclamation)",
        vec![2, 1, 1, 1],
    );
    println!("\nEach node tunes its own memory access pattern. The imbalanced");
    println!("case shows two §4.6 effects at once: (1) barrier wait that a");
    println!("slack-reclaiming runtime (Adagio et al.) would convert to further");
    println!("savings, and (2) the fast ranks' profilers seeing compute/wait");
    println!("mixtures and resolving different frequencies than the busy rank —");
    println!("the measurement ambiguity that makes the paper scope Cuttlefish");
    println!("to load-balanced node-level regions.");
}
