//! MPI+X hybrid execution with per-node Cuttlefish (paper §4.6).
//!
//! Four nodes run a bulk-synchronous stencil (MPI across nodes,
//! work-sharing inside each node). Each node carries its own Cuttlefish
//! daemon tuning its own package. The example shows both the win (each
//! node reaches the single-node savings) and the documented limitation:
//! with one slow node, the fast nodes wait at the barrier — Cuttlefish
//! does not reclaim that slack by slowing them just-in-time.
//!
//! Run with: `cargo run --release --example mpi_hybrid`

use cluster::{BspApp, Cluster, CommModel, NodePolicy};
use cuttlefish::Config;
use simproc::engine::Chunk;
use simproc::freq::Freq;
use simproc::perf::CostProfile;

fn stencil_chunks() -> Vec<Chunk> {
    (0..120)
        .map(|_| {
            Chunk::new(30_000_000, 1_390_000, 590_000).with_profile(CostProfile::new(0.55, 12.0))
        })
        .collect()
}

fn cuttlefish_cfg() -> Config {
    Config {
        warmup_ns: 500_000_000,
        idle_guard: Some(0.3), // filter barrier-boundary samples
        ..Config::default()
    }
}

fn report(label: &str, app: &BspApp) {
    let base = Cluster::new(app.n_nodes(), NodePolicy::Default, CommModel::default()).run(app);
    let mut tuned_cluster = Cluster::new(
        app.n_nodes(),
        NodePolicy::Cuttlefish(cuttlefish_cfg()),
        CommModel::default(),
    );
    let tuned = tuned_cluster.run(app);
    println!("== {label}");
    println!(
        "   Default:    {:>6.2} s  {:>6.0} J   (barrier wait {:>5.2} node-s)",
        base.seconds, base.joules, base.barrier_wait_s
    );
    println!(
        "   Cuttlefish: {:>6.2} s  {:>6.0} J   energy {:+.1}%, time {:+.1}%",
        tuned.seconds,
        tuned.joules,
        (1.0 - tuned.joules / base.joules) * 100.0,
        (tuned.seconds / base.seconds - 1.0) * 100.0
    );
    // The same cluster driven by a third controller — an oracle pin at
    // the memory-bound optimum Cuttlefish discovers (Table 2: CF 1.2,
    // UF 2.2) — shows what the exploration costs relative to knowing
    // the answer up front.
    let oracle = Cluster::new(
        app.n_nodes(),
        NodePolicy::Pinned {
            cf: Freq(12),
            uf: Freq(22),
        },
        CommModel::default(),
    )
    .run(app);
    println!(
        "   Oracle pin: {:>6.2} s  {:>6.0} J   energy {:+.1}%, time {:+.1}%",
        oracle.seconds,
        oracle.joules,
        (1.0 - oracle.joules / base.joules) * 100.0,
        (oracle.seconds / base.seconds - 1.0) * 100.0
    );
    for (i, rep) in tuned_cluster.reports().iter().enumerate() {
        for r in rep.iter().filter(|r| r.is_frequent()) {
            println!(
                "   node {i}: TIPI {} → CFopt {:?}, UFopt {:?}",
                r.label,
                r.cf_opt.map(|f| f.to_string()),
                r.uf_opt.map(|f| f.to_string())
            );
        }
    }
}

fn main() {
    println!("MPI+X: 4 nodes x 20 cores, BSP stencil, 40 supersteps\n");
    report("balanced ranks", &BspApp::uniform(4, 40, stencil_chunks));
    println!();
    report(
        "rank 0 does 2x work (the §4.6 slack case — no reclamation)",
        &BspApp::imbalanced(4, 40, 0, 2, stencil_chunks),
    );
    println!("\nEach node tunes its own memory access pattern. The imbalanced");
    println!("case shows two §4.6 effects at once: (1) barrier wait that a");
    println!("slack-reclaiming runtime (Adagio et al.) would convert to further");
    println!("savings, and (2) the fast ranks' profilers seeing compute/wait");
    println!("mixtures and resolving different frequencies than the busy rank —");
    println!("the measurement ambiguity that makes the paper scope Cuttlefish");
    println!("to load-balanced node-level regions.");
}
