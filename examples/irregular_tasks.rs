//! The async–finish programming model, twice:
//!
//! 1. for real — an unbalanced tree traversal on host threads using
//!    `tasking::threaded::Pool` (the HClib-style API), demonstrating
//!    that the substrate is a genuine work-stealing runtime;
//! 2. simulated — the paper's UTS benchmark on the 20-core simulated
//!    machine with Cuttlefish adapting frequencies, reproducing the
//!    compute-bound result (CF stays at max, uncore drops to ~1.2 GHz).
//!
//! Run with: `cargo run --release --example irregular_tasks`

use bench::Scenario;
use cuttlefish::controller::NodePolicy;
use cuttlefish::Config;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tasking::threaded::{Pool, Scope};
use workloads::{uts, ProgModel};

/// Count an unbalanced tree by spawning a task per subtree.
fn count_tree(scope: &Scope<'_>, id: u64, depth: u32, nodes: Arc<AtomicU64>) {
    nodes.fetch_add(1, Ordering::Relaxed);
    if depth >= 9 {
        return;
    }
    let h = uts::node_hash(id);
    for slot in 0..4u32 {
        let bits = (h >> (slot * 8)) & 0xff;
        let threshold = 256 * (9 - depth) / 10;
        if (bits as u32) < threshold {
            let nodes = nodes.clone();
            let child = uts::node_hash(id ^ (slot as u64 + 1));
            scope.spawn(move |s| count_tree(s, child, depth + 1, nodes));
        }
    }
}

fn main() {
    // Part 1: real threads.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let pool = Pool::new(threads.min(8));
    let nodes = Arc::new(AtomicU64::new(0));
    let t0 = std::time::Instant::now();
    pool.finish(|scope| {
        let nodes = nodes.clone();
        scope.spawn(move |s| count_tree(s, 1, 0, nodes));
    });
    println!(
        "threaded async-finish: counted {} tree nodes on {} workers in {:?}\n",
        nodes.load(Ordering::Relaxed),
        pool.n_threads(),
        t0.elapsed()
    );

    // Part 2: the UTS benchmark under Cuttlefish on the simulated
    // machine — one declarative Scenario (HClib model = work-stealing
    // scheduler), stepped by hand to read the final machine state.
    let scenario = Scenario::bench("UTS", ProgModel::HClib, 0.2)
        .policy(NodePolicy::Cuttlefish(Config::default()))
        .seed(11)
        .build();
    let (mut proc, mut wl, mut controller) = scenario.build_single_node();
    while !proc.workload_drained(wl.as_mut()) {
        proc.step(wl.as_mut());
        controller.on_quantum(&mut proc);
    }
    println!(
        "simulated UTS (work-stealing, 20 cores): {:.1} virtual s, {:.0} J",
        proc.now_seconds(),
        proc.total_energy_joules()
    );
    println!(
        "final frequencies: CF {} (compute-bound: stay fast), UF {} (uncore idle: go slow)",
        proc.core_freq(),
        proc.uncore_freq()
    );
    for r in controller.report() {
        println!(
            "  TIPI {} ({:.0}% of samples): CFopt {:?}, UFopt {:?}",
            r.label,
            r.share * 100.0,
            r.cf_opt.map(|f| f.to_string()),
            r.uf_opt.map(|f| f.to_string())
        );
    }
}
