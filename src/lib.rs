//! Umbrella crate for the Cuttlefish reproduction workspace.
//!
//! This crate re-exports the workspace members so that the integration
//! tests under `tests/` and the examples under `examples/` can exercise
//! the whole stack through one dependency. Library users should depend on
//! the individual crates (`cuttlefish`, `simproc`, `tasking`,
//! `workloads`) directly.

pub use cluster;
pub use cuttlefish;
pub use simproc;
pub use tasking;
pub use workloads;
