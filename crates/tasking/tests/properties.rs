//! Property-based tests over the schedulers: any well-formed DAG must
//! execute to completion, exactly once per task, under every
//! scheduling discipline, on any core count.

use proptest::prelude::*;
use simproc::engine::{Chunk, SimProcessor, Workload};
use simproc::freq::{Freq, FreqDomain, MachineSpec};
use tasking::{DagBuilder, Region, TaskDag, TaskId, WorkSharingScheduler, WorkStealingScheduler};

fn machine(n_cores: usize) -> MachineSpec {
    MachineSpec {
        name: format!("prop-{n_cores}core"),
        n_cores,
        core: FreqDomain::new(Freq(12), Freq(23)),
        uncore: FreqDomain::new(Freq(12), Freq(30)),
        quantum_ns: 1_000_000,
    }
}

/// Build a random DAG: `n` tasks, layered edges (from lower to higher
/// indices only — guaranteed acyclic).
fn random_dag(n: usize, edges: &[(usize, usize)]) -> TaskDag {
    let mut b = DagBuilder::default();
    let ids: Vec<TaskId> = (0..n)
        .map(|i| b.add_task(Chunk::new(50_000 + (i as u64 * 7919) % 300_000, 500, 100)))
        .collect();
    for &(x, y) in edges {
        let (a, z) = (x % n, y % n);
        if a < z {
            b.add_dep(ids[a], ids[z]);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn work_stealing_completes_any_dag(
        n in 1usize..80,
        edges in proptest::collection::vec((0usize..80, 0usize..80), 0..160),
        n_cores in 1usize..8,
        seed in 0u64..1000,
    ) {
        let dag = random_dag(n, &edges);
        let total = dag.len();
        let mut p = SimProcessor::new(machine(n_cores));
        let mut s = WorkStealingScheduler::new(dag, n_cores, seed);
        let mut guard = 0u64;
        while !p.workload_drained(&s) {
            p.step(&mut s);
            guard += 1;
            prop_assert!(guard < 2_000_000, "scheduler stalled");
        }
        prop_assert_eq!(s.completed(), total);
    }

    #[test]
    fn central_queue_completes_any_dag(
        n in 1usize..80,
        edges in proptest::collection::vec((0usize..80, 0usize..80), 0..160),
        n_cores in 1usize..8,
    ) {
        let dag = random_dag(n, &edges);
        let total = dag.len();
        let mut p = SimProcessor::new(machine(n_cores));
        let mut s = tasking::steal::CentralQueueScheduler::new(dag, n_cores);
        let mut guard = 0u64;
        while !p.workload_drained(&s) {
            p.step(&mut s);
            guard += 1;
            prop_assert!(guard < 2_000_000, "scheduler stalled");
        }
        prop_assert_eq!(s.completed(), total);
    }

    #[test]
    fn work_sharing_executes_every_chunk_exactly_once(
        sizes in proptest::collection::vec(1usize..30, 1..12),
        n_cores in 1usize..8,
    ) {
        // Tag each chunk with a unique instruction count so the total
        // instruction counter proves exactly-once execution.
        let mut expected = 0u64;
        let mut k = 0u64;
        let regions: Vec<Region> = sizes
            .iter()
            .map(|&s| {
                let chunks: Vec<Chunk> = (0..s)
                    .map(|_| {
                        k += 1;
                        let instr = 100_000 + k * 1009;
                        expected += instr;
                        Chunk::new(instr, 100, 20)
                    })
                    .collect();
                Region::statically_partitioned(chunks, n_cores)
            })
            .collect();
        let mut p = SimProcessor::new(machine(n_cores));
        let mut s = WorkSharingScheduler::new(regions, n_cores);
        let mut guard = 0u64;
        while !p.workload_drained(&s) {
            p.step(&mut s);
            guard += 1;
            prop_assert!(guard < 2_000_000, "scheduler stalled");
        }
        let measured = p.total_instructions();
        prop_assert!(
            (measured - expected as f64).abs() < 2.0,
            "instructions: measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn schedulers_agree_on_total_work(
        n in 1usize..60,
        edges in proptest::collection::vec((0usize..60, 0usize..60), 0..100),
    ) {
        // Different disciplines, same DAG → identical retired
        // instruction totals (work conservation).
        let dag = random_dag(n, &edges);
        let run = |wl: &mut dyn Workload| {
            let mut p = SimProcessor::new(machine(4));
            while !p.workload_drained(wl) {
                p.step(wl);
            }
            p.total_instructions()
        };
        let a = run(&mut WorkStealingScheduler::new(dag.clone(), 4, 1));
        let b = run(&mut tasking::steal::CentralQueueScheduler::new(dag, 4));
        prop_assert!((a - b).abs() < 2.0, "{a} vs {b}");
    }
}
