//! Work-stealing scheduler over simulated cores.
//!
//! The scheduling discipline mirrors HClib's (and Cilk's) runtime:
//! every core owns a deque; it pushes tasks it makes ready to the bottom
//! and pops from the bottom (LIFO, for locality); an idle core steals
//! from the *top* of a uniformly random victim's deque (FIFO, taking the
//! oldest — typically largest — piece of work). Victim selection uses a
//! seeded PRNG so whole-machine simulations are reproducible.
//!
//! The engine pulls work via [`simproc::Workload::next_chunk`]; the pull
//! that follows a completed chunk doubles as the completion signal, at
//! which point the task's successors are released.

use crate::task::{TaskDag, TaskId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simproc::engine::{Chunk, Workload};
use std::collections::VecDeque;

/// Counters describing a finished schedule, for tests and traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Tasks executed from the core's own deque.
    pub local_pops: u64,
    /// Tasks obtained by stealing.
    pub steals: u64,
    /// Failed whole-machine steal sweeps (led to parking).
    pub failed_sweeps: u64,
}

/// Work-stealing executor for one [`TaskDag`].
#[derive(Debug)]
pub struct WorkStealingScheduler {
    dag: TaskDag,
    indeg: Vec<u32>,
    deques: Vec<VecDeque<u32>>,
    running: Vec<Option<u32>>,
    completed: usize,
    rng: SmallRng,
    stats: StealStats,
}

impl WorkStealingScheduler {
    /// Schedule `dag` over `n_cores` cores; `seed` fixes victim choice.
    pub fn new(dag: TaskDag, n_cores: usize, seed: u64) -> Self {
        assert!(n_cores > 0);
        let indeg = dag.indegrees();
        let mut deques: Vec<VecDeque<u32>> = (0..n_cores).map(|_| VecDeque::new()).collect();
        // Roots are distributed round-robin, as if a startup loop had
        // spawned them from the main task.
        for (i, root) in dag.roots().enumerate() {
            deques[i % n_cores].push_back(root.0);
        }
        WorkStealingScheduler {
            dag,
            indeg,
            deques,
            running: vec![None; n_cores],
            completed: 0,
            rng: SmallRng::seed_from_u64(seed),
            stats: StealStats::default(),
        }
    }

    /// Scheduling statistics so far.
    pub fn stats(&self) -> StealStats {
        self.stats
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// The DAG being executed.
    pub fn dag(&self) -> &TaskDag {
        &self.dag
    }

    fn complete(&mut self, core: usize, task: u32) {
        self.completed += 1;
        let succs = self.dag.successors(TaskId(task)).to_vec();
        for s in succs {
            self.indeg[s as usize] -= 1;
            if self.indeg[s as usize] == 0 {
                // Ready tasks go to the bottom of the completing core's
                // deque (child-first / locality, as in HClib).
                self.deques[core].push_back(s);
            }
        }
    }

    fn acquire(&mut self, core: usize) -> Option<u32> {
        if let Some(t) = self.deques[core].pop_back() {
            self.stats.local_pops += 1;
            return Some(t);
        }
        let n = self.deques.len();
        if n == 1 {
            self.stats.failed_sweeps += 1;
            return None;
        }
        // Random starting victim, then sweep the whole ring once; this
        // bounds the work per acquire while keeping victim choice random.
        let start = self.rng.gen_range(0..n);
        for k in 0..n {
            let v = (start + k) % n;
            if v == core {
                continue;
            }
            if let Some(t) = self.deques[v].pop_front() {
                self.stats.steals += 1;
                return Some(t);
            }
        }
        self.stats.failed_sweeps += 1;
        None
    }
}

impl Workload for WorkStealingScheduler {
    fn next_chunk(&mut self, core: usize, _now_ns: u64) -> Option<Chunk> {
        if let Some(prev) = self.running[core].take() {
            self.complete(core, prev);
        }
        loop {
            let t = self.acquire(core)?;
            // Zero-cost join nodes complete immediately rather than
            // round-tripping through the engine.
            let chunk = self.dag.chunk(TaskId(t)).clone();
            if chunk.instructions == 0 && chunk.misses_local == 0 && chunk.misses_remote == 0 {
                self.complete(core, t);
                continue;
            }
            self.running[core] = Some(t);
            return Some(chunk);
        }
    }

    fn is_done(&self) -> bool {
        self.completed == self.dag.len() && self.running.iter().all(|r| r.is_none())
    }

    fn next_wake_ns(&self, now_ns: u64) -> Option<u64> {
        // An undrained stealer cannot promise side-effect-free skipped
        // pulls: every failed sweep advances the seeded victim PRNG and
        // the `failed_sweeps` counter, so skipping one would change the
        // replayed schedule. Only the drained tail is safe to
        // fast-forward — `None` hands it to the event scheduler.
        if self.is_done() {
            None
        } else {
            Some(now_ns)
        }
    }
}

/// Central shared-queue scheduler: one FIFO task pool all cores pull
/// from — the classic OpenMP untied-task pool discipline (breadth-first,
/// no owner deques). Contrast with [`WorkStealingScheduler`]'s HClib
/// discipline; the Cuttlefish evaluation uses the two to represent the
/// two programming models.
#[derive(Debug)]
pub struct CentralQueueScheduler {
    dag: TaskDag,
    indeg: Vec<u32>,
    queue: VecDeque<u32>,
    running: Vec<Option<u32>>,
    completed: usize,
}

impl CentralQueueScheduler {
    /// Schedule `dag` over `n_cores` cores.
    pub fn new(dag: TaskDag, n_cores: usize) -> Self {
        assert!(n_cores > 0);
        let indeg = dag.indegrees();
        let queue: VecDeque<u32> = dag.roots().map(|t| t.0).collect();
        CentralQueueScheduler {
            dag,
            indeg,
            queue,
            running: vec![None; n_cores],
            completed: 0,
        }
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    fn complete(&mut self, task: u32) {
        self.completed += 1;
        let succs = self.dag.successors(TaskId(task)).to_vec();
        for s in succs {
            self.indeg[s as usize] -= 1;
            if self.indeg[s as usize] == 0 {
                self.queue.push_back(s);
            }
        }
    }
}

impl Workload for CentralQueueScheduler {
    fn next_chunk(&mut self, core: usize, _now_ns: u64) -> Option<Chunk> {
        if let Some(prev) = self.running[core].take() {
            self.complete(prev);
        }
        loop {
            let t = self.queue.pop_front()?;
            let chunk = self.dag.chunk(TaskId(t)).clone();
            if chunk.instructions == 0 && chunk.misses_local == 0 && chunk.misses_remote == 0 {
                self.complete(t);
                continue;
            }
            self.running[core] = Some(t);
            return Some(chunk);
        }
    }

    fn is_done(&self) -> bool {
        self.completed == self.dag.len() && self.running.iter().all(|r| r.is_none())
    }

    fn next_wake_ns(&self, now_ns: u64) -> Option<u64> {
        // Same contract as the stealer: pulls double as completion
        // signals while tasks are in flight, so only the drained tail
        // advertises `None` (free to fast-forward).
        if self.is_done() {
            None
        } else {
            Some(now_ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::DagBuilder;
    use simproc::engine::SimProcessor;
    use simproc::freq::HYPOTHETICAL7;
    use simproc::perf::CostProfile;

    fn chunk(n: u64) -> Chunk {
        Chunk::new(n, n / 1000, 0).with_profile(CostProfile::new(1.0, 6.0))
    }

    fn chain_dag(len: usize) -> TaskDag {
        let mut b = DagBuilder::default();
        let mut prev: Option<TaskId> = None;
        for _ in 0..len {
            let t = b.add_task(chunk(100_000));
            if let Some(p) = prev {
                b.add_dep(p, t);
            }
            prev = Some(t);
        }
        b.build()
    }

    fn wide_dag(n: usize) -> TaskDag {
        let mut b = DagBuilder::default();
        for _ in 0..n {
            b.add_task(chunk(500_000));
        }
        b.build()
    }

    #[test]
    fn executes_all_tasks() {
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = WorkStealingScheduler::new(wide_dag(100), p.n_cores(), 42);
        p.run(&mut s, |_| {});
        assert_eq!(s.completed(), 100);
        assert!(s.is_done());
    }

    #[test]
    fn respects_chain_dependencies() {
        // A pure chain admits no parallelism: total time must be the
        // serial time regardless of core count.
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = WorkStealingScheduler::new(chain_dag(64), p.n_cores(), 7);
        let secs = p.run(&mut s, |_| {});
        let serial = 64.0 * 100_000.0 * 1.0 / p.core_freq().hz();
        // Quantum rounding: each chunk may wait for the next quantum.
        assert!(secs >= serial, "cannot beat the critical path");
        assert_eq!(s.completed(), 64);
    }

    #[test]
    fn wide_dag_gets_parallel_speedup() {
        let n_tasks = 400;
        let mut p1 = SimProcessor::new(HYPOTHETICAL7.clone());
        let one_core_time = {
            // Single-core run: same machine but a scheduler that only
            // ever feeds core 0 (build a 1-core scheduler and park the
            // rest by giving them nothing).
            let mut s = WorkStealingScheduler::new(wide_dag(n_tasks), 1, 1);
            struct OnlyCore0<'a>(&'a mut WorkStealingScheduler);
            impl Workload for OnlyCore0<'_> {
                fn next_chunk(&mut self, core: usize, now: u64) -> Option<Chunk> {
                    if core == 0 {
                        self.0.next_chunk(0, now)
                    } else {
                        None
                    }
                }
                fn is_done(&self) -> bool {
                    self.0.is_done()
                }
            }
            let mut w = OnlyCore0(&mut s);
            p1.run(&mut w, |_| {})
        };
        let mut p4 = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s4 = WorkStealingScheduler::new(wide_dag(n_tasks), p4.n_cores(), 1);
        let four_core_time = p4.run(&mut s4, |_| {});
        let speedup = one_core_time / four_core_time;
        assert!(
            speedup > 3.0,
            "4 cores on embarrassingly parallel work should speed up ~4x, got {speedup:.2}"
        );
    }

    #[test]
    fn stealing_happens_on_imbalanced_roots() {
        // Single root fanning out: all other cores must steal to work.
        let mut b = DagBuilder::default();
        let root = b.add_task(chunk(100_000));
        for _ in 0..50 {
            let t = b.add_task(chunk(400_000));
            b.add_dep(root, t);
        }
        let dag = b.build();
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = WorkStealingScheduler::new(dag, p.n_cores(), 99);
        p.run(&mut s, |_| {});
        assert!(
            s.stats().steals > 0,
            "fan-out from one deque requires steals"
        );
        assert_eq!(s.completed(), 51);
    }

    #[test]
    fn central_queue_executes_all_tasks() {
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = CentralQueueScheduler::new(wide_dag(100), p.n_cores());
        p.run(&mut s, |_| {});
        assert_eq!(s.completed(), 100);
        assert!(s.is_done());
    }

    #[test]
    fn central_queue_respects_dependencies() {
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = CentralQueueScheduler::new(chain_dag(32), p.n_cores());
        let secs = p.run(&mut s, |_| {});
        let serial = 32.0 * 100_000.0 / p.core_freq().hz();
        assert!(secs >= serial);
        assert_eq!(s.completed(), 32);
    }

    #[test]
    fn central_queue_parallelizes_wide_work() {
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = CentralQueueScheduler::new(wide_dag(400), p.n_cores());
        let t4 = p.run(&mut s, |_| {});
        let serial = 400.0 * 500_000.0 / p.core_freq().hz();
        assert!(t4 < serial / 3.0, "4 cores should be ~4x faster");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
            let mut s = WorkStealingScheduler::new(wide_dag(200), p.n_cores(), seed);
            let t = p.run(&mut s, |_| {});
            (t, s.stats())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn zero_cost_join_nodes_do_not_deadlock() {
        let mut b = DagBuilder::default();
        let before: Vec<TaskId> = (0..20).map(|_| b.add_task(chunk(200_000))).collect();
        let after: Vec<TaskId> = (0..20).map(|_| b.add_task(chunk(200_000))).collect();
        b.barrier(&before, &after); // inserts a zero-cost join task
        let dag = b.build();
        let total = dag.len();
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = WorkStealingScheduler::new(dag, p.n_cores(), 3);
        p.run(&mut s, |_| {});
        assert_eq!(s.completed(), total);
    }
}
