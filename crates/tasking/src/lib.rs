//! # tasking — async–finish task DAGs and schedulers over simulated cores
//!
//! The Cuttlefish paper evaluates two parallel programming models to
//! demonstrate that the library is *programming-model oblivious*:
//!
//! * **OpenMP** — work-sharing pragmas (static loop partitioning) and
//!   tasking pragmas (dynamic task parallelism with regular/irregular
//!   execution DAGs), and
//! * **HClib** — an async–finish work-stealing runtime.
//!
//! This crate is the substitute for both runtimes. Workloads build
//! [`TaskDag`]s (or region lists) describing their computation; two
//! schedulers execute them on the simulated cores by implementing
//! [`simproc::Workload`]:
//!
//! * [`WorkStealingScheduler`] — per-core deques, LIFO local pop, FIFO
//!   random-victim steal: the scheduling discipline of HClib (and of
//!   OpenMP task pools in practice).
//! * [`WorkSharingScheduler`] — statically partitioned parallel regions
//!   with barriers: OpenMP `parallel for` with a static schedule.
//!
//! Cuttlefish itself never sees any of this — it observes only the MSR
//! counter streams the execution produces, which is precisely the
//! paper's obliviousness claim.
//!
//! A third module, [`threaded`], is a *real* (host-thread) async–finish
//! work-stealing pool with the HClib-style `finish(|scope| scope.spawn(…))`
//! API. It is not connected to the simulator; it exists to demonstrate
//! the programming model end-to-end on actual threads (see the
//! `irregular_tasks` example).

pub mod share;
pub mod steal;
pub mod task;
pub mod threaded;

pub use share::{Region, WorkSharingScheduler};
pub use steal::WorkStealingScheduler;
pub use task::{DagBuilder, TaskDag, TaskId};
