//! Task DAG representation.
//!
//! A [`TaskDag`] is a static directed acyclic graph whose nodes carry
//! [`Chunk`]s (instruction/miss cost descriptors) and whose edges are
//! happens-before dependencies. Workload generators build DAGs through
//! [`DagBuilder`]; schedulers consume them.
//!
//! The paper's Figure 1 derives two DAG shapes from the same loop nest
//! (after Chen et al. [ICS'14]): a *regular* DAG whose interior nodes
//! have uniform degree, and an *irregular* one with mixed degrees. Both
//! are just shapes of this one type.

use simproc::engine::Chunk;

/// Index of a task within its DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// An immutable task DAG ready for scheduling.
#[derive(Debug, Clone)]
pub struct TaskDag {
    chunks: Vec<Chunk>,
    succs: Vec<Vec<u32>>,
    indeg: Vec<u32>,
}

impl TaskDag {
    /// Start building a DAG.
    pub fn builder() -> DagBuilder {
        DagBuilder::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// The cost chunk of a task.
    pub fn chunk(&self, id: TaskId) -> &Chunk {
        &self.chunks[id.0 as usize]
    }

    /// Successor task ids of `id`.
    pub fn successors(&self, id: TaskId) -> &[u32] {
        &self.succs[id.0 as usize]
    }

    /// In-degree of each task (cloned; schedulers mutate their copy).
    pub fn indegrees(&self) -> Vec<u32> {
        self.indeg.clone()
    }

    /// Ids of tasks with no predecessors.
    pub fn roots(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| TaskId(i as u32))
    }

    /// Total instructions across all tasks.
    pub fn total_instructions(&self) -> u64 {
        self.chunks.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate TIPI of the whole DAG.
    pub fn aggregate_tipi(&self) -> f64 {
        let instr: u64 = self.total_instructions();
        if instr == 0 {
            return 0.0;
        }
        let misses: u64 = self
            .chunks
            .iter()
            .map(|c| c.misses_local + c.misses_remote)
            .sum();
        misses as f64 / instr as f64
    }
}

/// Incremental DAG constructor.
#[derive(Debug, Default)]
pub struct DagBuilder {
    chunks: Vec<Chunk>,
    succs: Vec<Vec<u32>>,
    indeg: Vec<u32>,
}

impl DagBuilder {
    /// Add a task carrying `chunk`; returns its id.
    pub fn add_task(&mut self, chunk: Chunk) -> TaskId {
        let id = TaskId(self.chunks.len() as u32);
        self.chunks.push(chunk);
        self.succs.push(Vec::new());
        self.indeg.push(0);
        id
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Declare that `before` must complete before `after` starts.
    ///
    /// # Panics
    /// Panics if either id is unknown or `before == after`.
    pub fn add_dep(&mut self, before: TaskId, after: TaskId) {
        assert!(before != after, "a task cannot depend on itself");
        assert!(
            (before.0 as usize) < self.chunks.len(),
            "unknown task {before:?}"
        );
        assert!(
            (after.0 as usize) < self.chunks.len(),
            "unknown task {after:?}"
        );
        self.succs[before.0 as usize].push(after.0);
        self.indeg[after.0 as usize] += 1;
    }

    /// Convenience barrier: every task in `before` precedes every task
    /// in `after`. For wide barriers this inserts a zero-cost join node
    /// to keep the edge count linear.
    pub fn barrier(&mut self, before: &[TaskId], after: &[TaskId]) {
        if before.is_empty() || after.is_empty() {
            return;
        }
        if before.len() * after.len() <= 64 {
            for &b in before {
                for &a in after {
                    self.add_dep(b, a);
                }
            }
        } else {
            let join = self.add_task(Chunk::new(0, 0, 0));
            for &b in before {
                self.add_dep(b, join);
            }
            for &a in after {
                self.add_dep(join, a);
            }
        }
    }

    /// Finish construction, verifying acyclicity.
    ///
    /// # Panics
    /// Panics if the dependency graph contains a cycle.
    pub fn build(self) -> TaskDag {
        let dag = TaskDag {
            chunks: self.chunks,
            succs: self.succs,
            indeg: self.indeg,
        };
        // Kahn's algorithm: all tasks must be reachable at in-degree 0.
        let mut indeg = dag.indegrees();
        let mut queue: Vec<u32> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut seen = 0usize;
        while let Some(t) = queue.pop() {
            seen += 1;
            for &s in &dag.succs[t as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(seen, dag.len(), "task DAG contains a cycle");
        dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> Chunk {
        Chunk::new(n, n / 100, 0)
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = TaskDag::builder();
        let a = b.add_task(c(1000));
        let x = b.add_task(c(2000));
        let y = b.add_task(c(3000));
        b.add_dep(a, x);
        b.add_dep(a, y);
        let dag = b.build();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.roots().collect::<Vec<_>>(), vec![a]);
        assert_eq!(dag.successors(a), &[x.0, y.0]);
        assert_eq!(dag.total_instructions(), 6000);
    }

    #[test]
    fn aggregate_tipi() {
        let mut b = TaskDag::builder();
        b.add_task(Chunk::new(1000, 50, 14));
        b.add_task(Chunk::new(1000, 0, 0));
        let dag = b.build();
        assert!((dag.aggregate_tipi() - 64.0 / 2000.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let mut b = TaskDag::builder();
        let a = b.add_task(c(1));
        let x = b.add_task(c(1));
        b.add_dep(a, x);
        b.add_dep(x, a);
        b.build();
    }

    #[test]
    #[should_panic(expected = "depend on itself")]
    fn self_dep_rejected() {
        let mut b = TaskDag::builder();
        let a = b.add_task(c(1));
        b.add_dep(a, a);
    }

    #[test]
    fn wide_barrier_uses_join_node() {
        let mut b = TaskDag::builder();
        let before: Vec<TaskId> = (0..20).map(|_| b.add_task(c(1))).collect();
        let after: Vec<TaskId> = (0..20).map(|_| b.add_task(c(1))).collect();
        b.barrier(&before, &after);
        let dag = b.build();
        // 40 real tasks + 1 join node.
        assert_eq!(dag.len(), 41);
        let join = TaskId(40);
        assert_eq!(dag.successors(before[0]), &[join.0]);
    }

    #[test]
    fn narrow_barrier_uses_direct_edges() {
        let mut b = TaskDag::builder();
        let x = b.add_task(c(1));
        let y = b.add_task(c(1));
        b.barrier(&[x], &[y]);
        let dag = b.build();
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.successors(x), &[y.0]);
    }

    #[test]
    fn empty_barrier_is_noop() {
        let mut b = TaskDag::builder();
        let x = b.add_task(c(1));
        b.barrier(&[], &[x]);
        b.barrier(&[x], &[]);
        let dag = b.build();
        assert_eq!(dag.roots().count(), 1);
    }
}
