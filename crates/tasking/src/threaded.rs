//! A real async–finish work-stealing thread pool.
//!
//! This is the host-thread counterpart of [`crate::steal`]: where that
//! module *simulates* HClib's scheduling discipline on simulated cores,
//! this one actually runs it, with the HClib programming style:
//!
//! ```
//! use tasking::threaded::Pool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = Pool::new(4);
//! let sum = std::sync::Arc::new(AtomicU64::new(0));
//! pool.finish(|scope| {
//!     for i in 0..100u64 {
//!         let sum = sum.clone();
//!         scope.spawn(move |_| {
//!             sum.fetch_add(i, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 4950);
//! ```
//!
//! `finish` returns only when every task spawned inside it — including
//! tasks spawned transitively by other tasks — has completed, which is
//! exactly the async–finish quiescence semantics of HClib / X10.
//!
//! Built on `crossbeam-deque`: each worker owns a [`Worker`] deque
//! (LIFO pop), idle workers steal from a global [`Injector`] FIFO and
//! from random victims' deques. Tasks must be `Send + 'static`; share
//! state through `Arc` as the example shows.

use crossbeam::deque::{Injector, Stealer, Worker};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce(&Scope<'_>) + Send>;

/// Pending-task accounting for one `finish` scope.
struct FinishState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl FinishState {
    fn new() -> Arc<Self> {
        Arc::new(FinishState {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    fn task_spawned(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    fn task_done(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    fn wait_quiescent(&self) {
        let mut g = self.lock.lock().unwrap();
        while self.pending.load(Ordering::SeqCst) != 0 {
            let (g2, _) = self.cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
            g = g2;
        }
    }
}

struct Shared {
    injector: Injector<(Job, Arc<FinishState>)>,
    stealers: Vec<Stealer<(Job, Arc<FinishState>)>>,
    shutdown: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Shared {
    fn notify_work(&self) {
        let _g = self.idle_lock.lock().unwrap();
        self.idle_cv.notify_all();
    }
}

/// Handle passed to every task; lets it spawn siblings into the same
/// enclosing `finish`.
pub struct Scope<'a> {
    shared: &'a Shared,
    finish: &'a Arc<FinishState>,
    local: Option<&'a Worker<(Job, Arc<FinishState>)>>,
}

impl Scope<'_> {
    /// Spawn an async task attributed to the enclosing `finish`.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_>) + Send + 'static,
    {
        self.finish.task_spawned();
        let item = (Box::new(f) as Job, Arc::clone(self.finish));
        match self.local {
            // Worker thread: child-first, to the bottom of our deque.
            Some(w) => w.push(item),
            // User thread: through the global injector.
            None => self.shared.injector.push(item),
        }
        self.shared.notify_work();
    }
}

/// The work-stealing pool.
pub struct Pool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spin up `n_threads` workers.
    ///
    /// # Panics
    /// Panics if `n_threads` is zero.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0, "pool needs at least one thread");
        let workers: Vec<Worker<(Job, Arc<FinishState>)>> =
            (0..n_threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let threads = workers
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tasking-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &w, i))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Pool { shared, threads }
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Run `f` with a [`Scope`], then block until every task spawned in
    /// the scope (transitively) has completed.
    pub fn finish<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_>),
    {
        let finish = FinishState::new();
        {
            let scope = Scope {
                shared: &self.shared,
                finish: &finish,
                local: None,
            };
            f(&scope);
        }
        finish.wait_quiescent();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify_work();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn find_work(
    shared: &Shared,
    local: &Worker<(Job, Arc<FinishState>)>,
    me: usize,
) -> Option<(Job, Arc<FinishState>)> {
    if let Some(item) = local.pop() {
        return Some(item);
    }
    // Drain the injector into our deque opportunistically, then steal.
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            crossbeam::deque::Steal::Success(item) => return Some(item),
            crossbeam::deque::Steal::Retry => continue,
            crossbeam::deque::Steal::Empty => break,
        }
    }
    for (v, stealer) in shared.stealers.iter().enumerate() {
        if v == me {
            continue;
        }
        loop {
            match stealer.steal() {
                crossbeam::deque::Steal::Success(item) => return Some(item),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
    }
    None
}

fn worker_loop(shared: &Shared, local: &Worker<(Job, Arc<FinishState>)>, me: usize) {
    loop {
        match find_work(shared, local, me) {
            Some((job, finish)) => {
                let scope = Scope {
                    shared,
                    finish: &finish,
                    local: Some(local),
                };
                job(&scope);
                finish.task_done();
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Timed wait sidesteps missed-wakeup races against
                // lock-free pushes.
                let g = shared.idle_lock.lock().unwrap();
                let _ = shared
                    .idle_cv
                    .wait_timeout(g, Duration::from_micros(200))
                    .unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn flat_finish_completes_all_tasks() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        pool.finish(|scope| {
            for _ in 0..1000 {
                let c = counter.clone();
                scope.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn nested_spawns_are_awaited() {
        // Binary tree of depth 10 spawned recursively: finish must wait
        // for all 2^10 leaves.
        let pool = Pool::new(4);
        let leaves = Arc::new(AtomicU64::new(0));

        fn node(scope: &Scope<'_>, depth: u32, leaves: Arc<AtomicU64>) {
            if depth == 0 {
                leaves.fetch_add(1, Ordering::Relaxed);
                return;
            }
            for _ in 0..2 {
                let l = leaves.clone();
                scope.spawn(move |s| node(s, depth - 1, l));
            }
        }

        pool.finish(|scope| {
            let l = leaves.clone();
            scope.spawn(move |s| node(s, 10, l));
        });
        assert_eq!(leaves.load(Ordering::Relaxed), 1024);
    }

    #[test]
    fn sequential_finishes_are_ordered() {
        let pool = Pool::new(3);
        let log = Arc::new(Mutex::new(Vec::new()));
        for round in 0..5u32 {
            let log = log.clone();
            pool.finish(move |scope| {
                for _ in 0..50 {
                    let log = log.clone();
                    scope.spawn(move |_| {
                        log.lock().unwrap().push(round);
                    });
                }
            });
        }
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 250);
        // Quiescence between finishes => rounds never interleave.
        let mut sorted = log.clone();
        sorted.sort_unstable();
        assert_eq!(*log, sorted);
    }

    #[test]
    fn empty_finish_returns() {
        let pool = Pool::new(2);
        pool.finish(|_| {});
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        pool.finish(|scope| {
            for _ in 0..100 {
                let c = counter.clone();
                scope.spawn(move |s| {
                    let c2 = c.clone();
                    s.spawn(move |_| {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn pool_drop_joins_threads() {
        let pool = Pool::new(4);
        drop(pool); // must not hang
    }
}
