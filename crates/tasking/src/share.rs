//! Work-sharing scheduler: statically partitioned parallel regions with
//! barriers — the execution model of OpenMP `parallel for` with a
//! `schedule(static)` clause, which is what the paper's `-ws` benchmark
//! variants use.
//!
//! A workload is a sequence of [`Region`]s. Within a region every core
//! owns a fixed list of chunks; a core that drains its list waits at the
//! implicit barrier until every other core finishes the region (the
//! engine sees `None` and parks it — idle barrier time is where
//! work-sharing loses to work-stealing on imbalanced iterations).

use simproc::engine::{Chunk, Workload};

/// One parallel region: per-core chunk lists, executed in order.
#[derive(Debug, Clone)]
pub struct Region {
    per_core: Vec<Vec<Chunk>>,
}

impl Region {
    /// Build a region from explicit per-core chunk lists.
    pub fn from_parts(per_core: Vec<Vec<Chunk>>) -> Self {
        Region { per_core }
    }

    /// Statically partition `chunks` across `n_cores` in contiguous
    /// blocks (OpenMP static schedule).
    pub fn statically_partitioned(chunks: Vec<Chunk>, n_cores: usize) -> Self {
        assert!(n_cores > 0);
        let mut per_core: Vec<Vec<Chunk>> = (0..n_cores).map(|_| Vec::new()).collect();
        let total = chunks.len();
        if total == 0 {
            return Region { per_core };
        }
        let base = total / n_cores;
        let extra = total % n_cores;
        let mut it = chunks.into_iter();
        for (core, list) in per_core.iter_mut().enumerate() {
            let take = base + usize::from(core < extra);
            list.extend(it.by_ref().take(take));
        }
        Region { per_core }
    }

    /// A serial region: all chunks on core 0 (e.g. a sequential setup
    /// phase between parallel loops).
    pub fn serial(chunks: Vec<Chunk>) -> Self {
        Region {
            per_core: vec![chunks],
        }
    }

    /// Number of cores this region addresses.
    pub fn width(&self) -> usize {
        self.per_core.len()
    }

    /// Total chunks in the region.
    pub fn len(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// Whether the region carries no work.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flatten the region back into a single chunk list (core order),
    /// consuming it. Used when re-expressing work-sharing regions as
    /// flat task sets for a tasking runtime.
    pub fn into_chunks(self) -> Vec<Chunk> {
        self.per_core.into_iter().flatten().collect()
    }
}

/// Executor for a sequence of regions with implicit barriers.
#[derive(Debug)]
pub struct WorkSharingScheduler {
    /// Remaining regions, reversed so the current region pops cheaply.
    regions: Vec<Region>,
    /// Cursor into each core's list of the current region.
    cursor: Vec<usize>,
    current: Option<Region>,
    in_flight: usize,
    regions_done: usize,
    /// Whether each core currently holds a handed-out, uncompleted chunk.
    handed: Vec<bool>,
}

impl WorkSharingScheduler {
    /// Schedule `regions` in order over `n_cores` cores.
    pub fn new(mut regions: Vec<Region>, n_cores: usize) -> Self {
        assert!(n_cores > 0);
        regions.reverse();
        let mut s = WorkSharingScheduler {
            regions,
            cursor: vec![0; n_cores],
            current: None,
            in_flight: 0,
            regions_done: 0,
            handed: vec![false; n_cores],
        };
        s.advance();
        s
    }

    /// Number of regions fully executed so far.
    pub fn regions_done(&self) -> usize {
        self.regions_done
    }

    fn advance(&mut self) {
        self.cursor.iter_mut().for_each(|c| *c = 0);
        self.current = None;
        while let Some(r) = self.regions.pop() {
            if r.is_empty() {
                self.regions_done += 1;
                continue;
            }
            self.current = Some(r);
            break;
        }
    }

    fn region_drained(&self) -> bool {
        match &self.current {
            None => true,
            Some(r) => r
                .per_core
                .iter()
                .enumerate()
                .all(|(core, list)| self.cursor.get(core).copied().unwrap_or(0) >= list.len()),
        }
    }
}

impl Workload for WorkSharingScheduler {
    fn next_chunk(&mut self, core: usize, _now_ns: u64) -> Option<Chunk> {
        // The pull that follows a handed-out chunk signals its
        // completion (parked cores also pull every quantum, hence the
        // per-core flag rather than a bare counter).
        if self.handed_flag(core) {
            self.in_flight -= 1;
            self.set_handed(core, false);
        }

        // Barrier: if the current region is drained but chunks are still
        // in flight on other cores, everyone waits.
        if self.region_drained() {
            if self.in_flight == 0 && self.current.is_some() {
                self.regions_done += 1;
                self.advance();
            } else if self.current.is_none() && self.in_flight == 0 {
                self.advance();
            }
        }

        let region = self.current.as_ref()?;
        let list = region.per_core.get(core)?;
        let at = self.cursor[core];
        if at >= list.len() {
            return None; // this core waits at the barrier
        }
        let chunk = list[at].clone();
        self.cursor[core] = at + 1;
        self.in_flight += 1;
        self.set_handed(core, true);
        Some(chunk)
    }

    fn is_done(&self) -> bool {
        self.current.is_none() && self.regions.is_empty() && self.in_flight == 0
    }

    fn next_wake_ns(&self, now_ns: u64) -> Option<u64> {
        // Until the last region drains, pulls are load-bearing even on
        // parked cores: region advancement and barrier release happen
        // inside `next_chunk`, so no skipped pull can be certified
        // side-effect free. Only the drained tail is — `None` lets the
        // engine fast-forward it to the next barrier timestamp.
        if self.is_done() {
            None
        } else {
            Some(now_ns)
        }
    }
}

impl WorkSharingScheduler {
    fn handed_flag(&self, core: usize) -> bool {
        self.handed[core]
    }
    fn set_handed(&mut self, core: usize, v: bool) {
        self.handed[core] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::engine::SimProcessor;
    use simproc::freq::HYPOTHETICAL7;

    fn chunk(n: u64) -> Chunk {
        Chunk::new(n, n / 1000, 0)
    }

    #[test]
    fn static_partition_is_balanced() {
        let r = Region::statically_partitioned((0..10).map(|_| chunk(1)).collect(), 4);
        let sizes: Vec<usize> = r.per_core.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn executes_all_regions_in_order() {
        let regions = vec![
            Region::statically_partitioned(vec![chunk(100_000); 8], 4),
            Region::serial(vec![chunk(50_000)]),
            Region::statically_partitioned(vec![chunk(100_000); 8], 4),
        ];
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = WorkSharingScheduler::new(regions, p.n_cores());
        p.run(&mut s, |_| {});
        assert!(s.is_done());
        assert_eq!(s.regions_done(), 3);
    }

    #[test]
    fn barrier_blocks_next_region() {
        // Region 1: core 0 gets much more work. Region 2 must not start
        // until core 0 finishes, so total time ~= core-0's serial time
        // of region 1 plus region 2.
        let r1 = Region::from_parts(vec![
            vec![chunk(4_000_000)],
            vec![chunk(100_000)],
            vec![chunk(100_000)],
            vec![chunk(100_000)],
        ]);
        let r2 = Region::statically_partitioned(vec![chunk(100_000); 4], 4);
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = WorkSharingScheduler::new(vec![r1, r2], p.n_cores());
        let secs = p.run(&mut s, |_| {});
        let cf = p.core_freq().hz();
        let lower_bound = (4_000_000.0 + 100_000.0) / cf;
        assert!(
            secs >= lower_bound,
            "imbalanced region must serialize at the barrier: {secs} < {lower_bound}"
        );
    }

    #[test]
    fn empty_regions_are_skipped() {
        let regions = vec![
            Region::statically_partitioned(vec![], 4),
            Region::statically_partitioned(vec![chunk(100_000); 4], 4),
            Region::statically_partitioned(vec![], 4),
        ];
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = WorkSharingScheduler::new(regions, p.n_cores());
        p.run(&mut s, |_| {});
        assert!(s.is_done());
        assert_eq!(s.regions_done(), 3);
    }

    #[test]
    fn serial_region_uses_one_core() {
        let regions = vec![Region::serial(vec![chunk(500_000); 4])];
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = WorkSharingScheduler::new(regions, p.n_cores());
        let secs = p.run(&mut s, |_| {});
        let serial = 4.0 * 500_000.0 / p.core_freq().hz();
        assert!(secs >= serial);
    }

    #[test]
    fn no_work_is_immediately_done() {
        let s = WorkSharingScheduler::new(vec![], 4);
        assert!(s.is_done());
    }
}
