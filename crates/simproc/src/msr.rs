//! Model-Specific Register (MSR) file, RAPL energy accounting, and an
//! MSR-SAFE-like session layer.
//!
//! The Cuttlefish runtime observes the machine *only* through MSRs, so
//! this module reproduces the registers it needs with the same
//! semantics:
//!
//! | Address | Register | Semantics |
//! |---|---|---|
//! | `0x606` | `MSR_RAPL_POWER_UNIT` | bits 8..13 = energy-status unit `n`; one count = `1/2ⁿ` J |
//! | `0x611` | `MSR_PKG_ENERGY_STATUS` | 32-bit wrapping package energy counter, updated every 1 ms of virtual time (the Haswell RAPL cadence the paper's §5.4 relies on) |
//! | `0x198` | `IA32_PERF_STATUS` | current core ratio in bits 8..16 |
//! | `0x199` | `IA32_PERF_CTL` | write target core ratio to bits 8..16 (chip-wide, as the paper configures all cores together) |
//! | `0x620` | `MSR_UNCORE_RATIO_LIMIT` | bits 0..7 = max uncore ratio, bits 8..15 = min; writing min = max pins the uncore frequency (exactly how Cuttlefish drives UFS) |
//! | `0x309` | `IA32_FIXED_CTR0` | per-core `INST_RETIRED.ANY`, 48-bit wrapping |
//! | `0x700` | `SIM_TOR_INSERT_MISS_LOCAL` | socket-aggregated TOR-insert count for local misses, 48-bit wrapping |
//! | `0x701` | `SIM_TOR_INSERT_MISS_REMOTE` | same for remote misses |
//!
//! The two `0x700`-range registers are a deliberate simplification: real
//! Haswell exposes TOR inserts through per-CBo uncore-PMU counter pairs
//! that must be programmed with an event select and unit mask
//! (`TOR_INSERT` with `MISS_LOCAL`/`MISS_REMOTE` umasks, Intel uncore
//! performance monitoring guide). The simulator pre-aggregates across
//! CBos and exposes one free-running counter per umask; the profiling
//! arithmetic downstream (sum both, divide by instructions retired) is
//! unchanged.
//!
//! [`MsrSession`] mirrors the MSR-SAFE discipline of the paper's
//! methodology: an allow-list of readable/writable registers, original
//! values of writable registers captured at session open and restored at
//! close.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// `MSR_RAPL_POWER_UNIT`.
pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
/// `MSR_PKG_ENERGY_STATUS` — 32-bit wrapping energy counter.
pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
/// `IA32_PERF_STATUS` — current core ratio.
pub const IA32_PERF_STATUS: u32 = 0x198;
/// `IA32_PERF_CTL` — core DVFS control.
pub const IA32_PERF_CTL: u32 = 0x199;
/// `MSR_UNCORE_RATIO_LIMIT` — UFS control.
pub const MSR_UNCORE_RATIO_LIMIT: u32 = 0x620;
/// `IA32_FIXED_CTR0` — per-core instructions retired.
pub const IA32_FIXED_CTR0: u32 = 0x309;
/// `IA32_CLOCK_MODULATION` — per-core dynamic duty-cycle modulation
/// (DDCM). Bit 4 enables modulation; bits 0..4 select the duty level in
/// 1/16 steps (extended modulation). DDCM gates the clock without
/// lowering the voltage, which is why it saves less energy than DVFS
/// for the same slowdown — the comparison the related work (\[6\], \[24\],
/// \[50\]) studies and this simulator reproduces.
pub const IA32_CLOCK_MODULATION: u32 = 0x19a;
/// `IA32_MPERF` — per-core reference-clock ticks while unhalted.
pub const IA32_MPERF: u32 = 0xe7;
/// `IA32_APERF` — per-core actual-clock ticks while unhalted. The
/// ratio `ΔAPERF/ΔMPERF` is the effective frequency ratio — the
/// standard way to verify DVFS actually took effect.
pub const IA32_APERF: u32 = 0xe8;
/// Reference (TSC) clock in Hz, the MPERF tick rate.
pub const TSC_HZ: f64 = 100.0e6 * 23.0;
/// Simulated socket-wide TOR inserts, local-miss umask.
pub const SIM_TOR_INSERT_MISS_LOCAL: u32 = 0x700;
/// Simulated socket-wide TOR inserts, remote-miss umask.
pub const SIM_TOR_INSERT_MISS_REMOTE: u32 = 0x701;

/// Energy-status unit exponent: one RAPL count = `2^-14` J ≈ 61 µJ
/// (Haswell-EP package domain).
pub const ENERGY_UNIT_EXPONENT: u32 = 14;

/// Joules represented by one package-energy count.
pub const JOULES_PER_COUNT: f64 = 1.0 / (1u64 << ENERGY_UNIT_EXPONENT) as f64;

/// Mask for 48-bit free-running performance counters.
pub const CTR48_MASK: u64 = (1 << 48) - 1;

/// Errors surfaced by MSR access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsrError {
    /// The address is not implemented by this machine.
    Unknown(u32),
    /// The register exists but is read-only.
    ReadOnly(u32),
    /// Core index out of range for a per-core register.
    BadCore(usize),
    /// A session denied access (not on the allow-list).
    Denied(u32),
}

impl std::fmt::Display for MsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsrError::Unknown(a) => write!(f, "unknown MSR {a:#x}"),
            MsrError::ReadOnly(a) => write!(f, "MSR {a:#x} is read-only"),
            MsrError::BadCore(c) => write!(f, "core {c} out of range"),
            MsrError::Denied(a) => write!(f, "MSR {a:#x} not on session allow-list"),
        }
    }
}

impl std::error::Error for MsrError {}

/// The register file of one simulated package.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsrFile {
    n_cores: usize,
    /// Exact accumulated package energy in joules (simulation ground
    /// truth; the RAPL counter is its quantized, wrapping projection).
    energy_joules: f64,
    /// Per-core retired-instruction accumulators (exact).
    inst_retired: Vec<f64>,
    /// Per-core unhalted reference-clock ticks (exact).
    mperf: Vec<f64>,
    /// Per-core unhalted actual-clock ticks (exact).
    aperf: Vec<f64>,
    /// Socket-wide TOR insert accumulators (exact).
    tor_local: f64,
    tor_remote: f64,
    /// Architectural control registers.
    perf_ctl: u64,
    uncore_ratio_limit: u64,
    /// Per-core `IA32_CLOCK_MODULATION` values.
    clock_modulation: Vec<u64>,
    /// Current core ratio mirrored into `IA32_PERF_STATUS`.
    cur_core_ratio: u32,
}

impl MsrFile {
    /// Fresh register file with control registers reflecting the given
    /// initial ratios.
    pub fn new(n_cores: usize, core_ratio: u32, uncore_ratio: u32) -> Self {
        let mut f = MsrFile {
            n_cores,
            energy_joules: 0.0,
            inst_retired: vec![0.0; n_cores],
            mperf: vec![0.0; n_cores],
            aperf: vec![0.0; n_cores],
            tor_local: 0.0,
            tor_remote: 0.0,
            perf_ctl: 0,
            uncore_ratio_limit: 0,
            clock_modulation: vec![0; n_cores],
            cur_core_ratio: core_ratio,
        };
        f.perf_ctl = (core_ratio as u64) << 8;
        f.uncore_ratio_limit = Self::encode_uncore_limit(uncore_ratio, uncore_ratio);
        f
    }

    /// Encode a `MSR_UNCORE_RATIO_LIMIT` value pinning min=`min`,
    /// max=`max` (ratios in 100 MHz units).
    pub fn encode_uncore_limit(min: u32, max: u32) -> u64 {
        ((min as u64 & 0x7f) << 8) | (max as u64 & 0x7f)
    }

    /// Decode (min, max) ratios from a `MSR_UNCORE_RATIO_LIMIT` value.
    pub fn decode_uncore_limit(v: u64) -> (u32, u32) {
        (((v >> 8) & 0x7f) as u32, (v & 0x7f) as u32)
    }

    /// Encode an `IA32_PERF_CTL` value requesting the given core ratio.
    pub fn encode_perf_ctl(ratio: u32) -> u64 {
        (ratio as u64 & 0xff) << 8
    }

    /// Decode the requested core ratio from an `IA32_PERF_CTL` value.
    pub fn decode_perf_ctl(v: u64) -> u32 {
        ((v >> 8) & 0xff) as u32
    }

    /// Encode an `IA32_CLOCK_MODULATION` value: `duty_16ths` of 16
    /// (1..=15), or disabled when 0/16.
    pub fn encode_clock_modulation(duty_16ths: u32) -> u64 {
        if duty_16ths == 0 || duty_16ths >= 16 {
            0
        } else {
            0x10 | duty_16ths as u64
        }
    }

    /// Effective duty fraction of a core (1.0 when modulation is off).
    pub fn duty_fraction(&self, core: usize) -> f64 {
        let v = self.clock_modulation.get(core).copied().unwrap_or(0);
        if v & 0x10 == 0 {
            1.0
        } else {
            let level = (v & 0x0f).max(1);
            level as f64 / 16.0
        }
    }

    // ------------------------------------------------------------------
    // Engine-side (device) interface
    // ------------------------------------------------------------------

    /// Accumulate `joules` of package energy (called once per quantum).
    pub fn add_energy(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0);
        self.energy_joules += joules;
    }

    /// Accumulate retired instructions on `core`.
    pub fn add_inst_retired(&mut self, core: usize, n: f64) {
        self.inst_retired[core] += n;
    }

    /// Accumulate TOR inserts.
    pub fn add_tor(&mut self, local: f64, remote: f64) {
        self.tor_local += local;
        self.tor_remote += remote;
    }

    /// Accumulate unhalted clock ticks on `core`: `busy_s` seconds of
    /// non-halted execution at `cf_hz` actual clock.
    pub fn add_unhalted(&mut self, core: usize, busy_s: f64, cf_hz: f64) {
        self.mperf[core] += busy_s * TSC_HZ;
        self.aperf[core] += busy_s * cf_hz;
    }

    /// Exact energy ground truth (not available to MSR readers).
    pub fn energy_joules_exact(&self) -> f64 {
        self.energy_joules
    }

    /// Exact total instructions retired across all cores.
    pub fn inst_retired_exact(&self) -> f64 {
        self.inst_retired.iter().sum()
    }

    /// Requested core ratio from the last `IA32_PERF_CTL` write.
    pub fn requested_core_ratio(&self) -> u32 {
        Self::decode_perf_ctl(self.perf_ctl)
    }

    /// Requested uncore (min, max) ratios.
    pub fn requested_uncore_ratios(&self) -> (u32, u32) {
        Self::decode_uncore_limit(self.uncore_ratio_limit)
    }

    /// Engine reports the ratio actually in effect (mirrored into
    /// `IA32_PERF_STATUS`).
    pub fn set_current_core_ratio(&mut self, ratio: u32) {
        self.cur_core_ratio = ratio;
    }

    // ------------------------------------------------------------------
    // Software-visible interface
    // ------------------------------------------------------------------

    /// Read a package-scope MSR.
    pub fn read(&self, addr: u32) -> Result<u64, MsrError> {
        match addr {
            MSR_RAPL_POWER_UNIT => Ok(((ENERGY_UNIT_EXPONENT as u64) & 0x1f) << 8),
            MSR_PKG_ENERGY_STATUS => {
                let counts = (self.energy_joules / JOULES_PER_COUNT) as u64;
                Ok(counts & 0xffff_ffff)
            }
            IA32_PERF_STATUS => Ok((self.cur_core_ratio as u64) << 8),
            IA32_PERF_CTL => Ok(self.perf_ctl),
            MSR_UNCORE_RATIO_LIMIT => Ok(self.uncore_ratio_limit),
            SIM_TOR_INSERT_MISS_LOCAL => Ok((self.tor_local as u64) & CTR48_MASK),
            SIM_TOR_INSERT_MISS_REMOTE => Ok((self.tor_remote as u64) & CTR48_MASK),
            IA32_FIXED_CTR0 => Err(MsrError::BadCore(usize::MAX)),
            _ => Err(MsrError::Unknown(addr)),
        }
    }

    /// Read a per-core MSR.
    pub fn read_core(&self, core: usize, addr: u32) -> Result<u64, MsrError> {
        if core >= self.n_cores {
            return Err(MsrError::BadCore(core));
        }
        match addr {
            IA32_FIXED_CTR0 => Ok((self.inst_retired[core] as u64) & CTR48_MASK),
            IA32_MPERF => Ok((self.mperf[core] as u64) & CTR48_MASK),
            IA32_APERF => Ok((self.aperf[core] as u64) & CTR48_MASK),
            IA32_CLOCK_MODULATION => Ok(self.clock_modulation[core]),
            _ => self.read(addr),
        }
    }

    /// Write a per-core MSR.
    pub fn write_core(&mut self, core: usize, addr: u32, value: u64) -> Result<(), MsrError> {
        if core >= self.inst_retired.len() {
            return Err(MsrError::BadCore(core));
        }
        match addr {
            IA32_CLOCK_MODULATION => {
                self.clock_modulation[core] = value & 0x1f;
                Ok(())
            }
            _ => self.write(addr, value),
        }
    }

    /// Write a package-scope MSR.
    pub fn write(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        match addr {
            IA32_PERF_CTL => {
                self.perf_ctl = value;
                Ok(())
            }
            MSR_UNCORE_RATIO_LIMIT => {
                self.uncore_ratio_limit = value;
                Ok(())
            }
            MSR_RAPL_POWER_UNIT
            | MSR_PKG_ENERGY_STATUS
            | IA32_PERF_STATUS
            | IA32_FIXED_CTR0
            | IA32_MPERF
            | IA32_APERF
            | SIM_TOR_INSERT_MISS_LOCAL
            | SIM_TOR_INSERT_MISS_REMOTE => Err(MsrError::ReadOnly(addr)),
            _ => Err(MsrError::Unknown(addr)),
        }
    }
}

/// Access rights for one allow-list entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    Read,
    ReadWrite,
}

/// An MSR-SAFE-like session: allow-listed access with save/restore of
/// writable control registers.
///
/// The paper's methodology uses the LLNL MSR-SAFE kernel module "for
/// saving and restoring MSR values"; this type plays that role. Open a
/// session before handing MSR access to a tuning runtime; [`MsrSession::restore`]
/// puts every writable register back to its pre-session value (as
/// MSR-SAFE does on release).
#[derive(Debug, Clone)]
pub struct MsrSession {
    allow: BTreeMap<u32, Access>,
    saved: BTreeMap<u32, u64>,
}

impl MsrSession {
    /// Open a session over `file` with the given allow-list, snapshotting
    /// current values of all writable registers.
    pub fn open(file: &MsrFile, allow: &[(u32, Access)]) -> Self {
        let allow: BTreeMap<u32, Access> = allow.iter().copied().collect();
        let mut saved = BTreeMap::new();
        for (&addr, &acc) in &allow {
            if acc == Access::ReadWrite {
                if let Ok(v) = file.read(addr) {
                    saved.insert(addr, v);
                }
            }
        }
        MsrSession { allow, saved }
    }

    /// The allow-list Cuttlefish needs: frequency controls writable,
    /// counters readable.
    pub fn cuttlefish_allowlist() -> Vec<(u32, Access)> {
        vec![
            (IA32_PERF_CTL, Access::ReadWrite),
            (MSR_UNCORE_RATIO_LIMIT, Access::ReadWrite),
            (IA32_PERF_STATUS, Access::Read),
            (MSR_RAPL_POWER_UNIT, Access::Read),
            (MSR_PKG_ENERGY_STATUS, Access::Read),
            (IA32_FIXED_CTR0, Access::Read),
            (SIM_TOR_INSERT_MISS_LOCAL, Access::Read),
            (SIM_TOR_INSERT_MISS_REMOTE, Access::Read),
        ]
    }

    fn check(&self, addr: u32, need_write: bool) -> Result<(), MsrError> {
        match self.allow.get(&addr) {
            Some(Access::ReadWrite) => Ok(()),
            Some(Access::Read) if !need_write => Ok(()),
            _ => Err(MsrError::Denied(addr)),
        }
    }

    /// Allow-list-checked package read.
    pub fn read(&self, file: &MsrFile, addr: u32) -> Result<u64, MsrError> {
        self.check(addr, false)?;
        file.read(addr)
    }

    /// Allow-list-checked per-core read.
    pub fn read_core(&self, file: &MsrFile, core: usize, addr: u32) -> Result<u64, MsrError> {
        self.check(addr, false)?;
        file.read_core(core, addr)
    }

    /// Allow-list-checked write.
    pub fn write(&self, file: &mut MsrFile, addr: u32, value: u64) -> Result<(), MsrError> {
        self.check(addr, true)?;
        file.write(addr, value)
    }

    /// Allow-list-checked per-core write.
    pub fn write_core(
        &self,
        file: &mut MsrFile,
        core: usize,
        addr: u32,
        value: u64,
    ) -> Result<(), MsrError> {
        self.check(addr, true)?;
        file.write_core(core, addr, value)
    }

    /// Restore every writable register to its value at session open.
    pub fn restore(&self, file: &mut MsrFile) {
        for (&addr, &v) in &self.saved {
            // Saved registers were readable at open; writes cannot fail
            // for writable control registers.
            let _ = file.write(addr, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> MsrFile {
        MsrFile::new(4, 23, 30)
    }

    #[test]
    fn rapl_unit_decodes_to_61_microjoules() {
        let f = file();
        let v = f.read(MSR_RAPL_POWER_UNIT).unwrap();
        let esu = (v >> 8) & 0x1f;
        assert_eq!(esu, 14);
        assert!((JOULES_PER_COUNT - 61.0e-6).abs() < 1e-6);
    }

    #[test]
    fn energy_counter_quantizes_and_wraps() {
        let mut f = file();
        f.add_energy(1.0);
        let counts = f.read(MSR_PKG_ENERGY_STATUS).unwrap();
        let back = counts as f64 * JOULES_PER_COUNT;
        assert!((back - 1.0).abs() < 2.0 * JOULES_PER_COUNT);

        // Push past the 32-bit wrap point: 2^32 counts = 2^18 J.
        f.add_energy(262_144.0);
        let wrapped = f.read(MSR_PKG_ENERGY_STATUS).unwrap();
        assert!(wrapped < u32::MAX as u64);
        // Ground truth is unaffected by the wrap.
        assert!(f.energy_joules_exact() > 262_144.0);
    }

    #[test]
    fn perf_ctl_roundtrip() {
        let mut f = file();
        f.write(IA32_PERF_CTL, MsrFile::encode_perf_ctl(15))
            .unwrap();
        assert_eq!(f.requested_core_ratio(), 15);
        assert_eq!(MsrFile::decode_perf_ctl(f.read(IA32_PERF_CTL).unwrap()), 15);
    }

    #[test]
    fn uncore_limit_roundtrip() {
        let mut f = file();
        f.write(MSR_UNCORE_RATIO_LIMIT, MsrFile::encode_uncore_limit(18, 18))
            .unwrap();
        assert_eq!(f.requested_uncore_ratios(), (18, 18));
    }

    #[test]
    fn per_core_instruction_counters() {
        let mut f = file();
        f.add_inst_retired(0, 1000.0);
        f.add_inst_retired(3, 500.0);
        assert_eq!(f.read_core(0, IA32_FIXED_CTR0).unwrap(), 1000);
        assert_eq!(f.read_core(3, IA32_FIXED_CTR0).unwrap(), 500);
        assert_eq!(f.read_core(1, IA32_FIXED_CTR0).unwrap(), 0);
        assert!(matches!(
            f.read_core(9, IA32_FIXED_CTR0),
            Err(MsrError::BadCore(9))
        ));
    }

    #[test]
    fn counters_are_read_only() {
        let mut f = file();
        assert!(matches!(
            f.write(MSR_PKG_ENERGY_STATUS, 0),
            Err(MsrError::ReadOnly(_))
        ));
        assert!(matches!(
            f.write(SIM_TOR_INSERT_MISS_LOCAL, 0),
            Err(MsrError::ReadOnly(_))
        ));
    }

    #[test]
    fn unknown_msr_rejected() {
        let f = file();
        assert!(matches!(f.read(0xdead), Err(MsrError::Unknown(0xdead))));
    }

    #[test]
    fn session_enforces_allowlist() {
        let mut f = file();
        let s = MsrSession::open(&f, &MsrSession::cuttlefish_allowlist());
        assert!(s.read(&f, MSR_PKG_ENERGY_STATUS).is_ok());
        assert!(s
            .write(&mut f, IA32_PERF_CTL, MsrFile::encode_perf_ctl(12))
            .is_ok());
        // Reads allowed, writes denied on read-only entries.
        assert!(matches!(
            s.write(&mut f, MSR_PKG_ENERGY_STATUS, 0),
            Err(MsrError::Denied(_))
        ));
        // Unlisted register denied entirely even though the device knows it.
        let narrow = MsrSession::open(&f, &[(IA32_PERF_CTL, Access::ReadWrite)]);
        assert!(matches!(
            narrow.read(&f, MSR_PKG_ENERGY_STATUS),
            Err(MsrError::Denied(_))
        ));
    }

    #[test]
    fn session_restore_puts_controls_back() {
        let mut f = file();
        let s = MsrSession::open(&f, &MsrSession::cuttlefish_allowlist());
        s.write(&mut f, IA32_PERF_CTL, MsrFile::encode_perf_ctl(12))
            .unwrap();
        s.write(
            &mut f,
            MSR_UNCORE_RATIO_LIMIT,
            MsrFile::encode_uncore_limit(12, 12),
        )
        .unwrap();
        s.restore(&mut f);
        assert_eq!(f.requested_core_ratio(), 23);
        assert_eq!(f.requested_uncore_ratios(), (30, 30));
    }

    #[test]
    fn aperf_mperf_ratio_reports_effective_frequency() {
        let mut f = file();
        // 10 ms unhalted at 1.5 GHz on core 2.
        f.add_unhalted(2, 0.010, 1.5e9);
        let m = f.read_core(2, IA32_MPERF).unwrap() as f64;
        let a = f.read_core(2, IA32_APERF).unwrap() as f64;
        let eff_ghz = a / m * TSC_HZ / 1e9;
        assert!((eff_ghz - 1.5).abs() < 0.01, "effective {eff_ghz} GHz");
        // Idle core: both counters still zero.
        assert_eq!(f.read_core(0, IA32_MPERF).unwrap(), 0);
    }

    #[test]
    fn tor_counters_accumulate() {
        let mut f = file();
        f.add_tor(100.0, 25.0);
        f.add_tor(50.0, 25.0);
        assert_eq!(f.read(SIM_TOR_INSERT_MISS_LOCAL).unwrap(), 150);
        assert_eq!(f.read(SIM_TOR_INSERT_MISS_REMOTE).unwrap(), 50);
    }
}
