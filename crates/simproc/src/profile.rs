//! Counter snapshot and delta helpers — the TIPI/JPI arithmetic shared
//! by the Cuttlefish runtime backend and the trace collectors.
//!
//! The implementation mirrors what the paper (following RCRtool) does on
//! real hardware: read the RAPL package-energy MSR, the per-core
//! instructions-retired counters, and the TOR-insert counters; diff
//! against the previous reading with wraparound handling; divide.

use crate::engine::SimProcessor;
use crate::msr::{
    MsrError, IA32_FIXED_CTR0, JOULES_PER_COUNT, MSR_PKG_ENERGY_STATUS, SIM_TOR_INSERT_MISS_LOCAL,
    SIM_TOR_INSERT_MISS_REMOTE,
};

/// Raw counter values captured at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// RAPL package energy counter (32-bit wrapping, ESU units).
    pub energy_counts: u64,
    /// Sum of per-core `INST_RETIRED.ANY` (48-bit wrapping each).
    pub inst_retired: u64,
    /// Socket TOR inserts, local-miss umask (48-bit wrapping).
    pub tor_local: u64,
    /// Socket TOR inserts, remote-miss umask (48-bit wrapping).
    pub tor_remote: u64,
    /// Virtual timestamp, nanoseconds.
    pub t_ns: u64,
}

impl CounterSnapshot {
    /// Capture all counters from a simulated processor.
    pub fn capture(proc: &SimProcessor) -> Result<Self, MsrError> {
        let energy_counts = proc.msr_read(MSR_PKG_ENERGY_STATUS)?;
        let mut inst: u64 = 0;
        for core in 0..proc.n_cores() {
            inst = inst.wrapping_add(proc.msr_read_core(core, IA32_FIXED_CTR0)?);
        }
        Ok(CounterSnapshot {
            energy_counts,
            inst_retired: inst,
            tor_local: proc.msr_read(SIM_TOR_INSERT_MISS_LOCAL)?,
            tor_remote: proc.msr_read(SIM_TOR_INSERT_MISS_REMOTE)?,
            t_ns: proc.now_ns(),
        })
    }
}

/// A profiling sample over an interval: the two quantities the
/// Cuttlefish daemon lives on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// TOR inserts per instruction over the interval.
    pub tipi: f64,
    /// Joules per instruction over the interval.
    pub jpi: f64,
    /// Instructions retired over the interval.
    pub instructions: u64,
    /// Joules over the interval.
    pub joules: f64,
    /// Interval length, nanoseconds.
    pub dt_ns: u64,
}

/// Difference of two wrapping counters with `bits` significant bits.
#[inline]
pub fn wrapping_delta(now: u64, before: u64, bits: u32) -> u64 {
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    now.wrapping_sub(before) & mask
}

/// Compute the interval sample between two snapshots.
///
/// Returns `None` when no instructions retired in the interval (TIPI and
/// JPI are undefined; the paper's daemon simply skips such readings).
pub fn delta(before: &CounterSnapshot, now: &CounterSnapshot) -> Option<Sample> {
    let instructions = wrapping_delta(now.inst_retired, before.inst_retired, 64);
    if instructions == 0 {
        return None;
    }
    let energy = wrapping_delta(now.energy_counts, before.energy_counts, 32);
    let tor = wrapping_delta(now.tor_local, before.tor_local, 48)
        + wrapping_delta(now.tor_remote, before.tor_remote, 48);
    let joules = energy as f64 * JOULES_PER_COUNT;
    Some(Sample {
        tipi: tor as f64 / instructions as f64,
        jpi: joules / instructions as f64,
        instructions,
        joules,
        dt_ns: now.t_ns.saturating_sub(before.t_ns),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::CTR48_MASK;

    fn snap(e: u64, i: u64, tl: u64, tr: u64, t: u64) -> CounterSnapshot {
        CounterSnapshot {
            energy_counts: e,
            inst_retired: i,
            tor_local: tl,
            tor_remote: tr,
            t_ns: t,
        }
    }

    #[test]
    fn basic_delta() {
        let a = snap(0, 0, 0, 0, 0);
        let b = snap(16384, 1_000_000, 50_000, 14_000, 20_000_000);
        let s = delta(&a, &b).unwrap();
        assert!(
            (s.jpi - 1.0 / 1_000_000.0).abs() < 1e-12,
            "16384 counts = 1 J"
        );
        assert!((s.tipi - 0.064).abs() < 1e-12);
        assert_eq!(s.dt_ns, 20_000_000);
    }

    #[test]
    fn zero_instructions_yields_none() {
        let a = snap(0, 42, 0, 0, 0);
        let b = snap(100, 42, 7, 0, 1);
        assert!(delta(&a, &b).is_none());
    }

    #[test]
    fn rapl_wraparound_handled() {
        let a = snap(0xffff_fff0, 0, 0, 0, 0);
        let b = snap(0x10, 1000, 0, 0, 1);
        let s = delta(&a, &b).unwrap();
        let counts = (s.joules / JOULES_PER_COUNT).round() as u64;
        assert_eq!(counts, 0x20, "32 counts across the 32-bit wrap");
    }

    #[test]
    fn tor_wraparound_handled() {
        let a = snap(0, 0, CTR48_MASK - 5, CTR48_MASK - 1, 0);
        let b = snap(0, 100, 10, 3, 1);
        let s = delta(&a, &b).unwrap();
        // local: 16, remote: 5 => 21 total.
        assert!((s.tipi - 21.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn capture_from_processor_works() {
        use crate::engine::{Chunk, Workload};
        use crate::freq::HASWELL_2650V3;
        struct One(bool);
        impl Workload for One {
            fn next_chunk(&mut self, core: usize, _t: u64) -> Option<Chunk> {
                if core == 0 && !self.0 {
                    self.0 = true;
                    Some(Chunk::new(10_000_000, 640_000, 0))
                } else {
                    None
                }
            }
            fn is_done(&self) -> bool {
                self.0
            }
        }
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let before = CounterSnapshot::capture(&p).unwrap();
        let mut wl = One(false);
        p.run(&mut wl, |_| {});
        let after = CounterSnapshot::capture(&p).unwrap();
        let s = delta(&before, &after).unwrap();
        // Counter reads floor the exact f64 accumulator, so allow for
        // one count of rounding slack.
        assert!(
            s.instructions.abs_diff(10_000_000) <= 1,
            "{}",
            s.instructions
        );
        assert!((s.tipi - 0.064).abs() < 1e-6);
        assert!(s.jpi > 0.0);
    }
}
