//! # simproc — a simulated multicore processor with DVFS and UFS
//!
//! This crate is the hardware substrate for the Cuttlefish reproduction.
//! The original paper (SC'21) runs on a 20-core Intel Haswell Xeon
//! E5-2650 v3 and observes/actuates the machine exclusively through:
//!
//! * model-specific registers (MSRs): `INST_RETIRED.ANY`, the uncore
//!   `TOR_INSERT.MISS_{LOCAL,REMOTE}` counters, and the RAPL package
//!   energy counter, and
//! * two frequency knobs: per-chip core DVFS (1.2–2.3 GHz in 0.1 GHz
//!   steps) and uncore frequency scaling via MSR `0x620`
//!   (1.2–3.0 GHz).
//!
//! `simproc` reproduces exactly that interface over an analytic
//! performance and power model, advanced by a discrete-event engine in
//! fixed quanta of virtual time. Anything that talks to the machine only
//! through [`msr`] reads/writes — as the Cuttlefish runtime does — cannot
//! tell the difference structurally, and the first-order physics
//! (memory latency `∝ 1/UF + t_DRAM`, dynamic power `∝ V²·f`) gives the
//! same qualitative energy/performance trade-offs the paper exploits.
//!
//! ## Layout
//!
//! * [`freq`] — frequency domains and level tables (integer 100 MHz units)
//! * [`perf`] — per-core timing model
//! * [`power`] — package power model
//! * [`msr`] — MSR register file, RAPL accumulation, MSR-SAFE-like sessions
//! * [`engine`] — the discrete-event engine: cores, chunks, counters
//! * [`governor`] — the `Default` baseline (performance governor + BIOS
//!   "Auto" uncore controller)
//! * [`profile`] — counter snapshot/delta helpers (TIPI/JPI arithmetic)
//!
//! ## Quick example
//!
//! ```
//! use simproc::engine::{Chunk, SimProcessor, Workload};
//! use simproc::freq::HASWELL_2650V3;
//!
//! /// A trivial workload: every core executes one compute-bound chunk.
//! struct OneShot { handed: Vec<bool> }
//! impl Workload for OneShot {
//!     fn next_chunk(&mut self, core: usize, _now_ns: u64) -> Option<Chunk> {
//!         if self.handed[core] { return None; }
//!         self.handed[core] = true;
//!         Some(Chunk::new(50_000_000, 0, 0))
//!     }
//!     fn is_done(&self) -> bool { self.handed.iter().all(|&h| h) }
//! }
//!
//! let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
//! let mut wl = OneShot { handed: vec![false; proc.n_cores()] };
//! while !proc.workload_drained(&wl) {
//!     proc.step(&mut wl);
//! }
//! assert!(proc.now_ns() > 0);
//! assert!(proc.total_energy_joules() > 0.0);
//! ```

pub mod engine;
pub mod freq;
pub mod governor;
pub mod msr;
pub mod perf;
pub mod power;
pub mod profile;

pub use engine::{Chunk, SimProcessor, Workload};
pub use freq::{Freq, FreqDomain, MachineSpec, HASWELL_2650V3};
pub use governor::DefaultGovernor;
