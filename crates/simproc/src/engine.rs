//! The discrete-event engine: simulated cores executing work chunks in
//! fixed quanta of virtual time.
//!
//! Each quantum (1 ms by default, matching the RAPL update cadence):
//!
//! 1. Frequency control writes (`IA32_PERF_CTL`, `MSR_UNCORE_RATIO_LIMIT`)
//!    take effect.
//! 2. Every core executes from its current chunk, pulling new chunks
//!    from the [`Workload`] as it drains them. Chunk time follows the
//!    latency model of [`crate::perf`], with the memory-stall term
//!    inflated by the chip-level bandwidth overload factor.
//! 3. Package power for the quantum is computed from the cores' realized
//!    utilizations and the achieved memory traffic, and accumulated into
//!    the RAPL counter.
//!
//! The bandwidth overload factor is a fixed point across quanta: the
//! engine measures the unconstrained demand each quantum expressed and
//! uses `demand / cap` as the next quantum's inflation. For steady
//! phases it converges within a few quanta; transient error is bounded
//! and symmetric.
//!
//! ## The virtual clock and event-driven stepping
//!
//! Time only ever advances in whole quanta, but the engine does not
//! have to *execute* every quantum one call at a time. Two methods
//! expose the virtual clock as an event timeline:
//!
//! * [`SimProcessor::next_event_ns`] reports the earliest future
//!   instant at which an *event* may occur: the start of the quantum
//!   that can contain the earliest chunk completion while every core
//!   is busy (completion time is computable from the current rate —
//!   see [`SimProcessor::busy_runway_quanta`]), the next quantum
//!   boundary while busy and parked cores coexist (a parked core may
//!   be handed work at any quantum), the workload's announced wake
//!   time ([`Workload::next_wake_ns`]) rounded up to the quantum grid
//!   while every core is parked, or `None` when the workload will
//!   never produce work again.
//! * [`SimProcessor::advance_idle`] / [`advance_idle_quanta`]
//!   fast-forward a fully-parked machine across a homogeneous idle
//!   stretch. The advance is *not* an approximation: it performs the
//!   identical per-quantum arithmetic `step` would perform against a
//!   workload that yields no chunks — the same frequency-control
//!   application, the same floor-power computation, the same
//!   per-quantum RAPL energy additions (repeated, so floating-point
//!   accumulation rounds identically), the same residency and
//!   overload-relaxation updates — while skipping the per-core
//!   execution machinery that makes a real `step` expensive. Energy,
//!   RAPL counts, `(cf, uf)` residency, and `time_ns` are bit-identical
//!   to stepping the same quanta one by one (enforced by
//!   `tests/event_clock.rs`).
//! * [`SimProcessor::advance_busy`] / [`advance_busy_quanta`]
//!   fast-forward a *busy* stretch: a per-quantum replay of the exact
//!   `step` execution body (shared code, so bit-identity holds by
//!   construction — same chunk slicing, same `next_chunk` call order,
//!   same repeated RAPL additions, same overload updates) with the
//!   loop-invariant work hoisted out: pending frequency-control
//!   application, the uncore-derived miss-latency/bandwidth terms, and
//!   residency bookkeeping.
//!
//! ## Busy-stretch validity
//!
//! A busy advance is always *numerically* safe — chunk boundaries,
//! phase changes, and mid-stretch parking are absorbed by the replay,
//! which also ends the stretch early once every core parks. What it
//! skips is the *controller*: no `on_quantum` runs inside the stretch.
//! A caller may therefore only request as many quanta as the attached
//! controller certifies its per-quantum action to be a no-op for
//! (clock-scheduled controllers between ticks, pinned or fixed-point
//! governors indefinitely); the conservative
//! [`SimProcessor::busy_runway_quanta`] bound tells telemetry-driven
//! governors how long the inputs to their decisions provably cannot
//! change. The per-quantum telemetry of the stretch is recorded in
//! [`SimProcessor::busy_advance_stats`] so such governors can replay
//! their internal state afterwards. See
//! `cuttlefish::controller::FrequencyController` for the capacity
//! contract.
//!
//! Callers that drive a frequency controller (the Cuttlefish daemon's
//! `Tinv` tick, the cluster barrier loops) interleave the advances
//! with the controller's own scheduled events; see
//! `cuttlefish::controller` for the coupling.
//!
//! [`advance_idle_quanta`]: SimProcessor::advance_idle_quanta
//! [`advance_busy_quanta`]: SimProcessor::advance_busy_quanta

use crate::freq::{Freq, MachineSpec};
use crate::msr::{MsrError, MsrFile};
use crate::perf::{CostProfile, PerfModel, LINE_BYTES};
use crate::power::PowerModel;

/// A unit of work: an instruction stream with its LLC-miss counts and
/// cost profile. Chunks are the only currency between workloads and the
/// engine — the simulator never sees data values, exactly as the real
/// Cuttlefish never sees anything but counter streams.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Instructions retired by this chunk.
    pub instructions: u64,
    /// LLC misses served by the local socket.
    pub misses_local: u64,
    /// LLC misses served by the remote socket (QPI).
    pub misses_remote: u64,
    /// Pipeline/prefetch cost profile.
    pub profile: CostProfile,
}

impl Chunk {
    /// Chunk with the default cost profile.
    pub fn new(instructions: u64, misses_local: u64, misses_remote: u64) -> Self {
        Chunk {
            instructions,
            misses_local,
            misses_remote,
            profile: CostProfile::default(),
        }
    }

    /// Attach a cost profile.
    pub fn with_profile(mut self, profile: CostProfile) -> Self {
        self.profile = profile;
        self
    }

    /// TOR inserts per instruction of this chunk.
    pub fn tipi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.misses_local + self.misses_remote) as f64 / self.instructions as f64
        }
    }
}

/// Source of work for the simulated cores.
///
/// Schedulers (work-sharing, work-stealing) implement this; the engine
/// calls [`Workload::next_chunk`] whenever a core runs dry. Returning
/// `None` parks the core for the rest of the quantum (it will ask again
/// next quantum) — this is how barrier waits and work imbalance manifest.
pub trait Workload {
    /// Next chunk for `core`, or `None` if it has nothing to run now.
    fn next_chunk(&mut self, core: usize, now_ns: u64) -> Option<Chunk>;
    /// True when no further chunks will ever be produced.
    fn is_done(&self) -> bool;
    /// The earliest virtual time at or after `now_ns` at which this
    /// workload may hand out a chunk to a currently-parked core.
    ///
    /// * `Some(t)` promises every `next_chunk` call strictly before `t`
    ///   returns `None` (and is free of observable side effects), so
    ///   the engine may fast-forward a fully-parked machine to `t`.
    /// * `None` means no chunk will ever be produced again — pure
    ///   barrier/communication idling.
    ///
    /// The conservative default, `Some(now_ns)`, declares "work may
    /// appear at any moment": the engine then polls every quantum,
    /// exactly as it did before the virtual-clock layer existed.
    fn next_wake_ns(&self, now_ns: u64) -> Option<u64> {
        Some(now_ns)
    }
}

/// Per-quantum telemetry, for traces and the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantumStats {
    /// Package power over the quantum, watts.
    pub power_watts: f64,
    /// Achieved memory bandwidth, bytes/second.
    pub achieved_bw: f64,
    /// Bandwidth overload factor applied during the quantum (≥ 1).
    pub overload: f64,
    /// Mean core pipeline utilization.
    pub mean_util: f64,
    /// Instructions retired during the quantum (all cores).
    pub instructions: f64,
}

#[derive(Debug, Clone)]
struct RunningChunk {
    remaining_instr: f64,
    remaining_ml: f64,
    remaining_mr: f64,
    profile: CostProfile,
}

#[derive(Debug, Clone, Default)]
struct CoreState {
    current: Option<RunningChunk>,
    /// Seconds of pipeline (compute) time within the current quantum
    /// (wall time — stretched when duty-cycle modulation gates the
    /// clock).
    compute_s: f64,
    /// Seconds the core clock was actually toggling during compute
    /// (`compute_s · duty`): the dynamic-power-relevant time.
    active_s: f64,
    /// Seconds of any execution (compute + stall) within the quantum.
    busy_s: f64,
}

/// The simulated processor package.
#[derive(Debug, Clone)]
pub struct SimProcessor {
    spec: MachineSpec,
    perf: PerfModel,
    power: PowerModel,
    msr: MsrFile,
    cores: Vec<CoreState>,
    cf: Freq,
    uf: Freq,
    time_ns: u64,
    overload: f64,
    last_stats: QuantumStats,
    /// Quanta executed by individual [`SimProcessor::step`] calls.
    stepped_quanta: u64,
    /// Quanta absorbed analytically by [`SimProcessor::advance_idle`].
    idle_advanced_quanta: u64,
    /// Quanta absorbed analytically by [`SimProcessor::advance_busy`].
    busy_advanced_quanta: u64,
    /// Rotates which core is served first each quantum so no core gets a
    /// systematic head start at pulling work.
    rotate: usize,
    /// Virtual nanoseconds spent at each (core, uncore) ratio pair —
    /// the residency profile exploration-cost analyses read.
    residency: std::collections::BTreeMap<(u32, u32), u64>,
    /// Per-quantum telemetry recorded during the most recent
    /// [`SimProcessor::advance_busy_quanta`] call (a reused buffer), so
    /// telemetry-folding controllers can replay their per-quantum state
    /// afterwards without the engine calling them back mid-stretch.
    advance_stats: Vec<QuantumStats>,
}

impl SimProcessor {
    /// New processor with default performance and power models.
    pub fn new(spec: MachineSpec) -> Self {
        let perf = PerfModel::default();
        let power = PowerModel::haswell(&spec.core, &spec.uncore);
        Self::with_models(spec, perf, power)
    }

    /// New processor with explicit models (used by calibration tools).
    pub fn with_models(spec: MachineSpec, perf: PerfModel, power: PowerModel) -> Self {
        spec.validate().expect("invalid machine spec");
        let cf = spec.core.max();
        let uf = spec.uncore.max();
        let msr = MsrFile::new(spec.n_cores, cf.0, uf.0);
        let cores = vec![CoreState::default(); spec.n_cores];
        SimProcessor {
            spec,
            perf,
            power,
            msr,
            cores,
            cf,
            uf,
            time_ns: 0,
            overload: 1.0,
            last_stats: QuantumStats::default(),
            stepped_quanta: 0,
            idle_advanced_quanta: 0,
            busy_advanced_quanta: 0,
            rotate: 0,
            residency: std::collections::BTreeMap::new(),
            advance_stats: Vec::new(),
        }
    }

    /// Machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.spec.n_cores
    }

    /// Performance model in effect.
    pub fn perf_model(&self) -> &PerfModel {
        &self.perf
    }

    /// Power model in effect.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Current virtual time, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.time_ns
    }

    /// Current virtual time, seconds.
    pub fn now_seconds(&self) -> f64 {
        self.time_ns as f64 * 1e-9
    }

    /// Current core frequency.
    pub fn core_freq(&self) -> Freq {
        self.cf
    }

    /// Current uncore frequency.
    pub fn uncore_freq(&self) -> Freq {
        self.uf
    }

    /// Exact accumulated package energy in joules (harness ground truth;
    /// software under test should read the RAPL MSR instead).
    pub fn total_energy_joules(&self) -> f64 {
        self.msr.energy_joules_exact()
    }

    /// Exact total instructions retired.
    pub fn total_instructions(&self) -> f64 {
        self.msr.inst_retired_exact()
    }

    /// Telemetry from the most recent quantum.
    pub fn last_quantum(&self) -> QuantumStats {
        self.last_stats
    }

    /// Virtual nanoseconds spent at each (core, uncore) ratio pair.
    pub fn frequency_residency(&self) -> &std::collections::BTreeMap<(u32, u32), u64> {
        &self.residency
    }

    /// Quanta executed by individual [`step`](Self::step) calls.
    pub fn stepped_quanta(&self) -> u64 {
        self.stepped_quanta
    }

    /// Quanta absorbed analytically by the idle fast-forward
    /// ([`advance_idle`](Self::advance_idle) /
    /// [`advance_idle_quanta`](Self::advance_idle_quanta)).
    pub fn idle_advanced_quanta(&self) -> u64 {
        self.idle_advanced_quanta
    }

    /// Quanta absorbed analytically by the busy fast-forward
    /// ([`advance_busy`](Self::advance_busy) /
    /// [`advance_busy_quanta`](Self::advance_busy_quanta)).
    pub fn busy_advanced_quanta(&self) -> u64 {
        self.busy_advanced_quanta
    }

    /// Per-quantum telemetry recorded by the most recent
    /// [`advance_busy_quanta`](Self::advance_busy_quanta) call, in
    /// execution order — one entry per absorbed quantum. Controllers
    /// that fold telemetry every quantum (the Default governor's
    /// traffic EWMA) replay their state from this record to stay
    /// bit-identical with quantum-by-quantum stepping.
    pub fn busy_advance_stats(&self) -> &[QuantumStats] {
        &self.advance_stats
    }

    /// Total quanta of virtual time elapsed (stepped + fast-forwarded).
    /// The ratio against [`stepped_quanta`](Self::stepped_quanta) is the
    /// stepping-work reduction the virtual-clock layer achieved.
    pub fn total_quanta(&self) -> u64 {
        self.time_ns / self.spec.quantum_ns
    }

    /// True when no core holds an in-flight chunk.
    pub fn cores_parked(&self) -> bool {
        self.cores.iter().all(|c| c.current.is_none())
    }

    /// True when the bandwidth-overload fixed point has settled
    /// bitwise: the factor the next quantum will apply equals the
    /// factor the last executed quantum applied. While a steady busy
    /// stretch holds this, per-quantum telemetry can only drift at
    /// floating-point ULP scale — the condition telemetry-driven
    /// governors fold into their busy fixed-point checks before
    /// granting busy fast-forward capacity.
    pub fn overload_settled(&self) -> bool {
        self.overload.max(1.0).to_bits() == self.last_stats.overload.to_bits()
    }

    /// Direct frequency setters (equivalent to the MSR writes; also used
    /// by the Default governor which owns the platform).
    pub fn set_core_freq(&mut self, f: Freq) {
        let f = self.spec.core.clamp(f);
        self.msr
            .write(crate::msr::IA32_PERF_CTL, MsrFile::encode_perf_ctl(f.0))
            .expect("PERF_CTL is writable");
    }

    /// Pin the uncore frequency (min = max in `MSR_UNCORE_RATIO_LIMIT`).
    pub fn set_uncore_freq(&mut self, f: Freq) {
        let f = self.spec.uncore.clamp(f);
        self.msr
            .write(
                crate::msr::MSR_UNCORE_RATIO_LIMIT,
                MsrFile::encode_uncore_limit(f.0, f.0),
            )
            .expect("UNCORE_RATIO_LIMIT is writable");
    }

    /// Package-scope MSR read.
    pub fn msr_read(&self, addr: u32) -> Result<u64, MsrError> {
        self.msr.read(addr)
    }

    /// Per-core MSR read.
    pub fn msr_read_core(&self, core: usize, addr: u32) -> Result<u64, MsrError> {
        self.msr.read_core(core, addr)
    }

    /// MSR write.
    pub fn msr_write(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        self.msr.write(addr, value)
    }

    /// Per-core MSR write (e.g. `IA32_CLOCK_MODULATION` for DDCM).
    pub fn msr_write_core(&mut self, core: usize, addr: u32, value: u64) -> Result<(), MsrError> {
        self.msr.write_core(core, addr, value)
    }

    /// Convenience: set per-core duty-cycle modulation on every core
    /// (`duty_16ths` of 16; 0 or 16 disables modulation).
    pub fn set_duty_all(&mut self, duty_16ths: u32) {
        for core in 0..self.spec.n_cores {
            self.msr
                .write_core(
                    core,
                    crate::msr::IA32_CLOCK_MODULATION,
                    MsrFile::encode_clock_modulation(duty_16ths),
                )
                .expect("CLOCK_MODULATION is writable");
        }
    }

    /// Borrow the MSR file (for [`crate::msr::MsrSession`] interop).
    pub fn msr_file(&self) -> &MsrFile {
        &self.msr
    }

    /// Mutably borrow the MSR file.
    pub fn msr_file_mut(&mut self) -> &mut MsrFile {
        &mut self.msr
    }

    /// True when the workload is finished *and* every core has drained
    /// its in-flight chunk.
    pub fn workload_drained(&self, wl: &dyn Workload) -> bool {
        wl.is_done() && self.cores.iter().all(|c| c.current.is_none())
    }

    fn apply_frequency_controls(&mut self) {
        let want_cf = Freq(self.msr.requested_core_ratio());
        self.cf = self.spec.core.clamp(want_cf);
        self.msr.set_current_core_ratio(self.cf.0);
        let (min_r, max_r) = self.msr.requested_uncore_ratios();
        // Hardware honours the limit window; with min == max the
        // frequency is pinned. With min < max we model the firmware
        // settling at the max of the window (traffic-greedy), which is
        // what BIOS "Auto" does under load.
        let target = Freq(max_r.max(min_r));
        self.uf = self.spec.uncore.clamp(target);
    }

    /// Advance one quantum, executing work from `wl`.
    pub fn step(&mut self, wl: &mut dyn Workload) {
        self.stepped_quanta += 1;
        self.apply_frequency_controls();
        let cap = self.perf.bandwidth_cap(self.uf);
        let t_miss_local = self.perf.t_miss_local(self.uf);
        let t_miss_remote = self.perf.t_miss_remote(self.uf);
        self.execute_quantum(wl, cap, t_miss_local, t_miss_remote);
        *self.residency.entry((self.cf.0, self.uf.0)).or_insert(0) += self.spec.quantum_ns;
    }

    /// One quantum of core execution, power accounting, and telemetry —
    /// the shared body of [`step`](Self::step) and
    /// [`advance_busy_quanta`](Self::advance_busy_quanta), so the two
    /// paths are bit-identical by construction. The uncore-derived
    /// terms (`cap` and the miss latencies) are parameters so a busy
    /// stretch can hoist them; callers must pass the values derived
    /// from the currently-applied `uf`. Residency and the path counters
    /// are the callers' responsibility (both are exact integer updates,
    /// so hoisting them cannot change any floating-point result).
    fn execute_quantum(
        &mut self,
        wl: &mut dyn Workload,
        cap: f64,
        t_miss_local: f64,
        t_miss_remote: f64,
    ) {
        let quantum_s = self.spec.quantum_ns as f64 * 1e-9;
        let n = self.spec.n_cores;
        let overload = self.overload.max(1.0);

        let mut total_instr = 0.0;
        let mut total_ml = 0.0;
        let mut total_mr = 0.0;
        let mut sum_eff = 0.0;
        let mut sum_util = 0.0;

        for k in 0..n {
            let core = (self.rotate + k) % n;
            // Split-borrow: temporarily move the core state out so we can
            // pass `wl` and `self.perf` around freely.
            let mut st = std::mem::take(&mut self.cores[core]);
            st.compute_s = 0.0;
            st.active_s = 0.0;
            st.busy_s = 0.0;
            // DDCM: a modulated core's clock runs `duty` of the time at
            // the full voltage — the pipeline stretches but each
            // instruction still costs the same active cycles.
            let duty = self.msr.duty_fraction(core);
            let cf_eff_hz = self.cf.hz() * duty;
            let mut budget = quantum_s;

            while budget > 1e-15 {
                let rc = match st.current.take() {
                    Some(rc) => rc,
                    None => match wl.next_chunk(core, self.time_ns) {
                        Some(ch) => RunningChunk {
                            remaining_instr: ch.instructions as f64,
                            remaining_ml: ch.misses_local as f64,
                            remaining_mr: ch.misses_remote as f64,
                            profile: ch.profile,
                        },
                        None => break, // park for the rest of the quantum
                    },
                };

                let compute = rc.remaining_instr * rc.profile.cpi / cf_eff_hz;
                let stall_lat = (rc.remaining_ml * t_miss_local + rc.remaining_mr * t_miss_remote)
                    / rc.profile.mlp;
                let total = compute + stall_lat * overload;

                if total <= budget {
                    // Chunk completes within the quantum.
                    total_instr += rc.remaining_instr;
                    total_ml += rc.remaining_ml;
                    total_mr += rc.remaining_mr;
                    self.msr.add_inst_retired(core, rc.remaining_instr);
                    st.compute_s += compute;
                    st.active_s += compute * duty;
                    st.busy_s += total;
                    budget -= total;
                } else {
                    // Execute a proportional slice and carry the rest.
                    let frac = if total > 0.0 { budget / total } else { 1.0 };
                    let di = rc.remaining_instr * frac;
                    let dl = rc.remaining_ml * frac;
                    let dr = rc.remaining_mr * frac;
                    total_instr += di;
                    total_ml += dl;
                    total_mr += dr;
                    self.msr.add_inst_retired(core, di);
                    st.compute_s += compute * frac;
                    st.active_s += compute * frac * duty;
                    st.busy_s += budget;
                    st.current = Some(RunningChunk {
                        remaining_instr: rc.remaining_instr - di,
                        remaining_ml: rc.remaining_ml - dl,
                        remaining_mr: rc.remaining_mr - dr,
                        profile: rc.profile,
                    });
                    budget = 0.0;
                }
            }

            let util = (st.compute_s / quantum_s).clamp(0.0, 1.0);
            sum_util += util;
            // Power follows the *active-clock* fraction: under DDCM the
            // dynamic energy per instruction is unchanged (same active
            // cycles at the same voltage) while runtime stretches —
            // which is exactly why DVFS saves more for equal slowdown.
            let active = (st.active_s / quantum_s).clamp(0.0, 1.0);
            sum_eff += self.power.core_effective(active);
            self.msr.add_unhalted(core, st.busy_s, self.cf.hz());
            self.cores[core] = st;
        }
        self.rotate = (self.rotate + 1) % n;

        self.msr.add_tor(total_ml, total_mr);

        // Achieved and unconstrained-demand bandwidth this quantum.
        let achieved_bw = (total_ml + total_mr) * LINE_BYTES / quantum_s;
        let demand_bw = achieved_bw * overload;
        self.overload = if cap > 0.0 {
            (demand_bw / cap).max(1.0)
        } else {
            1.0
        };

        let traffic = (achieved_bw / self.perf.dram_peak_bw).clamp(0.0, 1.0);
        let watts = self.power.package_watts(self.cf, self.uf, sum_eff, traffic);
        self.msr.add_energy(watts * quantum_s);

        self.last_stats = QuantumStats {
            power_watts: watts,
            achieved_bw,
            overload,
            mean_util: sum_util / n as f64,
            instructions: total_instr,
        };
        self.time_ns += self.spec.quantum_ns;
    }

    /// Fast-forward `quanta` idle quanta analytically.
    ///
    /// Equivalent — bit for bit, including floating-point accumulation
    /// order — to calling [`step`](Self::step) `quanta` times against a
    /// workload that yields no chunks, but without the per-core
    /// execution machinery. Pending frequency-control writes are
    /// applied once up front (they are idempotent across identical
    /// requests, exactly as repeated `step`s would re-apply them); the
    /// per-quantum floor power is computed once and accumulated with
    /// one RAPL addition per quantum so the energy counter rounds
    /// identically; residency, the virtual clock, and the core-rotation
    /// cursor advance in closed form.
    ///
    /// # Panics
    /// Panics if any core still holds an in-flight chunk — callers
    /// guard with [`cores_parked`](Self::cores_parked).
    pub fn advance_idle_quanta(&mut self, quanta: u64) {
        if quanta == 0 {
            return;
        }
        assert!(
            self.cores_parked(),
            "advance_idle requires every core to be parked"
        );
        self.apply_frequency_controls();

        let quantum_s = self.spec.quantum_ns as f64 * 1e-9;
        let n = self.spec.n_cores;

        // Identical arithmetic to an idle `step`: every core contributes
        // zero utilization; the additions run per core so the sum
        // rounds exactly as the per-core loop does.
        let mut sum_eff = 0.0;
        for st in &mut self.cores {
            st.compute_s = 0.0;
            st.active_s = 0.0;
            st.busy_s = 0.0;
            sum_eff += self.power.core_effective(0.0);
        }
        self.rotate = ((self.rotate as u64 + quanta) % n as u64) as usize;

        let watts = self.power.package_watts(self.cf, self.uf, sum_eff, 0.0);
        let joules = watts * quantum_s;
        // Repeated additions, not one multiply: the RAPL accumulator
        // must take the same rounding path as quantum-by-quantum
        // stepping.
        for _ in 0..quanta {
            self.msr.add_energy(joules);
        }

        // An idle quantum observes zero demand, so the overload factor
        // relaxes to 1 after the first quantum; the stats mirror the
        // last quantum of the stretch.
        let first_overload = self.overload.max(1.0);
        self.last_stats = QuantumStats {
            power_watts: watts,
            achieved_bw: 0.0,
            overload: if quanta == 1 { first_overload } else { 1.0 },
            mean_util: 0.0,
            instructions: 0.0,
        };
        self.overload = 1.0;

        let advanced_ns = self
            .spec
            .quantum_ns
            .checked_mul(quanta)
            .expect("idle advance overflows the virtual clock");
        *self.residency.entry((self.cf.0, self.uf.0)).or_insert(0) += advanced_ns;
        self.time_ns += advanced_ns;
        self.idle_advanced_quanta += quanta;
    }

    /// Fast-forward an idle machine to at least `until_ns`, in whole
    /// quanta (the clock overshoots to the next boundary exactly as a
    /// per-quantum stepping loop would). No-op when `until_ns` is in
    /// the past.
    pub fn advance_idle(&mut self, until_ns: u64) {
        let gap = until_ns.saturating_sub(self.time_ns);
        self.advance_idle_quanta(gap.div_ceil(self.spec.quantum_ns));
    }

    /// Fast-forward up to `quanta` *busy* quanta analytically,
    /// returning how many were absorbed.
    ///
    /// Equivalent — bit for bit, including floating-point accumulation
    /// order — to calling [`step`](Self::step) the same number of
    /// times with no controller action in between: the per-quantum
    /// execution body is literally shared (`execute_quantum`), so the
    /// chunk slicing, the [`Workload::next_chunk`] call order, the MSR
    /// accumulator additions, the repeated per-quantum RAPL energy
    /// additions, and the overload fixed-point updates are identical.
    /// What the stretch hoists out of the per-quantum path is only
    /// state no controller-free stretch can change: the pending
    /// frequency-control application (applied once up front; repeated
    /// application is idempotent), the uncore-derived miss-latency and
    /// bandwidth-cap terms, and the residency bookkeeping (exact
    /// integer additions, accumulated in closed form at the end).
    ///
    /// Chunk completions, workload phase changes, and mid-stretch
    /// parking are *absorbed* soundly rather than forbidden — the
    /// replay simply reproduces them. The stretch ends early
    /// (returning the executed count) as soon as every core parks,
    /// because the idle fast-forward handles what follows far more
    /// cheaply; it returns 0 immediately when the machine is already
    /// parked.
    ///
    /// What this method deliberately does **not** replay is the
    /// frequency controller. Callers must only request a stretch
    /// across which the controller's per-quantum action is provably a
    /// no-op — see the busy-capacity contract on
    /// `cuttlefish::controller::FrequencyController`. The telemetry of
    /// every absorbed quantum is recorded in
    /// [`busy_advance_stats`](Self::busy_advance_stats) so controllers
    /// can replay EWMA-style internal state afterwards.
    pub fn advance_busy_quanta(&mut self, wl: &mut dyn Workload, quanta: u64) -> u64 {
        self.advance_stats.clear();
        if quanta == 0 || self.cores_parked() {
            return 0;
        }
        self.apply_frequency_controls();

        // Loop invariants: no frequency write can land mid-stretch, so
        // the uncore-derived latency and bandwidth terms are constant.
        let cap = self.perf.bandwidth_cap(self.uf);
        let t_miss_local = self.perf.t_miss_local(self.uf);
        let t_miss_remote = self.perf.t_miss_remote(self.uf);

        let mut executed = 0u64;
        while executed < quanta {
            if self.cores_parked() {
                break;
            }
            self.execute_quantum(wl, cap, t_miss_local, t_miss_remote);
            self.advance_stats.push(self.last_stats);
            executed += 1;
        }

        let advanced_ns = self
            .spec
            .quantum_ns
            .checked_mul(executed)
            .expect("busy advance overflows the virtual clock");
        *self.residency.entry((self.cf.0, self.uf.0)).or_insert(0) += advanced_ns;
        self.busy_advanced_quanta += executed;
        executed
    }

    /// Fast-forward a busy machine to at least `until_ns`, in whole
    /// quanta (the clock overshoots to the next boundary exactly as a
    /// per-quantum stepping loop would), stopping early if every core
    /// parks. Returns the quanta absorbed; no-op when `until_ns` is in
    /// the past.
    pub fn advance_busy(&mut self, wl: &mut dyn Workload, until_ns: u64) -> u64 {
        let gap = until_ns.saturating_sub(self.time_ns);
        self.advance_busy_quanta(wl, gap.div_ceil(self.spec.quantum_ns))
    }

    /// The earliest future virtual instant at which an *event* — a
    /// workload interaction or a state change a controller could react
    /// to differently — may occur:
    ///
    /// * every core busy: the start of the quantum in which the
    ///   earliest chunk completion can fall (computable from the
    ///   current rate; see [`busy_runway_quanta`](Self::busy_runway_quanta)) —
    ///   all quanta strictly before it are provably free of
    ///   [`Workload::next_chunk`] calls;
    /// * some cores busy, some parked: the next quantum boundary (a
    ///   parked core may be handed work at any quantum);
    /// * all cores parked: the workload's announced wake rounded up to
    ///   the quantum grid, or `None` when the workload will never
    ///   produce work again (pure idling — only an external deadline
    ///   such as a cluster barrier bounds the advance).
    ///
    /// This query is what puts a node on the cluster's global event
    /// heap: `cluster::sched` treats each node as an `EventSource`
    /// whose next timestamp is exactly this answer (clamped to at
    /// least one quantum of progress), so the returned instants must
    /// be sound — never *later* than the first real interaction.
    pub fn next_event_ns(&self, wl: &dyn Workload) -> Option<u64> {
        let boundary = self.time_ns + self.spec.quantum_ns;
        if !self.cores_parked() {
            if self.cores.iter().any(|c| c.current.is_none()) {
                return Some(boundary);
            }
            return Some(
                self.time_ns.saturating_add(
                    self.busy_runway_quanta()
                        .saturating_mul(self.spec.quantum_ns),
                ),
            );
        }
        match wl.next_wake_ns(self.time_ns) {
            Some(t) if t <= self.time_ns => Some(boundary),
            Some(t) => {
                let quanta = (t - self.time_ns).div_ceil(self.spec.quantum_ns);
                Some(self.time_ns + quanta * self.spec.quantum_ns)
            }
            None => None,
        }
    }

    /// A conservative number of quanta until the earliest possible
    /// chunk completion while **every** core is busy (always ≥ 1):
    /// quanta strictly before the returned count are provably free of
    /// [`Workload::next_chunk`] calls. The bound is sound because the
    /// bandwidth overload factor only inflates stall time (it is
    /// clamped ≥ 1) and no frequency or duty-cycle write can land
    /// mid-stretch, so each core's remaining time evaluated at
    /// overload 1 under the currently-applied frequencies lower-bounds
    /// its true completion; taking `floor` (rather than `ceil`) of the
    /// quantum count then absorbs the sub-quantum floating-point drift
    /// the per-quantum slicing accumulates.
    pub fn busy_runway_quanta(&self) -> u64 {
        let mut earliest = f64::INFINITY;
        for (core, st) in self.cores.iter().enumerate() {
            let Some(rc) = st.current.as_ref() else {
                return 1; // a parked core can be handed work any quantum
            };
            let duty = self.msr.duty_fraction(core);
            let cf_eff_hz = self.cf.hz() * duty;
            let compute = rc.remaining_instr * rc.profile.cpi / cf_eff_hz;
            let stall = (rc.remaining_ml * self.perf.t_miss_local(self.uf)
                + rc.remaining_mr * self.perf.t_miss_remote(self.uf))
                / rc.profile.mlp;
            earliest = earliest.min(compute + stall);
        }
        let quantum_s = self.spec.quantum_ns as f64 * 1e-9;
        (earliest / quantum_s).floor().clamp(1.0, 1e18) as u64
    }

    /// Run `wl` to completion with an optional per-quantum controller
    /// callback (governor, Cuttlefish driver, tracer). Returns the
    /// virtual seconds elapsed.
    pub fn run<F>(&mut self, wl: &mut dyn Workload, mut on_quantum: F) -> f64
    where
        F: FnMut(&mut SimProcessor),
    {
        let start = self.time_ns;
        while !self.workload_drained(wl) {
            self.step(wl);
            on_quantum(self);
        }
        (self.time_ns - start) as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::{HASWELL_2650V3, HYPOTHETICAL7};

    /// Hands every core `per_core` copies of one chunk.
    pub(crate) struct Uniform {
        chunk: Chunk,
        left: Vec<usize>,
    }

    impl Uniform {
        pub(crate) fn new(n_cores: usize, per_core: usize, chunk: Chunk) -> Self {
            Uniform {
                chunk,
                left: vec![per_core; n_cores],
            }
        }
    }

    impl Workload for Uniform {
        fn next_chunk(&mut self, core: usize, _now: u64) -> Option<Chunk> {
            if self.left[core] == 0 {
                None
            } else {
                self.left[core] -= 1;
                Some(self.chunk.clone())
            }
        }
        fn is_done(&self) -> bool {
            self.left.iter().all(|&l| l == 0)
        }
    }

    fn compute_chunk() -> Chunk {
        Chunk::new(1_000_000, 0, 0).with_profile(CostProfile::new(1.0, 6.0))
    }

    fn memory_chunk() -> Chunk {
        // TIPI = 0.064, streaming profile.
        Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0))
    }

    #[test]
    fn compute_workload_time_scales_with_cf() {
        let mut t = Vec::new();
        for cf in [Freq(12), Freq(23)] {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            p.set_core_freq(cf);
            p.set_uncore_freq(Freq(30));
            let mut wl = Uniform::new(p.n_cores(), 40, compute_chunk());
            let secs = p.run(&mut wl, |_| {});
            t.push(secs);
        }
        let ratio = t[0] / t[1];
        // Quantum granularity adds slack; allow 5%.
        assert!(
            (ratio - 23.0 / 12.0).abs() < 0.1,
            "expected ~1.92x, got {ratio}"
        );
    }

    #[test]
    fn memory_workload_time_flat_across_cf_at_high_uf() {
        let mut t = Vec::new();
        for cf in [Freq(12), Freq(23)] {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            p.set_core_freq(cf);
            p.set_uncore_freq(Freq(22));
            let mut wl = Uniform::new(p.n_cores(), 40, memory_chunk());
            t.push(p.run(&mut wl, |_| {}));
        }
        let ratio = t[0] / t[1];
        assert!(
            ratio < 1.12,
            "bandwidth-bound workload should be nearly CF-insensitive, got {ratio}"
        );
    }

    #[test]
    fn memory_workload_slow_below_bandwidth_knee() {
        let mut t = Vec::new();
        for uf in [Freq(12), Freq(22)] {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            p.set_uncore_freq(uf);
            let mut wl = Uniform::new(p.n_cores(), 40, memory_chunk());
            t.push(p.run(&mut wl, |_| {}));
        }
        assert!(
            t[0] / t[1] > 1.3,
            "UF=1.2 must hurt bandwidth-bound code badly, got {}",
            t[0] / t[1]
        );
    }

    #[test]
    fn memory_workload_flat_above_knee() {
        let mut t = Vec::new();
        for uf in [Freq(22), Freq(30)] {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            p.set_uncore_freq(uf);
            let mut wl = Uniform::new(p.n_cores(), 40, memory_chunk());
            t.push(p.run(&mut wl, |_| {}));
        }
        assert!(
            t[0] / t[1] < 1.07,
            "above the knee UF barely matters, got {}",
            t[0] / t[1]
        );
    }

    #[test]
    fn rapl_counter_tracks_ground_truth() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = Uniform::new(p.n_cores(), 10, compute_chunk());
        let before = p.msr_read(crate::msr::MSR_PKG_ENERGY_STATUS).unwrap();
        p.run(&mut wl, |_| {});
        let after = p.msr_read(crate::msr::MSR_PKG_ENERGY_STATUS).unwrap();
        let via_msr =
            (after.wrapping_sub(before) & 0xffff_ffff) as f64 * crate::msr::JOULES_PER_COUNT;
        let exact = p.total_energy_joules();
        assert!(
            (via_msr - exact).abs() / exact < 1e-3,
            "RAPL {via_msr} vs exact {exact}"
        );
    }

    #[test]
    fn instruction_counters_match_workload() {
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let per_core = 7;
        let mut wl = Uniform::new(p.n_cores(), per_core, compute_chunk());
        p.run(&mut wl, |_| {});
        let expect = (p.n_cores() * per_core) as f64 * 1_000_000.0;
        assert!((p.total_instructions() - expect).abs() < 1.0);
    }

    #[test]
    fn frequency_writes_take_effect_next_quantum() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        assert_eq!(p.core_freq(), Freq(23));
        p.set_core_freq(Freq(15));
        p.set_uncore_freq(Freq(18));
        let mut wl = Uniform::new(p.n_cores(), 1, compute_chunk());
        p.step(&mut wl);
        assert_eq!(p.core_freq(), Freq(15));
        assert_eq!(p.uncore_freq(), Freq(18));
        // PERF_STATUS mirrors the applied ratio.
        let st = p.msr_read(crate::msr::IA32_PERF_STATUS).unwrap();
        assert_eq!((st >> 8) & 0xff, 15);
    }

    #[test]
    fn out_of_range_frequency_clamped() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        p.set_core_freq(Freq(99));
        p.set_uncore_freq(Freq(1));
        let mut wl = Uniform::new(p.n_cores(), 1, compute_chunk());
        p.step(&mut wl);
        assert_eq!(p.core_freq(), Freq(23));
        assert_eq!(p.uncore_freq(), Freq(12));
    }

    #[test]
    fn idle_cores_burn_floor_power() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        struct Nothing;
        impl Workload for Nothing {
            fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
                None
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        p.step(&mut Nothing);
        let w = p.last_quantum().power_watts;
        assert!(w > 10.0, "idle power should be a real floor, got {w}");
        assert!(
            w < 70.0,
            "idle power should be well under load power, got {w}"
        );
    }

    #[test]
    fn aperf_mperf_verify_dvfs_took_effect() {
        // The effective frequency measured via ΔAPERF/ΔMPERF must match
        // the programmed ratio — the standard hardware cross-check.
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        p.set_core_freq(Freq(16));
        let mut wl = Uniform::new(p.n_cores(), 50, compute_chunk());
        p.run(&mut wl, |_| {});
        let a = p.msr_read_core(0, crate::msr::IA32_APERF).unwrap() as f64;
        let m = p.msr_read_core(0, crate::msr::IA32_MPERF).unwrap() as f64;
        let eff = a / m * crate::msr::TSC_HZ / 1e8; // in 100 MHz ratios
        assert!((eff - 16.0).abs() < 0.2, "effective ratio {eff}");
    }

    #[test]
    fn ddcm_stretches_compute_proportionally() {
        // Duty 8/16 halves the effective clock for compute-bound work.
        let run_with_duty = |duty: u32| {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            p.set_duty_all(duty);
            let mut wl = Uniform::new(p.n_cores(), 40, compute_chunk());
            p.run(&mut wl, |_| {})
        };
        let full = run_with_duty(0);
        let half = run_with_duty(8);
        let ratio = half / full;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "duty 8/16 should double time, got {ratio}"
        );
    }

    #[test]
    fn dvfs_beats_ddcm_at_equal_slowdown() {
        // The classic result the related work measures: for the same
        // performance loss, lowering voltage+frequency (DVFS) saves
        // more energy than clock gating at full voltage (DDCM).
        // CF 1.2/2.3 ≈ duty 8.35/16: compare DVFS at 1.2 GHz against
        // DDCM at ~the same effective clock.
        let energy_dvfs = {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            p.set_core_freq(Freq(12));
            let mut wl = Uniform::new(p.n_cores(), 40, compute_chunk());
            p.run(&mut wl, |_| {});
            (p.total_energy_joules(), p.now_ns())
        };
        let energy_ddcm = {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            p.set_duty_all(8); // 2.3 GHz × 8/16 = 1.15 GHz effective
            let mut wl = Uniform::new(p.n_cores(), 40, compute_chunk());
            p.run(&mut wl, |_| {});
            (p.total_energy_joules(), p.now_ns())
        };
        // Similar runtimes (within 10%)...
        let t_ratio = energy_ddcm.1 as f64 / energy_dvfs.1 as f64;
        assert!((0.9..1.15).contains(&t_ratio), "time ratio {t_ratio}");
        // ...but DVFS uses clearly less energy (voltage scaling).
        assert!(
            energy_dvfs.0 < energy_ddcm.0 * 0.92,
            "DVFS {} J should beat DDCM {} J by >8%",
            energy_dvfs.0,
            energy_ddcm.0
        );
    }

    #[test]
    fn duty_modulation_is_per_core() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        p.msr_write_core(
            3,
            crate::msr::IA32_CLOCK_MODULATION,
            MsrFile::encode_clock_modulation(4),
        )
        .unwrap();
        assert_eq!(p.msr_file().duty_fraction(3), 0.25);
        assert_eq!(p.msr_file().duty_fraction(0), 1.0);
        // Modulated core retires instructions 4x slower: give every
        // core one identical chunk and check core 3 finishes last.
        let mut wl = Uniform::new(p.n_cores(), 1, compute_chunk());
        p.step(&mut wl);
        let fast = p.msr_read_core(0, crate::msr::IA32_FIXED_CTR0).unwrap();
        let slow = p.msr_read_core(3, crate::msr::IA32_FIXED_CTR0).unwrap();
        assert!(
            slow < fast,
            "modulated core must retire fewer instructions per quantum: {slow} vs {fast}"
        );
    }

    #[test]
    fn energy_monotonically_increases() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = Uniform::new(p.n_cores(), 3, memory_chunk());
        let mut prev = 0.0;
        while !p.workload_drained(&wl) {
            p.step(&mut wl);
            let e = p.total_energy_joules();
            assert!(e > prev);
            prev = e;
        }
    }

    /// Nothing to run, ever — the cluster barrier shape.
    struct Never;
    impl Workload for Never {
        fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
        fn next_wake_ns(&self, _now: u64) -> Option<u64> {
            None
        }
    }

    #[test]
    fn advance_idle_is_bit_identical_to_idle_stepping() {
        // Drive both processors into a non-trivial state first (bandwidth
        // overload, rotation offset, residency history), then idle one
        // by stepping and the other by a single analytic advance.
        let prime = |p: &mut SimProcessor| {
            p.set_uncore_freq(Freq(12)); // deep overload regime
            let mut wl = Uniform::new(p.n_cores(), 7, memory_chunk());
            while !p.workload_drained(&wl) {
                p.step(&mut wl);
            }
        };
        for quanta in [1u64, 2, 3, 17, 500] {
            let mut stepped = SimProcessor::new(HASWELL_2650V3.clone());
            prime(&mut stepped);
            let mut jumped = stepped.clone();
            for _ in 0..quanta {
                stepped.step(&mut Never);
            }
            jumped.advance_idle_quanta(quanta);
            assert_eq!(
                stepped.total_energy_joules().to_bits(),
                jumped.total_energy_joules().to_bits(),
                "energy must round identically over {quanta} idle quanta"
            );
            assert_eq!(stepped.now_ns(), jumped.now_ns());
            assert_eq!(stepped.frequency_residency(), jumped.frequency_residency());
            assert_eq!(
                stepped.msr_read(crate::msr::MSR_PKG_ENERGY_STATUS).unwrap(),
                jumped.msr_read(crate::msr::MSR_PKG_ENERGY_STATUS).unwrap(),
                "RAPL projection identical"
            );
            let s = stepped.last_quantum();
            let j = jumped.last_quantum();
            assert_eq!(s.power_watts.to_bits(), j.power_watts.to_bits());
            assert_eq!(s.overload.to_bits(), j.overload.to_bits());
            // The next busy quantum must behave identically too (rotation
            // cursor, overload relaxation, pending-control application).
            let mut wa = Uniform::new(stepped.n_cores(), 1, memory_chunk());
            let mut wb = Uniform::new(jumped.n_cores(), 1, memory_chunk());
            stepped.step(&mut wa);
            jumped.step(&mut wb);
            assert_eq!(
                stepped.total_energy_joules().to_bits(),
                jumped.total_energy_joules().to_bits(),
                "post-idle busy quantum identical after {quanta} idle quanta"
            );
            assert_eq!(
                stepped.total_instructions().to_bits(),
                jumped.total_instructions().to_bits()
            );
        }
    }

    #[test]
    fn advance_idle_applies_pending_frequency_writes() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        p.set_core_freq(Freq(15));
        p.set_uncore_freq(Freq(18));
        p.advance_idle_quanta(10);
        assert_eq!(p.core_freq(), Freq(15));
        assert_eq!(p.uncore_freq(), Freq(18));
        assert_eq!(p.frequency_residency().get(&(15, 18)), Some(&10_000_000));
    }

    #[test]
    #[should_panic(expected = "every core to be parked")]
    fn advance_idle_rejects_in_flight_work() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        // A chunk far too large to finish in one quantum stays in flight.
        let mut wl = Uniform::new(p.n_cores(), 1, Chunk::new(1_000_000_000, 0, 0));
        p.step(&mut wl);
        p.advance_idle_quanta(1);
    }

    #[test]
    fn next_event_semantics() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let q = p.spec().quantum_ns;
        // Parked machine, workload that never wakes: no event.
        assert_eq!(p.next_event_ns(&Never), None);
        // Default wake (may produce work at any time): next boundary.
        let idle_now = Uniform::new(p.n_cores(), 0, compute_chunk());
        assert_eq!(p.next_event_ns(&idle_now), Some(q));
        // Every core mid-chunk: the event is the conservative earliest
        // chunk completion, at least one quantum out.
        let mut big = Uniform::new(p.n_cores(), 1, Chunk::new(1_000_000_000, 0, 0));
        p.step(&mut big);
        let event = p.next_event_ns(&Never).unwrap();
        assert_eq!(event, p.now_ns() + p.busy_runway_quanta() * q);
        assert!(event > p.now_ns() + q, "a giant chunk runs many quanta");
        // Mixed busy/parked cores: the next boundary (a parked core
        // may be handed work at any quantum).
        struct OnlyCoreZero(bool);
        impl Workload for OnlyCoreZero {
            fn next_chunk(&mut self, core: usize, _: u64) -> Option<Chunk> {
                (core == 0 && std::mem::take(&mut self.0)).then(|| Chunk::new(1_000_000_000, 0, 0))
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut mixed = SimProcessor::new(HASWELL_2650V3.clone());
        mixed.step(&mut OnlyCoreZero(true));
        assert!(!mixed.cores_parked());
        assert_eq!(mixed.next_event_ns(&Never), Some(mixed.now_ns() + q));
        // A future wake rounds up to the quantum grid.
        struct WakeAt(u64);
        impl Workload for WakeAt {
            fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
                None
            }
            fn is_done(&self) -> bool {
                false
            }
            fn next_wake_ns(&self, _now: u64) -> Option<u64> {
                Some(self.0)
            }
        }
        let p2 = SimProcessor::new(HASWELL_2650V3.clone());
        assert_eq!(p2.next_event_ns(&WakeAt(q * 3 + 1)), Some(q * 4));
        assert_eq!(p2.next_event_ns(&WakeAt(q * 3)), Some(q * 3));
    }

    #[test]
    fn stepping_counters_track_all_three_paths() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = Uniform::new(p.n_cores(), 30, compute_chunk());
        p.step(&mut wl);
        let stepped = p.stepped_quanta();
        assert_eq!(p.total_quanta(), stepped);
        let busy = p.advance_busy_quanta(&mut wl, 3);
        assert_eq!(busy, 3);
        assert_eq!(p.stepped_quanta(), stepped);
        assert_eq!(p.busy_advanced_quanta(), 3);
        assert_eq!(p.idle_advanced_quanta(), 0);
        assert_eq!(p.total_quanta(), stepped + 3);
        // Drain, then idle-advance.
        while !p.workload_drained(&wl) {
            p.step(&mut wl);
        }
        let stepped = p.stepped_quanta();
        let total = p.total_quanta();
        p.advance_idle_quanta(40);
        assert_eq!(p.stepped_quanta(), stepped);
        assert_eq!(p.idle_advanced_quanta(), 40);
        assert_eq!(p.busy_advanced_quanta(), 3);
        assert_eq!(p.total_quanta(), total + 40);
        assert_eq!(
            p.total_quanta(),
            p.stepped_quanta() + p.idle_advanced_quanta() + p.busy_advanced_quanta()
        );
    }

    #[test]
    fn advance_busy_is_bit_identical_to_busy_stepping() {
        // Prime a non-trivial machine state (deep bandwidth overload,
        // rotation offset, counter history), then run one copy by
        // stepping and the other by a single analytic busy advance,
        // against identically-seeded workloads.
        for quanta in [1u64, 2, 3, 17, 400] {
            // Two identical (processor, workload) pairs, primed
            // identically so the chunk streams sit at the same point.
            let prime = |p: &mut SimProcessor, wl: &mut Uniform| {
                p.set_uncore_freq(Freq(12)); // deep overload regime
                for _ in 0..5 {
                    p.step(wl);
                }
            };
            let mut stepped = SimProcessor::new(HASWELL_2650V3.clone());
            let mut wl_s = Uniform::new(stepped.n_cores(), 10_000, memory_chunk());
            prime(&mut stepped, &mut wl_s);
            let mut jumped = SimProcessor::new(HASWELL_2650V3.clone());
            let mut wl_j = Uniform::new(jumped.n_cores(), 10_000, memory_chunk());
            prime(&mut jumped, &mut wl_j);

            for _ in 0..quanta {
                stepped.step(&mut wl_s);
            }
            let done = jumped.advance_busy_quanta(&mut wl_j, quanta);
            assert_eq!(done, quanta, "saturated stream must absorb fully");
            assert_eq!(jumped.busy_advance_stats().len(), quanta as usize);

            assert_eq!(
                stepped.total_energy_joules().to_bits(),
                jumped.total_energy_joules().to_bits(),
                "energy must round identically over {quanta} busy quanta"
            );
            assert_eq!(
                stepped.total_instructions().to_bits(),
                jumped.total_instructions().to_bits()
            );
            assert_eq!(stepped.now_ns(), jumped.now_ns());
            assert_eq!(stepped.frequency_residency(), jumped.frequency_residency());
            assert_eq!(
                stepped.msr_read(crate::msr::MSR_PKG_ENERGY_STATUS).unwrap(),
                jumped.msr_read(crate::msr::MSR_PKG_ENERGY_STATUS).unwrap()
            );
            for c in 0..stepped.n_cores() {
                for addr in [
                    crate::msr::IA32_FIXED_CTR0,
                    crate::msr::IA32_APERF,
                    crate::msr::IA32_MPERF,
                ] {
                    assert_eq!(
                        stepped.msr_read_core(c, addr).unwrap(),
                        jumped.msr_read_core(c, addr).unwrap(),
                        "core {c} counter {addr:#x} after {quanta} quanta"
                    );
                }
            }
            let s = stepped.last_quantum();
            let j = jumped.last_quantum();
            assert_eq!(s.power_watts.to_bits(), j.power_watts.to_bits());
            assert_eq!(s.overload.to_bits(), j.overload.to_bits());
            assert_eq!(s.achieved_bw.to_bits(), j.achieved_bw.to_bits());
            assert_eq!(s.instructions.to_bits(), j.instructions.to_bits());
            // The recorded telemetry matches what stepping observed
            // last, and continuing by stepping stays in lockstep.
            let tail = *jumped.busy_advance_stats().last().unwrap();
            assert_eq!(tail.power_watts.to_bits(), s.power_watts.to_bits());
            stepped.step(&mut wl_s);
            jumped.step(&mut wl_j);
            assert_eq!(
                stepped.total_energy_joules().to_bits(),
                jumped.total_energy_joules().to_bits(),
                "post-stretch busy quantum identical after {quanta} quanta"
            );
        }
    }

    #[test]
    fn advance_busy_absorbs_boundaries_and_parks_early() {
        // A finite workload: the advance must absorb the chunk
        // completions (identical next_chunk order) and stop once every
        // core parks, reporting fewer quanta than requested.
        let mut stepped = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl_s = Uniform::new(stepped.n_cores(), 6, memory_chunk());
        let mut jumped = stepped.clone();
        let mut wl_j = Uniform::new(jumped.n_cores(), 6, memory_chunk());

        stepped.step(&mut wl_s);
        jumped.step(&mut wl_j);
        while !stepped.cores_parked() {
            stepped.step(&mut wl_s);
        }
        let done = jumped.advance_busy_quanta(&mut wl_j, 100_000);
        assert!(done < 100_000, "drained workload must end the stretch");
        assert_eq!(jumped.now_ns(), stepped.now_ns());
        assert_eq!(
            stepped.total_energy_joules().to_bits(),
            jumped.total_energy_joules().to_bits()
        );
        assert_eq!(
            stepped.total_instructions().to_bits(),
            jumped.total_instructions().to_bits()
        );
        // Parked machine: busy advance is a no-op returning 0.
        assert_eq!(jumped.advance_busy_quanta(&mut wl_j, 10), 0);
    }

    #[test]
    fn busy_runway_bounds_the_first_workload_call() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        // One huge compute chunk per core: completion is far away.
        let mut wl = Uniform::new(p.n_cores(), 1, Chunk::new(500_000_000, 0, 0));
        p.step(&mut wl);
        let runway = p.busy_runway_quanta();
        assert!(
            runway > 10,
            "long chunk should yield a long runway, got {runway}"
        );
        let event = p.next_event_ns(&wl).unwrap();
        assert_eq!(event, p.now_ns() + runway * p.spec().quantum_ns);
        // Stepping strictly fewer quanta than the runway must make no
        // workload calls (all cores stay mid-chunk).
        struct Panicking;
        impl Workload for Panicking {
            fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
                panic!("no workload call may occur inside the runway");
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        for _ in 0..runway - 1 {
            p.step(&mut Panicking);
        }
    }

    #[test]
    fn overload_converges_for_steady_phase() {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        p.set_uncore_freq(Freq(12)); // far below knee
        let mut wl = Uniform::new(p.n_cores(), 200, memory_chunk());
        let mut overloads = Vec::new();
        for _ in 0..50 {
            p.step(&mut wl);
            overloads.push(p.last_quantum().overload);
        }
        // After convergence the overload is stable and > 1.
        let tail: Vec<f64> = overloads[40..].to_vec();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean > 1.2, "deep overload expected, got {mean}");
        for v in &tail {
            assert!((v - mean).abs() / mean < 0.05, "overload should settle");
        }
        // And achieved bandwidth must not exceed the cap materially.
        let cap = p.perf_model().bandwidth_cap(Freq(12));
        assert!(p.last_quantum().achieved_bw <= cap * 1.10);
    }
}
