//! Package power model.
//!
//! Package power is the sum of four components:
//!
//! ```text
//! P_pkg = P_base                                  (package static)
//!       + Σ_cores k_c · V_c(f_c)² · f_c · eff_i   (core dynamic)
//!       + s_u · V_u(f_u)²                          (uncore static/leakage)
//!       + k_u · V_u(f_u)² · f_u · act              (uncore dynamic)
//! ```
//!
//! * `V(f)` is linear in `f` for each domain (the voltage/frequency
//!   operating curve).
//! * `eff_i` is the effective activity of core *i*: `util + halt·(1-util)`
//!   — a core stalled on memory clock-gates most of its pipeline but
//!   still burns a `halt` fraction.
//! * `act` is the uncore activity factor, `a0 + a1 · traffic`, where
//!   `traffic` is achieved memory bandwidth normalized to the DRAM peak.
//!   Even an idle uncore clocks its ring and LLC arrays (`a0`), which is
//!   why running the uncore at 3.0 GHz for a compute-bound program wastes
//!   real energy — the effect Cuttlefish-Uncore exploits on UTS/SOR.
//!
//! The defaults land package power between ~45 W (min frequencies,
//! idle-ish) and ~105 W (all knobs at max, full load), matching the
//! 105 W TDP class of the paper's Xeon E5-2650 v3.

use crate::freq::{Freq, FreqDomain};
use serde::{Deserialize, Serialize};

/// Linear voltage/frequency operating curve for one domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VoltCurve {
    /// Voltage at the domain's minimum frequency.
    pub v_min: f64,
    /// Voltage at the domain's maximum frequency.
    pub v_max: f64,
    /// Frequency range the curve spans.
    pub f_min_ghz: f64,
    pub f_max_ghz: f64,
}

impl VoltCurve {
    pub fn new(domain: &FreqDomain, v_min: f64, v_max: f64) -> Self {
        VoltCurve {
            v_min,
            v_max,
            f_min_ghz: domain.min().ghz(),
            f_max_ghz: domain.max().ghz(),
        }
    }

    /// Operating voltage at frequency `f` (clamped to the curve ends).
    pub fn volts(&self, f: Freq) -> f64 {
        let span = self.f_max_ghz - self.f_min_ghz;
        if span <= 0.0 {
            return self.v_max;
        }
        let t = ((f.ghz() - self.f_min_ghz) / span).clamp(0.0, 1.0);
        self.v_min + t * (self.v_max - self.v_min)
    }
}

/// Parameters of the package power model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerModel {
    /// Package static power independent of both domains, watts.
    pub p_base: f64,
    /// Core dynamic coefficient, watts per (volt² · Hz), per core.
    pub k_core: f64,
    /// Fraction of core dynamic power still burned while stalled
    /// (clock-gating is imperfect).
    pub halt_fraction: f64,
    /// Core voltage curve.
    pub v_core: VoltCurve,
    /// Uncore dynamic coefficient, watts per (volt² · Hz).
    pub k_uncore: f64,
    /// Uncore leakage coefficient, watts per volt².
    pub s_uncore: f64,
    /// Uncore activity floor (ring/LLC clocking with no traffic).
    pub act_floor: f64,
    /// Uncore activity slope versus normalized traffic.
    pub act_slope: f64,
    /// Uncore voltage curve.
    pub v_uncore: VoltCurve,
}

impl PowerModel {
    /// Defaults calibrated for the simulated E5-2650 v3 (see module doc).
    pub fn haswell(core: &FreqDomain, uncore: &FreqDomain) -> Self {
        PowerModel {
            p_base: 20.0,
            k_core: 0.9e-9,
            halt_fraction: 0.25,
            v_core: VoltCurve::new(core, 0.80, 1.00),
            k_uncore: 6.0e-9,
            s_uncore: 14.0,
            act_floor: 0.58,
            act_slope: 0.42,
            v_uncore: VoltCurve::new(uncore, 0.70, 1.00),
        }
    }

    /// Package power in watts.
    ///
    /// * `core_eff` — per-core effective activity (`util + halt·(1-util)`,
    ///   already folded by the caller via [`PowerModel::core_effective`]),
    ///   summed over cores.
    /// * `traffic` — achieved memory bandwidth normalized to DRAM peak,
    ///   in `\[0, 1\]`.
    pub fn package_watts(&self, cf: Freq, uf: Freq, core_eff_sum: f64, traffic: f64) -> f64 {
        let vc = self.v_core.volts(cf);
        let vu = self.v_uncore.volts(uf);
        let core_dyn = self.k_core * vc * vc * cf.hz() * core_eff_sum;
        let act = self.act_floor + self.act_slope * traffic.clamp(0.0, 1.0);
        let uncore_dyn = self.k_uncore * vu * vu * uf.hz() * act;
        let uncore_static = self.s_uncore * vu * vu;
        self.p_base + core_dyn + uncore_static + uncore_dyn
    }

    /// Effective activity of one core with pipeline utilization `util`
    /// (an idle, parked core has `util = 0` and still burns the halt
    /// fraction — matching a core spinning in the OS idle loop at its
    /// clock-gated floor).
    #[inline]
    pub fn core_effective(&self, util: f64) -> f64 {
        let u = util.clamp(0.0, 1.0);
        u + self.halt_fraction * (1.0 - u)
    }

    /// Uncore voltage curve (public for tests and docs).
    pub fn uncore_volts(&self, uf: Freq) -> f64 {
        self.v_uncore.volts(uf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::HASWELL_2650V3;

    fn pm() -> PowerModel {
        let m = &*HASWELL_2650V3;
        PowerModel::haswell(&m.core, &m.uncore)
    }

    #[test]
    fn volt_curve_endpoints_and_monotonicity() {
        let m = &*HASWELL_2650V3;
        let c = VoltCurve::new(&m.core, 0.8, 1.0);
        assert!((c.volts(Freq(12)) - 0.8).abs() < 1e-12);
        assert!((c.volts(Freq(23)) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for f in m.core.iter() {
            let v = c.volts(f);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn power_increases_with_each_knob() {
        let p = pm();
        let base = p.package_watts(Freq(12), Freq(12), 20.0 * 0.5, 0.5);
        assert!(p.package_watts(Freq(23), Freq(12), 20.0 * 0.5, 0.5) > base);
        assert!(p.package_watts(Freq(12), Freq(30), 20.0 * 0.5, 0.5) > base);
        assert!(p.package_watts(Freq(12), Freq(12), 20.0 * 0.9, 0.5) > base);
        assert!(p.package_watts(Freq(12), Freq(12), 20.0 * 0.5, 1.0) > base);
    }

    #[test]
    fn full_tilt_power_in_tdp_class() {
        let p = pm();
        let w = p.package_watts(Freq(23), Freq(30), 20.0, 1.0);
        assert!(
            (85.0..125.0).contains(&w),
            "max power should be in the 105W TDP class, got {w}"
        );
    }

    #[test]
    fn idle_floor_is_substantial() {
        // Server packages have a large idle floor — the race-to-idle
        // effect for compute-bound code depends on it.
        let p = pm();
        let w = p.package_watts(Freq(12), Freq(12), 20.0 * p.core_effective(0.0), 0.0);
        assert!((25.0..50.0).contains(&w), "idle power {w}");
    }

    #[test]
    fn core_effective_bounds() {
        let p = pm();
        assert!((p.core_effective(1.0) - 1.0).abs() < 1e-12);
        assert!((p.core_effective(0.0) - p.halt_fraction).abs() < 1e-12);
        assert!(p.core_effective(0.5) > p.core_effective(0.1));
    }
}
