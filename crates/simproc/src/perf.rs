//! Per-core analytic timing model.
//!
//! A work chunk carries an instruction count, LLC miss counts, and a cost
//! profile (base CPI and memory-level parallelism). The *latency-bound*
//! time to execute it at core frequency `f_c` and uncore frequency `f_u`
//! follows a two-term model:
//!
//! ```text
//! seconds/instruction = cpi / f_c  +  tipi · t_miss(f_u) / mlp
//! t_miss(f_u)         = uncore_cycles / f_u + t_dram
//! ```
//!
//! * The first term is pipeline time: compute-bound chunks (`tipi → 0`)
//!   scale inversely with core frequency.
//! * The second term is exposed memory stall per instruction. Each LLC
//!   miss pays a latency with an uncore-clocked component (L3 tag, ring,
//!   memory-controller queue) plus a fixed DRAM component; `mlp`
//!   outstanding misses overlap, so only `1/mlp` is exposed.
//!   Prefetch-friendly streaming kernels have high `mlp` (the hardware
//!   prefetcher hides latency); pointer-chasing code has low `mlp`.
//!
//! On top of the per-core latency bound, the engine applies a chip-level
//! **bandwidth roofline** (see [`PerfModel::bandwidth_cap`]): the uncore
//! (ring + memory controllers) sustains a bandwidth proportional to the
//! uncore frequency, capped by the DRAM peak. When aggregate miss traffic
//! demands more, every core's stall term is inflated proportionally.
//! This is what makes memory-bound kernels insensitive to *both*
//! frequency knobs above the knee (the paper's observation that Heat at
//! 1.2 GHz core / 2.2 GHz uncore runs within a few percent of
//! 2.3 GHz / 3.0 GHz) — and is what an interior uncore optimum at
//! ~2.2 GHz falls out of (Table 2).

use crate::freq::Freq;
use serde::{Deserialize, Serialize};

/// Bytes transferred per LLC miss (one cache line).
pub const LINE_BYTES: f64 = 64.0;

/// Per-workload cost profile attached to each chunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Base cycles per instruction with all memory references hitting in
    /// cache. Vectorized streaming kernels sit near 0.5; dependent
    /// scalar chains near 2.
    pub cpi: f64,
    /// Effective memory-level parallelism (overlapped outstanding
    /// misses, including prefetch coverage).
    pub mlp: f64,
}

impl CostProfile {
    pub const fn new(cpi: f64, mlp: f64) -> Self {
        CostProfile { cpi, mlp }
    }
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile { cpi: 1.0, mlp: 6.0 }
    }
}

/// Machine-wide parameters of the timing model. Defaults reproduce the
/// qualitative trends of the paper's Haswell testbed (DESIGN.md §6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfModel {
    /// Uncore-clocked cycles on the LLC miss path.
    pub uncore_miss_cycles: f64,
    /// Fixed DRAM access component of a miss, in seconds.
    pub t_dram_s: f64,
    /// Extra exposed latency per remote-socket miss (QPI hop), seconds.
    pub t_remote_extra_s: f64,
    /// Peak DRAM bandwidth of the socket pair, bytes/second.
    pub dram_peak_bw: f64,
    /// Uncore-sustained bandwidth per GHz of uncore clock, bytes/second
    /// per GHz. `min(dram_peak_bw, bw_per_uncore_ghz · UF)` is the chip
    /// bandwidth cap; with the defaults the knee sits near 2.15 GHz.
    pub bw_per_uncore_ghz: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            uncore_miss_cycles: 110.0,
            t_dram_s: 52.0e-9,
            t_remote_extra_s: 30.0e-9,
            dram_peak_bw: 56.0e9,
            bw_per_uncore_ghz: 26.0e9,
        }
    }
}

impl PerfModel {
    /// Exposed seconds of latency for one local-socket LLC miss.
    #[inline]
    pub fn t_miss_local(&self, uf: Freq) -> f64 {
        self.uncore_miss_cycles / uf.hz() + self.t_dram_s
    }

    /// Exposed seconds of latency for one remote-socket LLC miss.
    #[inline]
    pub fn t_miss_remote(&self, uf: Freq) -> f64 {
        self.t_miss_local(uf) + self.t_remote_extra_s
    }

    /// Chip-level sustainable miss bandwidth at uncore frequency `uf`.
    #[inline]
    pub fn bandwidth_cap(&self, uf: Freq) -> f64 {
        (self.bw_per_uncore_ghz * uf.ghz()).min(self.dram_peak_bw)
    }

    /// Latency-bound seconds to execute `instructions` with the given
    /// miss counts at frequencies (`cf`, `uf`) on one core, ignoring
    /// bandwidth contention.
    pub fn latency_seconds(
        &self,
        instructions: u64,
        misses_local: u64,
        misses_remote: u64,
        profile: CostProfile,
        cf: Freq,
        uf: Freq,
    ) -> f64 {
        let compute = self.compute_seconds(instructions, profile, cf);
        compute + self.stall_seconds(misses_local, misses_remote, profile, uf)
    }

    /// Pipeline-only component of the chunk time.
    #[inline]
    pub fn compute_seconds(&self, instructions: u64, profile: CostProfile, cf: Freq) -> f64 {
        instructions as f64 * profile.cpi / cf.hz()
    }

    /// Exposed memory-stall component of the chunk time (latency bound,
    /// before bandwidth inflation).
    #[inline]
    pub fn stall_seconds(
        &self,
        misses_local: u64,
        misses_remote: u64,
        profile: CostProfile,
        uf: Freq,
    ) -> f64 {
        (misses_local as f64 * self.t_miss_local(uf)
            + misses_remote as f64 * self.t_miss_remote(uf))
            / profile.mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> PerfModel {
        PerfModel::default()
    }

    const STREAM: CostProfile = CostProfile::new(0.55, 12.0);

    #[test]
    fn compute_bound_scales_with_core_frequency() {
        let m = m();
        let slow = m.latency_seconds(1_000_000, 0, 0, STREAM, Freq(12), Freq(30));
        let fast = m.latency_seconds(1_000_000, 0, 0, STREAM, Freq(23), Freq(30));
        let ratio = slow / fast;
        assert!(
            (ratio - 23.0 / 12.0).abs() < 1e-9,
            "pure compute time must scale exactly with CF, got ratio {ratio}"
        );
    }

    #[test]
    fn memory_bound_latency_insensitive_to_core_frequency() {
        let m = m();
        // TIPI = 0.064 (paper's Heat range).
        let n = 1_000_000u64;
        let misses = (n as f64 * 0.064) as u64;
        let slow = m.latency_seconds(n, misses, 0, STREAM, Freq(12), Freq(22));
        let fast = m.latency_seconds(n, misses, 0, STREAM, Freq(23), Freq(22));
        assert!(
            slow / fast < 1.5,
            "memory-bound time must be far from CF-proportional, got {}",
            slow / fast
        );
    }

    #[test]
    fn miss_latency_saturates_with_uncore_frequency() {
        let m = m();
        let at_min = m.t_miss_local(Freq(12));
        let at_22 = m.t_miss_local(Freq(22));
        let at_max = m.t_miss_local(Freq(30));
        assert!(at_min > at_22 && at_22 > at_max);
        assert!(
            (at_min - at_22) > 2.0 * (at_22 - at_max),
            "diminishing returns above 2.2 GHz"
        );
    }

    #[test]
    fn bandwidth_cap_has_knee_below_max_uncore() {
        let m = m();
        // Below the knee the cap scales with UF...
        assert!(m.bandwidth_cap(Freq(12)) < m.bandwidth_cap(Freq(20)));
        // ...and above it the DRAM peak pins it flat.
        assert_eq!(m.bandwidth_cap(Freq(23)), m.dram_peak_bw);
        assert_eq!(m.bandwidth_cap(Freq(30)), m.dram_peak_bw);
    }

    #[test]
    fn remote_misses_cost_more() {
        let m = m();
        assert!(m.t_miss_remote(Freq(22)) > m.t_miss_local(Freq(22)));
    }

    #[test]
    fn low_mlp_exposes_more_stall() {
        let m = m();
        let chase = CostProfile::new(1.0, 2.0);
        let stream = CostProfile::new(1.0, 16.0);
        assert!(
            m.stall_seconds(1000, 0, chase, Freq(22)) > m.stall_seconds(1000, 0, stream, Freq(22))
        );
    }
}
