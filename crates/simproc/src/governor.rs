//! The `Default` baseline: Linux `performance` governor plus the BIOS
//! "Auto" uncore-frequency controller.
//!
//! The paper's baseline fixes every core at the maximum frequency
//! (`performance` policy, as production supercomputers do) and leaves
//! the uncore to the Intel firmware, whose algorithm is "highly
//! sensitive to memory requests": Table 2 reports that it settles at
//! 2.2 GHz for compute-bound benchmarks and 3.0 GHz for memory-bound
//! ones. [`DefaultGovernor`] reproduces that observable behaviour with
//! a traffic-tracking controller: it smooths the achieved memory
//! bandwidth and ramps the uncore between a 2.2 GHz floor and the
//! 3.0 GHz ceiling as traffic crosses a saturation band.

use crate::engine::SimProcessor;
use crate::freq::Freq;

/// Traffic-tracking uncore controller + pinned-max core governor.
#[derive(Debug, Clone)]
pub struct DefaultGovernor {
    /// Uncore frequency used when traffic is light (firmware idle point).
    pub uf_floor: Freq,
    /// Traffic fraction (of DRAM peak) where the ramp to max begins.
    pub ramp_start: f64,
    /// Traffic fraction where the uncore reaches max.
    pub ramp_full: f64,
    /// EWMA smoothing factor applied to the traffic signal per quantum.
    pub alpha: f64,
    smoothed: f64,
}

impl Default for DefaultGovernor {
    fn default() -> Self {
        DefaultGovernor {
            uf_floor: Freq(22),
            ramp_start: 0.60,
            ramp_full: 0.80,
            alpha: 0.2,
            smoothed: 0.0,
        }
    }
}

impl DefaultGovernor {
    /// Fresh controller with default firmware-like parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Smoothed traffic estimate (0..1 of DRAM peak).
    pub fn traffic(&self) -> f64 {
        self.smoothed
    }

    /// Uncore target for a given smoothed traffic level.
    pub fn uncore_target(&self, proc: &SimProcessor, traffic: f64) -> Freq {
        let floor = proc.spec().uncore.clamp(self.uf_floor);
        let ceil = proc.spec().uncore.max();
        if traffic <= self.ramp_start {
            return floor;
        }
        if traffic >= self.ramp_full {
            return ceil;
        }
        let t = (traffic - self.ramp_start) / (self.ramp_full - self.ramp_start);
        let steps = (ceil.0 - floor.0) as f64;
        Freq(floor.0 + (t * steps).round() as u32)
    }

    /// Apply the policy for one quantum: cores pinned at max, uncore
    /// tracking traffic. Call after every [`SimProcessor::step`].
    pub fn on_quantum(&mut self, proc: &mut SimProcessor) {
        let traffic = proc.last_quantum().achieved_bw / proc.perf_model().dram_peak_bw;
        self.smoothed = self.alpha * traffic + (1.0 - self.alpha) * self.smoothed;
        let uf = self.uncore_target(proc, self.smoothed);
        proc.set_core_freq(proc.spec().core.max());
        proc.set_uncore_freq(uf);
    }

    /// True when, on a fully-parked machine, this governor's
    /// [`on_quantum`](Self::on_quantum) has reached its idle fixed
    /// point: zero observed traffic, the smoothed signal already below
    /// the ramp (so the uncore target is pinned at the floor), and both
    /// domains sitting at exactly the values it would re-write. From
    /// this state every further idle `on_quantum` only decays the EWMA
    /// — which [`skip_idle_quanta`](Self::skip_idle_quanta) replays.
    pub fn is_idle_stable(&self, proc: &SimProcessor) -> bool {
        proc.last_quantum().achieved_bw == 0.0
            && self.smoothed <= self.ramp_start
            && proc.core_freq() == proc.spec().core.max()
            && proc.uncore_freq() == proc.spec().uncore.clamp(self.uf_floor)
    }

    /// Replay `quanta` idle EWMA updates (traffic = 0) bit-identically
    /// to calling [`on_quantum`](Self::on_quantum) that many times on an
    /// idle-stable machine. The frequency re-writes those calls would
    /// perform are idempotent at the fixed point, so only the smoothing
    /// state needs the per-quantum update.
    pub fn skip_idle_quanta(&mut self, quanta: u64) {
        for _ in 0..quanta {
            self.smoothed = self.alpha * 0.0 + (1.0 - self.alpha) * self.smoothed;
        }
    }

    /// Safety margin, in traffic fraction of DRAM peak, kept from the
    /// ramp-band edges by [`is_busy_stable`](Self::is_busy_stable).
    /// Within a workload-call-free stretch whose overload factor has
    /// settled, the traffic signal can only drift at floating-point
    /// ULP scale, many orders of magnitude below this margin.
    pub const BUSY_BAND_MARGIN: f64 = 0.02;

    /// True when, on a busy machine, this governor's
    /// [`on_quantum`](Self::on_quantum) has reached a *saturated* busy
    /// fixed point: the bandwidth-overload factor has settled, both
    /// the smoothed signal and the instantaneous traffic sit on the
    /// same saturated side of the ramp (at most `ramp_start − margin`,
    /// or at least `ramp_full + margin` — never in the interpolated
    /// middle, where one ULP of drift could move the target), and both
    /// domains already hold exactly the values `on_quantum` would
    /// re-write. From this state, stepping through a stretch free of
    /// workload calls leaves every per-quantum actuation a no-op; only
    /// the EWMA state advances, which
    /// [`skip_busy_quanta`](Self::skip_busy_quanta) replays.
    pub fn is_busy_stable(&self, proc: &SimProcessor) -> bool {
        let traffic = proc.last_quantum().achieved_bw / proc.perf_model().dram_peak_bw;
        let below = |t: f64| t <= self.ramp_start - Self::BUSY_BAND_MARGIN;
        let above = |t: f64| t >= self.ramp_full + Self::BUSY_BAND_MARGIN;
        let saturated =
            (below(self.smoothed) && below(traffic)) || (above(self.smoothed) && above(traffic));
        proc.overload_settled()
            && saturated
            && proc.core_freq() == proc.spec().core.max()
            && proc.uncore_freq() == self.uncore_target(proc, self.smoothed)
    }

    /// Replay the per-quantum EWMA updates of a completed busy
    /// fast-forward, bit-identically to calling
    /// [`on_quantum`](Self::on_quantum) after every absorbed quantum:
    /// the traffic of each quantum was recorded by the engine
    /// ([`SimProcessor::busy_advance_stats`]), and the frequency
    /// re-writes those calls would perform are idempotent at the busy
    /// fixed point.
    pub fn skip_busy_quanta(&mut self, proc: &SimProcessor) {
        let peak = proc.perf_model().dram_peak_bw;
        for stats in proc.busy_advance_stats() {
            let traffic = stats.achieved_bw / peak;
            self.smoothed = self.alpha * traffic + (1.0 - self.alpha) * self.smoothed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Chunk, Workload};
    use crate::freq::HASWELL_2650V3;
    use crate::perf::CostProfile;

    struct Steady {
        chunk: Chunk,
    }
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(self.chunk.clone())
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    fn run_governor(chunk: Chunk, quanta: usize) -> (Freq, Freq) {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut g = DefaultGovernor::new();
        let mut wl = Steady { chunk };
        for _ in 0..quanta {
            p.step(&mut wl);
            g.on_quantum(&mut p);
        }
        (p.core_freq(), p.uncore_freq())
    }

    #[test]
    fn compute_bound_settles_at_uncore_floor() {
        let chunk = Chunk::new(1_000_000, 500, 100).with_profile(CostProfile::new(0.9, 4.0));
        let (cf, uf) = run_governor(chunk, 300);
        assert_eq!(cf, Freq(23), "performance governor pins CF at max");
        assert_eq!(uf, Freq(22), "light traffic settles at the 2.2 GHz floor");
    }

    #[test]
    fn memory_bound_ramps_uncore_to_max() {
        // TIPI 0.064 streaming — saturates bandwidth.
        let chunk = Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0));
        let (cf, uf) = run_governor(chunk, 300);
        assert_eq!(cf, Freq(23));
        assert_eq!(uf, Freq(30), "saturating traffic drives uncore to 3.0 GHz");
    }

    #[test]
    fn idle_skip_matches_stepwise_decay() {
        struct Never;
        impl Workload for Never {
            fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
                None
            }
            fn is_done(&self) -> bool {
                true
            }
            fn next_wake_ns(&self, _: u64) -> Option<u64> {
                None
            }
        }
        // Saturate the traffic signal, then let the machine park.
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut g = DefaultGovernor::new();
        let chunk = Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0));
        let mut wl = Steady { chunk };
        for _ in 0..200 {
            p.step(&mut wl);
            g.on_quantum(&mut p);
        }
        assert!(!g.is_idle_stable(&p), "busy machine is not idle-stable");
        // Decay stepwise until the governor reaches its idle fixed point.
        let mut guard = 0;
        while !g.is_idle_stable(&p) {
            p.step(&mut Never);
            g.on_quantum(&mut p);
            guard += 1;
            assert!(guard < 1000, "governor must reach the idle fixed point");
        }
        // From the fixed point: skipping must equal stepping, bit for bit.
        let mut p2 = p.clone();
        let mut g2 = g.clone();
        for _ in 0..57 {
            p.step(&mut Never);
            g.on_quantum(&mut p);
        }
        p2.advance_idle_quanta(57);
        g2.skip_idle_quanta(57);
        assert_eq!(g.traffic().to_bits(), g2.traffic().to_bits());
        assert_eq!(p.core_freq(), p2.core_freq());
        assert_eq!(p.uncore_freq(), p2.uncore_freq());
        assert_eq!(
            p.total_energy_joules().to_bits(),
            p2.total_energy_joules().to_bits()
        );
        assert!(g2.is_idle_stable(&p2), "fixed point is absorbing");
    }

    #[test]
    fn busy_skip_matches_stepwise_folding() {
        // A steady light-traffic stream: overload sits at exactly 1.0,
        // the smoothed signal settles far below the ramp, and the
        // governor reaches its saturated (floor) busy fixed point.
        let chunk = Chunk::new(1_000_000, 500, 100).with_profile(CostProfile::new(0.9, 4.0));
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut g = DefaultGovernor::new();
        let mut wl = Steady {
            chunk: chunk.clone(),
        };
        for _ in 0..300 {
            p.step(&mut wl);
            g.on_quantum(&mut p);
        }
        assert!(g.is_busy_stable(&p), "steady stream must reach fixed point");

        // From the fixed point: advancing + replaying must equal
        // stepping + folding, bit for bit.
        let mut p2 = p.clone();
        let mut g2 = g.clone();
        let mut wl2 = Steady { chunk };
        for _ in 0..57 {
            p.step(&mut wl);
            g.on_quantum(&mut p);
        }
        let done = p2.advance_busy_quanta(&mut wl2, 57);
        assert_eq!(done, 57);
        g2.skip_busy_quanta(&p2);
        assert_eq!(g.traffic().to_bits(), g2.traffic().to_bits());
        assert_eq!(p.core_freq(), p2.core_freq());
        assert_eq!(p.uncore_freq(), p2.uncore_freq());
        assert_eq!(
            p.total_energy_joules().to_bits(),
            p2.total_energy_joules().to_bits()
        );
        assert!(g2.is_busy_stable(&p2), "fixed point is absorbing");
    }

    #[test]
    fn ramp_is_monotone_in_traffic() {
        let p = SimProcessor::new(HASWELL_2650V3.clone());
        let g = DefaultGovernor::new();
        let mut prev = Freq(0);
        for i in 0..=20 {
            let t = i as f64 / 20.0;
            let uf = g.uncore_target(&p, t);
            assert!(uf >= prev);
            prev = uf;
        }
        assert_eq!(g.uncore_target(&p, 0.0), Freq(22));
        assert_eq!(g.uncore_target(&p, 1.0), Freq(30));
    }
}
