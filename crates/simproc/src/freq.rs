//! Frequency domains and machine specifications.
//!
//! Frequencies are represented as integer multiples of 100 MHz (the
//! granularity of both DVFS P-states and the UFS ratio field on Intel
//! machines), which keeps arithmetic exact. The evaluation machine of the
//! paper exposes 12 core levels (1.2–2.3 GHz) and 19 uncore levels
//! (1.2–3.0 GHz).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::LazyLock;

/// A frequency in units of 100 MHz ("ratio" in Intel terminology).
///
/// `Freq(23)` is 2.3 GHz. Ordering and arithmetic are derived from the
/// inner integer, so frequency comparisons are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Freq(pub u32);

impl Freq {
    /// Frequency in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0 as f64 * 100.0e6
    }

    /// Frequency in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 10.0
    }

    /// Construct from gigahertz, rounding to the nearest 100 MHz step.
    pub fn from_ghz(ghz: f64) -> Self {
        Freq((ghz * 10.0).round() as u32)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}GHz", self.ghz())
    }
}

/// An ordered, contiguous range of frequency levels for one domain
/// (core or uncore).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreqDomain {
    min: Freq,
    max: Freq,
}

impl FreqDomain {
    /// Create a domain spanning `min..=max` in 100 MHz steps.
    ///
    /// # Panics
    /// Panics if `min > max` or `min` is zero.
    pub fn new(min: Freq, max: Freq) -> Self {
        assert!(min.0 > 0, "frequency domain must not contain 0");
        assert!(min <= max, "min must not exceed max");
        FreqDomain { min, max }
    }

    /// Lowest frequency of the domain.
    #[inline]
    pub fn min(&self) -> Freq {
        self.min
    }

    /// Highest frequency of the domain.
    #[inline]
    pub fn max(&self) -> Freq {
        self.max
    }

    /// Number of levels in the domain.
    #[inline]
    pub fn len(&self) -> usize {
        (self.max.0 - self.min.0 + 1) as usize
    }

    /// Domains are never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `f` is a valid level of this domain.
    #[inline]
    pub fn contains(&self, f: Freq) -> bool {
        self.min <= f && f <= self.max
    }

    /// Index of `f` within the domain (0 = min).
    ///
    /// # Panics
    /// Panics if `f` is outside the domain.
    #[inline]
    pub fn index_of(&self, f: Freq) -> usize {
        assert!(
            self.contains(f),
            "{f} outside domain {}..={}",
            self.min,
            self.max
        );
        (f.0 - self.min.0) as usize
    }

    /// Frequency at `index` (0 = min).
    ///
    /// # Panics
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn at(&self, index: usize) -> Freq {
        assert!(index < self.len(), "index {index} out of range");
        Freq(self.min.0 + index as u32)
    }

    /// Clamp an arbitrary frequency into the domain.
    #[inline]
    pub fn clamp(&self, f: Freq) -> Freq {
        Freq(f.0.clamp(self.min.0, self.max.0))
    }

    /// Iterate all levels from min to max.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Freq> + '_ {
        (self.min.0..=self.max.0).map(Freq)
    }

    /// The middle level (lower median for even-sized domains).
    pub fn mid(&self) -> Freq {
        Freq((self.min.0 + self.max.0) / 2)
    }
}

/// Static description of a simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable model name.
    pub name: String,
    /// Number of physical cores (all threads pinned 1:1 in the paper).
    pub n_cores: usize,
    /// Core DVFS domain.
    pub core: FreqDomain,
    /// Uncore UFS domain.
    pub uncore: FreqDomain,
    /// Virtual-time step of the discrete-event engine, in nanoseconds.
    /// RAPL updates once per quantum, matching the 1 ms MSR update
    /// cadence of Haswell.
    pub quantum_ns: u64,
}

impl MachineSpec {
    /// Sanity-check invariants (used by property tests).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cores == 0 {
            return Err("machine must have at least one core".into());
        }
        if self.quantum_ns == 0 {
            return Err("quantum must be positive".into());
        }
        Ok(())
    }
}

/// The paper's evaluation machine: Intel Xeon Haswell E5-2650 v3,
/// 20 cores, core 1.2–2.3 GHz, uncore 1.2–3.0 GHz, RAPL updated every
/// 1 ms.
pub static HASWELL_2650V3: LazyLock<MachineSpec> = LazyLock::new(|| MachineSpec {
    name: "Intel Xeon E5-2650 v3 (simulated)".to_string(),
    n_cores: 20,
    core: FreqDomain::new(Freq(12), Freq(23)),
    uncore: FreqDomain::new(Freq(12), Freq(30)),
    quantum_ns: 1_000_000,
});

/// A small hypothetical machine with seven levels (A–G) in both domains,
/// mirroring the worked examples in Figures 4–9 of the paper. Useful in
/// unit tests where hand-checking the exploration steps matters.
pub static HYPOTHETICAL7: LazyLock<MachineSpec> = LazyLock::new(|| MachineSpec {
    name: "hypothetical 7-level machine (paper Figs. 4-9)".to_string(),
    n_cores: 4,
    core: FreqDomain::new(Freq(10), Freq(16)),
    uncore: FreqDomain::new(Freq(10), Freq(16)),
    quantum_ns: 1_000_000,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_display_and_conversions() {
        let f = Freq(23);
        assert_eq!(f.ghz(), 2.3);
        assert_eq!(f.hz(), 2.3e9);
        assert_eq!(format!("{f}"), "2.3GHz");
        assert_eq!(Freq::from_ghz(2.3), Freq(23));
        assert_eq!(Freq::from_ghz(1.2000001), Freq(12));
    }

    #[test]
    fn domain_len_matches_paper_machine() {
        let m = &*HASWELL_2650V3;
        assert_eq!(m.core.len(), 12, "12 core levels 1.2..=2.3");
        assert_eq!(m.uncore.len(), 19, "19 uncore levels 1.2..=3.0");
    }

    #[test]
    fn domain_index_roundtrip() {
        let d = FreqDomain::new(Freq(12), Freq(30));
        for (i, f) in d.iter().enumerate() {
            assert_eq!(d.index_of(f), i);
            assert_eq!(d.at(i), f);
        }
    }

    #[test]
    fn domain_clamp() {
        let d = FreqDomain::new(Freq(12), Freq(23));
        assert_eq!(d.clamp(Freq(5)), Freq(12));
        assert_eq!(d.clamp(Freq(99)), Freq(23));
        assert_eq!(d.clamp(Freq(15)), Freq(15));
    }

    #[test]
    fn domain_mid() {
        assert_eq!(FreqDomain::new(Freq(10), Freq(16)).mid(), Freq(13));
        assert_eq!(FreqDomain::new(Freq(12), Freq(23)).mid(), Freq(17));
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn index_of_out_of_domain_panics() {
        FreqDomain::new(Freq(12), Freq(23)).index_of(Freq(30));
    }

    #[test]
    fn machine_spec_validates() {
        assert!(HASWELL_2650V3.validate().is_ok());
        assert!(HYPOTHETICAL7.validate().is_ok());
    }
}
