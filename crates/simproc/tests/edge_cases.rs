//! Edge-case and failure-injection tests for the substrate: degenerate
//! machines, adversarial workloads, and boundary conditions that a
//! production simulator must shrug off.

use simproc::engine::{Chunk, SimProcessor, Workload};
use simproc::freq::{Freq, FreqDomain, MachineSpec, HASWELL_2650V3};
use simproc::perf::CostProfile;

fn tiny_machine() -> MachineSpec {
    MachineSpec {
        name: "1-core/1-level".into(),
        n_cores: 1,
        core: FreqDomain::new(Freq(12), Freq(12)),
        uncore: FreqDomain::new(Freq(12), Freq(12)),
        quantum_ns: 1_000_000,
    }
}

struct Once(Option<Chunk>);
impl Workload for Once {
    fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
        self.0.take()
    }
    fn is_done(&self) -> bool {
        self.0.is_none()
    }
}

#[test]
fn single_core_single_level_machine_runs() {
    let mut p = SimProcessor::new(tiny_machine());
    let mut wl = Once(Some(Chunk::new(5_000_000, 1000, 0)));
    let secs = p.run(&mut wl, |_| {});
    assert!(secs > 0.0);
    assert_eq!(p.core_freq(), Freq(12));
    // Frequency writes clamp to the only level.
    p.set_core_freq(Freq(99));
    p.set_uncore_freq(Freq(1));
    let mut wl2 = Once(None);
    p.step(&mut wl2);
    assert_eq!(p.core_freq(), Freq(12));
    assert_eq!(p.uncore_freq(), Freq(12));
}

#[test]
fn zero_instruction_chunk_does_not_hang() {
    // A chunk with misses but no instructions is pure memory traffic;
    // the engine must finish it in finite time.
    let mut p = SimProcessor::new(HASWELL_2650V3.clone());
    let mut wl = Once(Some(Chunk::new(0, 100_000, 10_000)));
    let mut guard = 0;
    while !p.workload_drained(&wl) {
        p.step(&mut wl);
        guard += 1;
        assert!(
            guard < 100_000,
            "engine must drain a zero-instruction chunk"
        );
    }
}

#[test]
fn truly_empty_chunk_completes_immediately() {
    let mut p = SimProcessor::new(HASWELL_2650V3.clone());
    let mut wl = Once(Some(Chunk::new(0, 0, 0)));
    let mut guard = 0;
    while !p.workload_drained(&wl) {
        p.step(&mut wl);
        guard += 1;
        assert!(guard < 10, "empty chunk must cost ~nothing");
    }
}

struct Liar {
    handed: bool,
}
impl Workload for Liar {
    fn next_chunk(&mut self, core: usize, _t: u64) -> Option<Chunk> {
        if core == 0 && !self.handed {
            self.handed = true;
            Some(Chunk::new(50_000_000, 0, 0))
        } else {
            None
        }
    }
    fn is_done(&self) -> bool {
        // Lies: claims done while its chunk may still be in flight.
        true
    }
}

#[test]
fn in_flight_chunks_complete_even_if_workload_claims_done() {
    // `workload_drained` must consider engine-held chunks, not just the
    // workload's own claim.
    let mut p = SimProcessor::new(HASWELL_2650V3.clone());
    let mut wl = Liar { handed: false };
    p.step(&mut wl); // hands out the chunk
    assert!(
        !p.workload_drained(&wl),
        "chunk is in flight; drain must be false despite is_done()"
    );
    let mut guard = 0;
    while !p.workload_drained(&wl) {
        p.step(&mut wl);
        guard += 1;
        assert!(guard < 1_000_000);
    }
    assert!((p.total_instructions() - 50_000_000.0).abs() < 1.0);
}

#[test]
fn giant_chunk_spans_many_quanta_with_exact_accounting() {
    // One chunk worth ~2 s of work: partial-execution slicing must
    // conserve instructions and misses exactly.
    let mut p = SimProcessor::new(HASWELL_2650V3.clone());
    let chunk =
        Chunk::new(4_000_000_000, 4_000_000, 1_000_000).with_profile(CostProfile::new(1.0, 8.0));
    let mut wl = Once(Some(chunk));
    p.run(&mut wl, |_| {});
    assert!((p.total_instructions() - 4.0e9).abs() / 4.0e9 < 1e-9);
    let tor = p.msr_read(simproc::msr::SIM_TOR_INSERT_MISS_LOCAL).unwrap()
        + p.msr_read(simproc::msr::SIM_TOR_INSERT_MISS_REMOTE)
            .unwrap();
    assert!(
        (tor as f64 - 5.0e6).abs() < 2.0,
        "misses conserved, got {tor}"
    );
}

#[test]
fn frequency_thrash_every_quantum_is_stable() {
    // An adversarial controller flipping both knobs every quantum must
    // not break conservation or produce non-finite energy.
    let mut p = SimProcessor::new(HASWELL_2650V3.clone());
    struct Steady;
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(Chunk::new(1_000_000, 30_000, 10_000))
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    let mut wl = Steady;
    for i in 0..2_000u32 {
        p.step(&mut wl);
        let cf = 12 + (i % 12);
        let uf = 12 + ((i * 7) % 19);
        p.set_core_freq(Freq(cf));
        p.set_uncore_freq(Freq(uf));
    }
    assert!(p.total_energy_joules().is_finite());
    assert!(p.total_instructions() > 0.0);
    // Residency spread across many operating points.
    assert!(p.frequency_residency().len() > 50);
}

#[test]
fn daemon_survives_degenerate_single_level_machine() {
    // Cuttlefish on a machine with one frequency per domain: nothing to
    // explore; everything resolves instantly and harmlessly.
    use cuttlefish::daemon::Daemon;
    use cuttlefish::Config;
    use simproc::profile::Sample;
    let m = tiny_machine();
    let mut d = Daemon::new(Config::default(), m.core.clone(), m.uncore.clone());
    for _ in 0..100 {
        let (cf, uf) = d.tick(Sample {
            tipi: 0.05,
            jpi: 3.0,
            instructions: 1_000_000,
            joules: 3.0,
            dt_ns: 20_000_000,
        });
        assert_eq!(cf, Freq(12));
        assert_eq!(uf, Freq(12));
    }
    let node = d.nodes().next().unwrap();
    assert_eq!(node.cf_opt(), Some(0));
    assert_eq!(node.uf_opt(), Some(0));
}
