//! Diagnostic dump of JPI curves (run with --ignored --nocapture).

use simproc::engine::{Chunk, SimProcessor, Workload};
use simproc::freq::{Freq, HASWELL_2650V3};
use simproc::perf::CostProfile;

struct Uniform {
    chunk: Chunk,
    left: Vec<usize>,
}
impl Workload for Uniform {
    fn next_chunk(&mut self, core: usize, _t: u64) -> Option<Chunk> {
        if self.left[core] == 0 {
            None
        } else {
            self.left[core] -= 1;
            Some(self.chunk.clone())
        }
    }
    fn is_done(&self) -> bool {
        self.left.iter().all(|&l| l == 0)
    }
}

fn run_at(chunk: &Chunk, cf: Freq, uf: Freq) -> (f64, f64) {
    let mut p = SimProcessor::new(HASWELL_2650V3.clone());
    p.set_core_freq(cf);
    p.set_uncore_freq(uf);
    let mut wl = Uniform {
        chunk: chunk.clone(),
        left: vec![60; p.n_cores()],
    };
    let secs = p.run(&mut wl, |_| {});
    (p.total_energy_joules() / p.total_instructions() * 1e9, secs)
}

#[test]
#[ignore]
fn dump() {
    let uts = Chunk::new(1_000_000, 800, 200).with_profile(CostProfile::new(0.9, 4.0));
    let sor = Chunk::new(1_000_000, 22_000, 4_000).with_profile(CostProfile::new(2.2, 26.0));
    let heat = Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0));
    for (name, c) in [("uts", &uts), ("sor", &sor), ("heat", &heat)] {
        println!("== {name} JPI(CF) at UF=3.0 (nJ/instr, secs)");
        for cf in HASWELL_2650V3.core.iter() {
            let (j, t) = run_at(c, cf, Freq(30));
            println!("  CF {cf}: {j:.4} {t:.3}");
        }
        println!("== {name} JPI(UF) at CF=2.3");
        for uf in HASWELL_2650V3.uncore.iter() {
            let (j, t) = run_at(c, Freq(23), uf);
            println!("  UF {uf}: {j:.4} {t:.3}");
        }
    }
}
