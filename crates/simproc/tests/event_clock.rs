//! Property-style equivalence suite for the virtual-clock layer:
//! event-driven stepping (fast-forwarding parked stretches through
//! `advance_idle` and busy steady-state stretches through
//! `advance_busy_quanta`) must produce *bit-identical* energy,
//! instruction, residency, and clock state to the pure quantum loop,
//! over seeded pseudo-random workload schedules.
//!
//! The schedules alternate busy windows (saturating chunk streams of
//! seed-dependent cost, some heavy enough to span many quanta — the
//! busy fast-forward's territory) with idle gaps the workload
//! announces through `next_wake_ns` — the shape of barrier waits and
//! communication windows in the cluster layer, reproduced here against
//! the engine alone.

use simproc::engine::{Chunk, SimProcessor, Workload};
use simproc::freq::{Freq, HASWELL_2650V3, HYPOTHETICAL7};
use simproc::msr::{IA32_APERF, IA32_FIXED_CTR0, IA32_MPERF, MSR_PKG_ENERGY_STATUS};
use simproc::perf::CostProfile;

/// Small deterministic PRNG (PCG-ish LCG) so the suite needs no
/// external crates and every failure is reproducible from its seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Busy windows over virtual time; outside them the workload is parked
/// and says exactly when it wakes again.
struct Bursty {
    /// `[start_ns, end_ns)` busy windows, ascending and disjoint.
    windows: Vec<(u64, u64)>,
    /// Chunk handed out within each window.
    chunks: Vec<Chunk>,
}

impl Bursty {
    fn random(rng: &mut Lcg, quantum_ns: u64, n_windows: usize) -> Self {
        let mut windows = Vec::new();
        let mut chunks = Vec::new();
        let mut t = 0u64;
        for _ in 0..n_windows {
            // Idle gap of 0..120 quanta, busy window of 1..40 quanta.
            t += rng.range(0, 120) * quantum_ns;
            let start = t;
            t += rng.range(1, 40) * quantum_ns;
            windows.push((start, t));
            let memoryish = rng.next().is_multiple_of(2);
            let (ml, mr, profile) = if memoryish {
                (56_000, 8_000, CostProfile::new(0.55, 12.0))
            } else {
                (rng.range(0, 2_000), 0, CostProfile::new(0.9, 4.0))
            };
            // A third of the chunks are heavy — hundreds of quanta of
            // execution — so busy stretches long enough to fast-forward
            // actually occur alongside the sub-quantum churn.
            let instr = if rng.next().is_multiple_of(3) {
                rng.range(40_000_000, 800_000_000)
            } else {
                rng.range(100_000, 2_000_000)
            };
            chunks.push(Chunk::new(instr, ml, mr).with_profile(profile));
        }
        Bursty { windows, chunks }
    }
}

impl Workload for Bursty {
    fn next_chunk(&mut self, _core: usize, now_ns: u64) -> Option<Chunk> {
        self.windows
            .iter()
            .position(|&(s, e)| s <= now_ns && now_ns < e)
            .map(|i| self.chunks[i].clone())
    }

    fn is_done(&self) -> bool {
        false
    }

    fn next_wake_ns(&self, now_ns: u64) -> Option<u64> {
        for &(s, e) in &self.windows {
            if now_ns < e {
                return Some(s.max(now_ns));
            }
        }
        None
    }
}

#[derive(PartialEq, Debug)]
struct Fingerprint {
    energy_bits: u64,
    instructions_bits: u64,
    time_ns: u64,
    residency: Vec<((u32, u32), u64)>,
    rapl: u64,
    core0: (u64, u64, u64),
    power_bits: u64,
    overload_bits: u64,
}

fn fingerprint(p: &SimProcessor) -> Fingerprint {
    Fingerprint {
        energy_bits: p.total_energy_joules().to_bits(),
        instructions_bits: p.total_instructions().to_bits(),
        time_ns: p.now_ns(),
        residency: p
            .frequency_residency()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect(),
        rapl: p.msr_read(MSR_PKG_ENERGY_STATUS).unwrap(),
        core0: (
            p.msr_read_core(0, IA32_FIXED_CTR0).unwrap(),
            p.msr_read_core(0, IA32_APERF).unwrap(),
            p.msr_read_core(0, IA32_MPERF).unwrap(),
        ),
        power_bits: p.last_quantum().power_watts.to_bits(),
        overload_bits: p.last_quantum().overload.to_bits(),
    }
}

/// The pure quantum loop: one `step` per quantum, no exceptions.
fn run_stepped(p: &mut SimProcessor, wl: &mut Bursty, quanta: u64) {
    while p.total_quanta() < quanta {
        p.step(wl);
    }
}

/// The event-driven loop: fast-forward parked stretches to the
/// workload's announced wake and busy stretches through the engine's
/// provably interaction-free runway (both bounded by the run length),
/// stepping everything else.
fn run_events(p: &mut SimProcessor, wl: &mut Bursty, quanta: u64) {
    let q = p.spec().quantum_ns;
    while p.total_quanta() < quanta {
        let left = quanta - p.total_quanta();
        if p.cores_parked() {
            match p.next_event_ns(wl) {
                Some(event) => {
                    let gap = (event - p.now_ns()) / q;
                    if gap > 1 {
                        p.advance_idle_quanta((gap - 1).min(left));
                        continue;
                    }
                }
                None => {
                    // Never wakes again: the rest of the run is idle.
                    p.advance_idle_quanta(left);
                    continue;
                }
            }
        } else if let Some(event) = p.next_event_ns(wl) {
            // With no controller attached there is nothing to consult:
            // the engine's own event bound is the whole constraint.
            let horizon = ((event - p.now_ns()) / q).saturating_sub(1);
            let k = horizon.min(left);
            if k > 0 && p.advance_busy_quanta(wl, k) > 0 {
                continue;
            }
        }
        p.step(wl);
    }
}

#[test]
fn event_loop_is_bit_identical_to_quantum_loop() {
    for seed in 1..=24u64 {
        let mut rng = Lcg(seed);
        let spec = if seed % 3 == 0 {
            HYPOTHETICAL7.clone()
        } else {
            HASWELL_2650V3.clone()
        };
        let cf = Freq(rng.range(spec.core.min().0 as u64, spec.core.max().0 as u64) as u32);
        let uf = Freq(rng.range(spec.uncore.min().0 as u64, spec.uncore.max().0 as u64) as u32);
        let quanta = rng.range(200, 2_000);

        let make = |rng_seed: u64| {
            let mut r = Lcg(rng_seed);
            Bursty::random(&mut r, spec.quantum_ns, 12)
        };
        let mut a = SimProcessor::new(spec.clone());
        a.set_core_freq(cf);
        a.set_uncore_freq(uf);
        let mut b = a.clone();

        let mut wl_a = make(seed ^ 0xABCD);
        let mut wl_b = make(seed ^ 0xABCD);
        run_stepped(&mut a, &mut wl_a, quanta);
        run_events(&mut b, &mut wl_b, quanta);

        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "seed {seed}: event-driven run must be bit-identical"
        );
        assert!(
            b.stepped_quanta() <= a.stepped_quanta(),
            "seed {seed}: the event loop must never step more"
        );
    }
}

#[test]
fn event_loop_actually_skips_on_gapped_schedules() {
    // Sanity against a vacuous pass: across the seeded schedules both
    // fast paths must engage — idle gaps and heavy busy stretches.
    let mut idle_advanced = 0u64;
    let mut busy_advanced = 0u64;
    for seed in 1..=8u64 {
        let mut rng = Lcg(seed);
        let mut wl = Bursty::random(&mut rng, HASWELL_2650V3.quantum_ns, 12);
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        run_events(&mut p, &mut wl, 1_500);
        idle_advanced += p.idle_advanced_quanta();
        busy_advanced += p.busy_advanced_quanta();
    }
    assert!(
        idle_advanced > 0,
        "no schedule exercised the idle fast path"
    );
    assert!(
        busy_advanced > 0,
        "no schedule exercised the busy fast path"
    );
}

#[test]
fn advance_equals_stepping_from_randomized_machine_states() {
    // Beyond the engine's own unit test: randomize frequency state,
    // duty modulation, and prior workload mix before the idle stretch.
    for seed in 1..=12u64 {
        let mut rng = Lcg(seed ^ 0x5EED);
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let cf = Freq(rng.range(12, 23) as u32);
        let uf = Freq(rng.range(12, 30) as u32);
        p.set_core_freq(cf);
        p.set_uncore_freq(uf);
        if rng.next().is_multiple_of(2) {
            p.set_duty_all(rng.range(4, 15) as u32);
        }
        let mut wl = Bursty::random(&mut rng, p.spec().quantum_ns, 3);
        run_stepped(&mut p, &mut wl, rng.range(50, 300));

        // Drain any in-flight chunk so the machine is parked.
        struct Never;
        impl Workload for Never {
            fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
                None
            }
            fn is_done(&self) -> bool {
                true
            }
            fn next_wake_ns(&self, _: u64) -> Option<u64> {
                None
            }
        }
        while !p.cores_parked() {
            p.step(&mut Never);
        }

        let idle = rng.range(1, 400);
        let mut stepped = p.clone();
        let mut jumped = p;
        for _ in 0..idle {
            stepped.step(&mut Never);
        }
        jumped.advance_idle_quanta(idle);
        assert_eq!(
            fingerprint(&stepped),
            fingerprint(&jumped),
            "seed {seed}: {idle} idle quanta must accumulate identically"
        );
    }
}

#[test]
fn advance_idle_until_overshoots_to_the_boundary_like_stepping() {
    let mut p = SimProcessor::new(HASWELL_2650V3.clone());
    let q = p.spec().quantum_ns;
    // A deadline mid-quantum: the clock lands on the next boundary,
    // exactly as a step loop that only stops at boundaries would.
    p.advance_idle(q * 7 + 1);
    assert_eq!(p.now_ns(), q * 8);
    // A deadline in the past is a no-op.
    p.advance_idle(q * 3);
    assert_eq!(p.now_ns(), q * 8);
}
