//! Shape-calibration tests: the JPI surfaces of the simulated machine
//! must have their optima where the paper's Table 2 measured them.
//!
//! * Compute-bound (UTS-like, TIPI ≈ 0.001): JPI minimal at CF = 2.3 GHz
//!   and UF ≈ 1.2–1.3 GHz; JPI decreases with CF and increases with UF
//!   (paper Fig. 3 trend).
//! * Moderate streaming (SOR-like, TIPI ≈ 0.026): still CFopt = 2.3,
//!   UFopt ≈ 1.2.
//! * Memory-bound (Heat-like, TIPI ≈ 0.064): CFopt ≈ 1.2–1.3 GHz,
//!   UFopt ≈ 2.1–2.3 GHz (interior — not max).

use simproc::engine::{Chunk, SimProcessor, Workload};
use simproc::freq::{Freq, HASWELL_2650V3};
use simproc::perf::CostProfile;

struct Uniform {
    chunk: Chunk,
    left: Vec<usize>,
}

impl Workload for Uniform {
    fn next_chunk(&mut self, core: usize, _t: u64) -> Option<Chunk> {
        if self.left[core] == 0 {
            None
        } else {
            self.left[core] -= 1;
            Some(self.chunk.clone())
        }
    }
    fn is_done(&self) -> bool {
        self.left.iter().all(|&l| l == 0)
    }
}

/// Run `chunk` replicated on all cores at fixed frequencies; return
/// (jpi, seconds).
fn run_at(chunk: &Chunk, cf: Freq, uf: Freq) -> (f64, f64) {
    let mut p = SimProcessor::new(HASWELL_2650V3.clone());
    p.set_core_freq(cf);
    p.set_uncore_freq(uf);
    let mut wl = Uniform {
        chunk: chunk.clone(),
        left: vec![300; p.n_cores()],
    };
    let secs = p.run(&mut wl, |_| {});
    let jpi = p.total_energy_joules() / p.total_instructions();
    (jpi, secs)
}

fn argmin_cf(chunk: &Chunk, uf: Freq) -> Freq {
    HASWELL_2650V3
        .core
        .iter()
        .min_by(|&a, &b| {
            run_at(chunk, a, uf)
                .0
                .partial_cmp(&run_at(chunk, b, uf).0)
                .unwrap()
        })
        .unwrap()
}

fn argmin_uf(chunk: &Chunk, cf: Freq) -> Freq {
    HASWELL_2650V3
        .uncore
        .iter()
        .min_by(|&a, &b| {
            run_at(chunk, cf, a)
                .0
                .partial_cmp(&run_at(chunk, cf, b).0)
                .unwrap()
        })
        .unwrap()
}

fn uts_like() -> Chunk {
    // TIPI ~ 0.001, branchy irregular code.
    Chunk::new(1_000_000, 800, 200).with_profile(CostProfile::new(0.9, 4.0))
}

fn sor_like() -> Chunk {
    // TIPI ~ 0.026, dependent FP chain, prefetch-covered streaming.
    Chunk::new(1_000_000, 22_000, 4_000).with_profile(CostProfile::new(2.0, 18.0))
}

fn heat_like() -> Chunk {
    // TIPI ~ 0.064, vectorized streaming — bandwidth-saturated.
    Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0))
}

#[test]
fn compute_bound_cf_optimum_at_max() {
    // The paper explores CF with the uncore still at max.
    assert_eq!(argmin_cf(&uts_like(), Freq(30)), Freq(23));
}

#[test]
fn compute_bound_jpi_monotone_decreasing_in_cf() {
    let chunk = uts_like();
    let mut prev = f64::INFINITY;
    for cf in HASWELL_2650V3.core.iter() {
        let (jpi, _) = run_at(&chunk, cf, Freq(30));
        assert!(
            jpi < prev,
            "compute-bound JPI must fall as CF rises; rose at {cf}"
        );
        prev = jpi;
    }
}

#[test]
fn compute_bound_uf_optimum_at_min() {
    let opt = argmin_uf(&uts_like(), Freq(23));
    assert!(
        opt <= Freq(13),
        "UTS UFopt should be 1.2-1.3 GHz, got {opt}"
    );
}

#[test]
fn compute_bound_jpi_rises_with_uf() {
    // Sampled every third level to stay above quantum-quantization
    // noise; the trend must be strictly upward.
    let chunk = uts_like();
    let mut prev = 0.0;
    for ratio in (12..=30).step_by(3) {
        let (jpi, _) = run_at(&chunk, Freq(23), Freq(ratio));
        assert!(
            jpi > prev,
            "compute-bound JPI must rise with UF; fell at {}",
            Freq(ratio)
        );
        prev = jpi;
    }
}

#[test]
fn sor_like_cf_optimum_near_max() {
    // The true argmin may sit one level below max (the measured curve is
    // nearly flat at the top — the same situation the paper's Fig. 5(a)
    // adjacent-bounds rule resolves by picking CFmax). The substrate
    // requirement is only: optimum at/near the top, steep penalty below.
    let opt = argmin_cf(&sor_like(), Freq(30));
    assert!(
        opt >= Freq(21),
        "SOR CF optimum should be near max, got {opt}"
    );
    let (j_min, _) = run_at(&sor_like(), Freq(12), Freq(30));
    let (j_top, _) = run_at(&sor_like(), Freq(23), Freq(30));
    assert!(j_min > j_top * 1.1, "CFmin must be clearly worse for SOR");
}

#[test]
fn sor_like_uf_optimum_near_min() {
    let opt = argmin_uf(&sor_like(), Freq(23));
    assert!(
        opt <= Freq(14),
        "SOR UFopt should be near 1.2 GHz, got {opt}"
    );
}

#[test]
fn memory_bound_cf_optimum_at_min() {
    // UF at the Default-governor level for a memory-bound program (3.0).
    let opt = argmin_cf(&heat_like(), Freq(30));
    assert!(
        opt <= Freq(13),
        "Heat CFopt should be 1.2-1.3 GHz, got {opt}"
    );
}

#[test]
fn memory_bound_jpi_increases_with_cf() {
    let chunk = heat_like();
    let (low, _) = run_at(&chunk, Freq(12), Freq(30));
    let (high, _) = run_at(&chunk, Freq(23), Freq(30));
    assert!(
        high > low * 1.05,
        "Heat JPI at CFmax should clearly exceed CFmin"
    );
}

#[test]
fn memory_bound_uf_optimum_interior() {
    let opt = argmin_uf(&heat_like(), Freq(12));
    assert!(
        (Freq(20)..=Freq(23)).contains(&opt),
        "Heat UFopt should sit at the 2.1-2.3 GHz knee, got {opt}"
    );
}

#[test]
fn memory_bound_slowdown_at_tuned_point_is_small() {
    // (1.2, 2.2) vs the Default operating point (2.3, 3.0): the paper
    // reports only a few percent slowdown for Heat.
    let chunk = heat_like();
    let (_, t_tuned) = run_at(&chunk, Freq(12), Freq(22));
    let (_, t_default) = run_at(&chunk, Freq(23), Freq(30));
    let slowdown = t_tuned / t_default - 1.0;
    assert!(
        slowdown < 0.12,
        "memory-bound slowdown at the tuned point should be small, got {slowdown:.3}"
    );
}

#[test]
fn memory_bound_energy_saving_at_tuned_point_is_large() {
    let chunk = heat_like();
    let (j_tuned, _) = run_at(&chunk, Freq(12), Freq(22));
    let (j_default, _) = run_at(&chunk, Freq(23), Freq(30));
    let saving = 1.0 - j_tuned / j_default;
    assert!(
        (0.15..0.40).contains(&saving),
        "paper reports 22-29% for memory-bound benchmarks, got {saving:.3}"
    );
}

#[test]
fn compute_bound_energy_saving_at_tuned_point_is_moderate() {
    // Cuttlefish point (2.3, 1.2) vs Default point (2.3, 2.2).
    let chunk = uts_like();
    let (j_tuned, t_tuned) = run_at(&chunk, Freq(23), Freq(12));
    let (j_default, t_default) = run_at(&chunk, Freq(23), Freq(22));
    let saving = 1.0 - j_tuned / j_default;
    assert!(
        (0.04..0.18).contains(&saving),
        "paper reports 8-10% for compute-bound benchmarks, got {saving:.3}"
    );
    let slowdown = t_tuned / t_default - 1.0;
    assert!(
        slowdown < 0.05,
        "compute-bound slowdown should be tiny, got {slowdown:.3}"
    );
}
