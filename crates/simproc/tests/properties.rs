//! Property-based tests of the simulated processor's physical
//! invariants: conservation, monotonicity, and counter consistency
//! must hold for any workload and any frequency program.

use proptest::prelude::*;
use simproc::engine::{Chunk, SimProcessor, Workload};
use simproc::freq::{Freq, HASWELL_2650V3};
use simproc::msr;
use simproc::perf::CostProfile;

/// Workload replaying a fixed list of chunks round-robin across cores.
struct Replay {
    chunks: Vec<Chunk>,
    next: usize,
}

impl Workload for Replay {
    fn next_chunk(&mut self, _core: usize, _t: u64) -> Option<Chunk> {
        if self.next >= self.chunks.len() {
            return None;
        }
        let c = self.chunks[self.next].clone();
        self.next += 1;
        Some(c)
    }
    fn is_done(&self) -> bool {
        self.next >= self.chunks.len()
    }
}

fn chunk_strategy() -> impl Strategy<Value = Chunk> {
    (
        100_000u64..5_000_000,
        0.0f64..0.2,
        0.4f64..2.5,
        2.0f64..24.0,
    )
        .prop_map(|(instr, tipi, cpi, mlp)| {
            let misses = (instr as f64 * tipi) as u64;
            Chunk::new(instr, misses * 7 / 10, misses * 3 / 10)
                .with_profile(CostProfile::new(cpi, mlp))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Instructions retired equal instructions submitted; energy and
    /// time are positive and finite.
    #[test]
    fn work_and_energy_conservation(
        chunks in proptest::collection::vec(chunk_strategy(), 1..60),
        cf in 12u32..=23,
        uf in 12u32..=30,
    ) {
        let expected: u64 = chunks.iter().map(|c| c.instructions).sum();
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        p.set_core_freq(Freq(cf));
        p.set_uncore_freq(Freq(uf));
        let mut wl = Replay { chunks, next: 0 };
        let mut guard = 0;
        while !p.workload_drained(&wl) {
            p.step(&mut wl);
            guard += 1;
            prop_assert!(guard < 10_000_000, "engine stalled");
        }
        let measured = p.total_instructions();
        prop_assert!(
            (measured - expected as f64).abs() / (expected as f64) < 1e-9,
            "instructions: {measured} vs {expected}"
        );
        prop_assert!(p.total_energy_joules().is_finite() && p.total_energy_joules() > 0.0);
    }

    /// Lowering the core frequency never makes any workload faster.
    #[test]
    fn time_monotone_in_core_frequency(
        chunks in proptest::collection::vec(chunk_strategy(), 1..30),
        uf in 12u32..=30,
    ) {
        let run = |cf: u32| {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            p.set_core_freq(Freq(cf));
            p.set_uncore_freq(Freq(uf));
            let mut wl = Replay { chunks: chunks.clone(), next: 0 };
            while !p.workload_drained(&wl) {
                p.step(&mut wl);
            }
            p.now_ns()
        };
        // Quantum rounding allows equality; a *lower* frequency must
        // never win by more than one quantum.
        prop_assert!(run(12) + 1_000_000 >= run(23));
    }

    /// The RAPL MSR tracks ground-truth energy within quantization.
    #[test]
    fn rapl_counter_tracks_ground_truth(
        chunks in proptest::collection::vec(chunk_strategy(), 1..40),
    ) {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let c0 = p.msr_read(msr::MSR_PKG_ENERGY_STATUS).unwrap();
        let mut wl = Replay { chunks, next: 0 };
        while !p.workload_drained(&wl) {
            p.step(&mut wl);
        }
        let c1 = p.msr_read(msr::MSR_PKG_ENERGY_STATUS).unwrap();
        let via_msr = (c1.wrapping_sub(c0) & 0xffff_ffff) as f64 * msr::JOULES_PER_COUNT;
        let exact = p.total_energy_joules();
        prop_assert!(
            (via_msr - exact).abs() <= 2.0 * msr::JOULES_PER_COUNT,
            "RAPL {via_msr} vs exact {exact}"
        );
    }

    /// Counters are monotone non-decreasing over time.
    #[test]
    fn counters_monotone(
        chunks in proptest::collection::vec(chunk_strategy(), 1..30),
    ) {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = Replay { chunks, next: 0 };
        let mut prev_e = 0.0;
        let mut prev_i = 0.0;
        let mut prev_tor = 0u64;
        while !p.workload_drained(&wl) {
            p.step(&mut wl);
            let e = p.total_energy_joules();
            let i = p.total_instructions();
            let tor = p.msr_read(msr::SIM_TOR_INSERT_MISS_LOCAL).unwrap();
            prop_assert!(e >= prev_e && i >= prev_i && tor >= prev_tor);
            prev_e = e;
            prev_i = i;
            prev_tor = tor;
        }
    }
}
