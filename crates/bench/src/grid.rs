//! The scenario grid: declarative axis-sets over [`Scenario`] fields,
//! fanned out across worker threads and aggregated into one
//! machine-readable result.
//!
//! The paper's evaluation is a grid — every figure/table is "run these
//! benchmarks under these setups on these fleets and compare" — and
//! each run is an independent, deterministic simulation. A [`GridSpec`]
//! is a list of [`AxisSet`]s, each the cartesian product
//! `benchmarks × fleets × setups × reps` over scenario fields (the
//! [`Fleet`] axis covers node counts, heterogeneous per-node machines,
//! and bulk-synchronous decompositions — no hand-built special-case
//! cells). [`GridSpec::run`] executes the enumerated cells on a
//! work-stealing pool (the crossbeam shim's `Injector` feeds cell
//! indices to `--shards` threads), each cell running through
//! [`Scenario::run`], and [`GridResult`] carries the per-cell
//! measurements in *cell-enumeration order* regardless of which thread
//! ran what — so the serialized artifact is byte-identical for any
//! shard count, which is what lets CI diff it over time.
//!
//! The figure/table bins in `src/bin/` are each one `GridSpec`
//! declaration plus a formatting layer over the returned cells; the
//! same JSON artifacts feed `ci.sh`'s "bench smoke" stage.

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::scenario::{arr, from_arr, from_opt_u32, obj, opt_u32, Scenario, ScenarioOutcome};
use crate::store::{CellKey, Store};
use crate::{RunOutcome, Setup, TracePoint, HARNESS_SEED};
use cluster::SteppingMode;
use crossbeam::deque::{Injector, Steal};
use cuttlefish::controller::{OracleDerivation, OracleTable, PidGains, TraceSample};
use cuttlefish::Config;
use serde::{Deserialize, Serialize};
use simproc::freq::{Freq, FreqDomain, MachineSpec, HASWELL_2650V3};
use std::sync::Mutex;
use std::time::Instant;
use workloads::{hclib_suite, openmp_suite, Benchmark, ProgModel, Scale, WorkloadSpec};

/// Artifact format tag embedded in every serialized [`GridResult`].
pub const SCHEMA: &str = "cuttlefish/grid-result/v1";

/// Format tag of the canonical cell-identity document
/// ([`CellSpec::store_identity`]) — also the declarative cell
/// submission form the serve daemon accepts.
pub const CELL_KEY_SCHEMA: &str = "cuttlefish/cell-key/v1";

/// One entry on a grid's setup axis: an execution [`Setup`] with its
/// Cuttlefish [`Config`], a display label unique within the grid, and
/// whether cells under it collect a `Tinv`-rate trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSetup {
    /// Axis label (`"Default"`, `"Tinv=40ms"`, `"a:CF=1.2"` ...).
    pub label: String,
    /// Execution configuration.
    pub setup: Setup,
    /// Cuttlefish parameters (ignored by `Default`/`Pinned` setups).
    pub config: Config,
    /// Collect the per-`Tinv` trace for cells under this setup
    /// (single-node cells only; cluster cells have no single timeline).
    pub trace: bool,
}

impl GridSetup {
    /// Setup with the default [`Config`] and no trace.
    pub fn new(label: impl Into<String>, setup: Setup) -> Self {
        GridSetup {
            label: label.into(),
            setup,
            config: Config::default(),
            trace: false,
        }
    }

    /// Builder: replace the config.
    pub fn with_config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Builder: collect traces.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// One entry on a grid's node-spec axis: how many nodes a cell runs
/// on, which machines they are, and whether the workload strong-scales
/// bulk-synchronously across them. This is the axis that used to need
/// hand-built "extra" cells — heterogeneous stragglers and `*-mpi`
/// shapes are now just fleet entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    /// Node count (1 = single package via the evaluation harness).
    pub nodes: usize,
    /// Per-node machine overrides (length must equal `nodes`). `None`
    /// — the normal case — runs every node on the grid's uniform
    /// machine, and the serialized cell is byte-identical to the
    /// pre-heterogeneity format (the key is omitted entirely).
    pub machines: Option<Vec<MachineSpec>>,
    /// Bulk-synchronous decomposition. `None` replicates the whole
    /// benchmark per node with one final barrier; `Some` strong-scales
    /// it in superstep rounds (the §4.6 MPI+X shape).
    pub bsp: Option<BspCell>,
}

impl Fleet {
    /// One node on the grid machine — the default fleet.
    pub fn single() -> Self {
        Fleet {
            nodes: 1,
            machines: None,
            bsp: None,
        }
    }

    /// `n` nodes on the grid machine.
    pub fn uniform(n: usize) -> Self {
        Fleet {
            nodes: n,
            machines: None,
            bsp: None,
        }
    }

    /// A heterogeneous fleet, one machine per node.
    pub fn hetero(machines: Vec<MachineSpec>) -> Self {
        Fleet {
            nodes: machines.len(),
            machines: Some(machines),
            bsp: None,
        }
    }

    /// Builder: strong-scale bulk-synchronously.
    pub fn with_bsp(mut self, supersteps: u32, comm_bytes: f64) -> Self {
        self.bsp = Some(BspCell {
            supersteps,
            comm_bytes,
        });
        self
    }
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::single()
    }
}

/// One cartesian axis-set of a grid:
/// `benchmarks × fleets × setups × reps`, enumerated in exactly that
/// nesting order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisSet {
    /// Benchmark names (resolved against the grid's suite).
    pub benchmarks: Vec<String>,
    /// Setup axis.
    pub setups: Vec<GridSetup>,
    /// Node-spec axis.
    pub fleets: Vec<Fleet>,
    /// Repetitions per cell (distinct instantiation seeds).
    pub reps: u32,
}

impl AxisSet {
    /// Axis-set over single-node cells, one repetition — the shape of
    /// most figure/table grids.
    pub fn new(benchmarks: Vec<String>, setups: Vec<GridSetup>) -> Self {
        AxisSet {
            benchmarks,
            setups,
            fleets: vec![Fleet::single()],
            reps: 1,
        }
    }

    /// Builder: replace the fleet axis.
    pub fn with_fleets(mut self, fleets: Vec<Fleet>) -> Self {
        self.fleets = fleets;
        self
    }

    /// Builder: set the repetition count.
    pub fn with_reps(mut self, reps: u32) -> Self {
        self.reps = reps;
        self
    }
}

/// A declarative scenario grid: shared name/scale/machine/model plus a
/// list of axis-sets enumerated in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Grid name (the figure/table this reproduces).
    pub name: String,
    /// Workload scale factor (1.0 = paper-length runs).
    pub scale: f64,
    /// Machine every uniform-fleet cell simulates.
    pub machine: MachineSpec,
    /// Programming model (selects the benchmark suite).
    pub model: ProgModel,
    /// Axis-sets, enumerated in order.
    pub axes: Vec<AxisSet>,
}

impl GridSpec {
    /// Grid over the paper's Haswell machine, OpenMP model, no
    /// axis-sets yet.
    pub fn new(name: impl Into<String>, scale: f64) -> Self {
        GridSpec {
            name: name.into(),
            scale,
            machine: HASWELL_2650V3.clone(),
            model: ProgModel::OpenMp,
            axes: Vec::new(),
        }
    }

    /// Append an axis-set.
    pub fn push(&mut self, axes: AxisSet) -> &mut Self {
        self.axes.push(axes);
        self
    }

    /// The benchmark suite this grid draws from.
    pub fn suite(&self) -> Vec<Benchmark> {
        match self.model {
            ProgModel::OpenMp => openmp_suite(Scale(self.scale)),
            ProgModel::HClib => hclib_suite(Scale(self.scale)),
        }
    }

    /// Every benchmark name of the suite for this grid's model, in
    /// table order — the full-suite benchmark axis.
    pub fn full_suite(&self) -> Vec<String> {
        self.suite().iter().map(|b| b.name.clone()).collect()
    }

    /// Enumerate the scenario cells in deterministic order: axis-sets
    /// in declaration order, each the cartesian product
    /// `benchmarks × fleets × setups × reps` in that nesting order.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for axes in &self.axes {
            for bench in &axes.benchmarks {
                for fleet in &axes.fleets {
                    for setup in &axes.setups {
                        for rep in 0..axes.reps.max(1) {
                            cells.push(CellSpec {
                                bench: bench.clone(),
                                model: self.model,
                                label: setup.label.clone(),
                                setup: setup.setup,
                                config: setup.config.clone(),
                                nodes: fleet.nodes,
                                rep,
                                trace: setup.trace && fleet.nodes == 1,
                                machines: fleet.machines.clone(),
                                bsp: fleet.bsp,
                                oracle: None,
                                stepping: SteppingMode::default(),
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Execute every cell across `shards` worker threads and aggregate.
    ///
    /// Cells are handed out through a shared work queue, so stragglers
    /// don't serialize behind a fixed partition; results are reassembled
    /// in enumeration order, making the aggregate — and its serialized
    /// bytes — independent of the shard count.
    pub fn run(&self, shards: usize) -> GridResult {
        self.run_timed(shards).0
    }

    /// [`run`](GridSpec::run), additionally reporting per-cell
    /// wall-clock and stepping counters. Timing lives *outside*
    /// [`GridResult`] by design: the artifact's bytes stay deterministic
    /// and shard-invariant, while the timing travels in the
    /// `.timing` sidecar / `BENCH_smoke.json` metadata the drift gate
    /// ignores.
    pub fn run_timed(&self, shards: usize) -> (GridResult, GridTiming) {
        self.run_timed_store(shards, None)
    }

    /// [`run_timed`](GridSpec::run_timed) through a content-addressed
    /// result [`Store`]. Cells are partitioned up front into *hits*
    /// (entry loaded and digest-verified — replayed without executing)
    /// and *misses* (executed on the shard pool, then committed). The
    /// aggregate is reassembled in cell-enumeration order either way,
    /// so the artifact bytes are identical for any store state and any
    /// shard count; only `GridTiming` sees the difference (hit/miss
    /// counters, near-zero hit wall-clocks, restored stepping
    /// counters).
    ///
    /// Misses are dispatched longest-processing-time-first using each
    /// cell's last recorded compute wall-clock from the store (cells
    /// never computed here go first, at estimated-max) — the classic
    /// LPT makespan heuristic, which stops a long cell stolen last
    /// from serializing the tail of a wide shard pool. With no store
    /// the queue keeps the historical enumeration-order FIFO.
    pub fn run_timed_store(
        &self,
        shards: usize,
        store: Option<&Store>,
    ) -> (GridResult, GridTiming) {
        let suite = self.suite();
        let cells = self.cells();
        // Validate the benchmark axis up front: a typo must fail the
        // whole grid, not one worker thread mid-run.
        for cell in &cells {
            assert!(
                suite.iter().any(|b| b.name == cell.bench),
                "grid `{}`: unknown benchmark `{}`",
                self.name,
                cell.bench
            );
        }

        let wall = Instant::now();

        // Hit partition: replay every verified entry, queue the rest.
        // The probe itself runs on the shard pool — loads are
        // independent reads, and on a warm run the parse + digest
        // check of large traced entries *is* the grid's wall-clock.
        struct Miss {
            idx: usize,
            key: Option<CellKey>,
            est_ms: f64,
        }
        let mut slots: Vec<Option<(CellResult, CellTiming)>> = Vec::new();
        slots.resize_with(cells.len(), || None);
        let mut hits: u64 = 0;
        let mut misses: Vec<Miss> = Vec::new();
        if let Some(store) = store {
            let probe_queue: Injector<usize> = Injector::new();
            for idx in 0..cells.len() {
                probe_queue.push(idx);
            }
            type Probe = (usize, CellKey, Option<(Box<crate::store::StoreEntry>, f64)>);
            let probed: Mutex<Vec<Probe>> = Mutex::new(Vec::with_capacity(cells.len()));
            let probe_workers = shards.clamp(1, cells.len().max(1));
            std::thread::scope(|scope| {
                for _ in 0..probe_workers {
                    scope.spawn(|| loop {
                        let idx = match probe_queue.steal() {
                            Steal::Success(idx) => idx,
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        };
                        let load_wall = Instant::now();
                        let key = store.key(&cells[idx].store_identity(&self.machine, self.scale));
                        let outcome = store.load(&key).map(|entry| {
                            (Box::new(entry), load_wall.elapsed().as_secs_f64() * 1e3)
                        });
                        probed
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push((idx, key, outcome));
                    });
                }
            });
            let mut probed = probed
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Completion order is racy; re-establish enumeration order
            // so the miss queue (and everything downstream) stays
            // shard-invariant.
            probed.sort_by_key(|p| p.0);
            for (idx, key, outcome) in probed {
                match outcome {
                    Some((entry, load_ms)) => {
                        let [stepped, idle, busy, total] = entry.quanta;
                        slots[idx] = Some((
                            entry.result,
                            CellTiming {
                                wall_ms: load_ms,
                                cached: true,
                                stepped_quanta: stepped,
                                idle_advanced_quanta: idle,
                                busy_advanced_quanta: busy,
                                total_quanta: total,
                            },
                        ));
                        hits += 1;
                    }
                    None => {
                        let est_ms = store.wall_hint(&key).unwrap_or(f64::INFINITY);
                        misses.push(Miss {
                            idx,
                            key: Some(key),
                            est_ms,
                        });
                    }
                }
            }
        } else {
            misses.extend((0..cells.len()).map(|idx| Miss {
                idx,
                key: None,
                est_ms: f64::INFINITY,
            }));
        }
        let n_misses = misses.len() as u64;

        // LPT order: descending cost estimate; the sort is stable, so
        // unknown-cost cells (and the whole storeless path, where every
        // estimate is +inf) stay in enumeration order.
        let mut order: Vec<usize> = (0..misses.len()).collect();
        order.sort_by(|&a, &b| {
            misses[b]
                .est_ms
                .partial_cmp(&misses[a].est_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let queue: Injector<usize> = Injector::new();
        for mi in order {
            queue.push(mi);
        }
        let workers = shards.clamp(1, misses.len().max(1));
        let collected: Mutex<Vec<(usize, CellResult, CellTiming)>> =
            Mutex::new(Vec::with_capacity(misses.len()));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let mi = match queue.steal() {
                        Steal::Success(mi) => mi,
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    };
                    let miss = &misses[mi];
                    let (result, timing) =
                        run_cell_timed(&self.machine, self.scale, &cells[miss.idx]);
                    if let (Some(store), Some(key)) = (store, &miss.key) {
                        // A full store is a perf bug, not a result bug:
                        // warn and keep computing.
                        if let Err(e) = store.commit(key, &result, &timing) {
                            eprintln!(
                                "warning: store commit failed for {} ({e}); continuing uncached",
                                key.hex()
                            );
                        }
                    }
                    collected
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((miss.idx, result, timing));
                });
            }
        });
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

        let computed = collected
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (idx, result, timing) in computed {
            slots[idx] = Some((result, timing));
        }
        let (cells, timings): (Vec<CellResult>, Vec<CellTiming>) = slots
            .into_iter()
            .map(|slot| slot.expect("every cell is a hit or a computed miss"))
            .unzip();
        (
            GridResult {
                grid: self.name.clone(),
                scale: self.scale,
                machine: self.machine.name.clone(),
                cells,
            },
            GridTiming {
                grid: self.name.clone(),
                wall_ms,
                cells: timings,
                cache: store.map(|_| CacheStats {
                    hits,
                    misses: n_misses,
                }),
            },
        )
    }
}

/// The paper's four §5 setups in presentation order, Default first —
/// the setup axis of the headline grids (Figures 10/11).
pub fn paper_setups() -> Vec<GridSetup> {
    use cuttlefish::Policy;
    vec![
        GridSetup::new("Default", Setup::Default),
        GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
        GridSetup::new("Cuttlefish-Core", Setup::Cuttlefish(Policy::CoreOnly)),
        GridSetup::new("Cuttlefish-Uncore", Setup::Cuttlefish(Policy::UncoreOnly)),
    ]
}

/// Fully-resolved identity of one scenario cell — everything needed to
/// re-run it, embedded verbatim in the result artifact. A cell is the
/// grid-context form of a [`Scenario`]: [`CellSpec::scenario`] expands
/// it against the grid's machine and scale, and that scenario is
/// exactly what [`run_cell`] executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Benchmark name.
    pub bench: String,
    /// Programming model.
    pub model: ProgModel,
    /// Setup-axis label this cell belongs to.
    pub label: String,
    /// Execution configuration.
    pub setup: Setup,
    /// Cuttlefish parameters.
    pub config: Config,
    /// Node count (1 = single package).
    pub nodes: usize,
    /// Repetition index.
    pub rep: u32,
    /// Whether the cell collects a trace.
    pub trace: bool,
    /// Per-node machine overrides for heterogeneous clusters (length
    /// must equal `nodes`; requires `nodes > 1`). `None` — the normal
    /// case — runs every node on the grid's uniform machine, and the
    /// serialized cell is byte-identical to the pre-heterogeneity
    /// format (the key is omitted entirely).
    pub machines: Option<Vec<MachineSpec>>,
    /// Bulk-synchronous decomposition for multi-node cells (see
    /// [`Fleet::bsp`]).
    pub bsp: Option<BspCell>,
    /// Operating-point table of a [`Setup::Oracle`] cell. `None` — the
    /// grid-declared form — derives the table deterministically from a
    /// traced Default run of the same cell when the cell expands
    /// ([`CellSpec::scenario`]); the executed result records the table
    /// it ran with, so the artifact bytes are identical whether the
    /// table was derived or supplied. Non-oracle cells keep the key
    /// omitted (their historical byte-exact encoding).
    pub oracle: Option<OracleTable>,
    /// Cluster driving mode the cell pins (see
    /// [`cluster::SteppingMode`]). Default-mode cells keep the key
    /// omitted — their historical byte-exact encoding.
    pub stepping: SteppingMode,
}

/// Parameters of a strong-scaled BSP cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BspCell {
    /// Superstep count the chunk stream is sliced into (chronological
    /// slices, so warm-up-dependent chunk costs keep their order).
    pub supersteps: u32,
    /// Bytes exchanged per node per superstep (α and bandwidth keep
    /// the `CommModel` defaults).
    pub comm_bytes: f64,
}

impl CellSpec {
    /// Instantiation seed: rep 0 reproduces the historical
    /// fixed-seed harness runs exactly.
    pub fn seed(&self) -> u64 {
        HARNESS_SEED ^ (u64::from(self.rep) << 32)
    }

    /// Expand into the [`Scenario`] this cell runs: `machine` is the
    /// grid's uniform machine (used for every node the cell doesn't
    /// override) and `scale` the grid's workload scale.
    ///
    /// For a [`Setup::Oracle`] cell without an explicit
    /// [`oracle`](CellSpec::oracle) table this *derives* one — it runs
    /// the cell's Default setup with a trace and feeds the samples to
    /// `OracleTable::from_trace` — so expanding such a cell costs one
    /// extra deterministic simulation.
    pub fn scenario(&self, machine: &MachineSpec, scale: f64) -> Scenario {
        assert!(self.nodes > 0, "cell must have at least one node");
        if let Some(machines) = &self.machines {
            assert!(
                self.nodes > 1 && machines.len() == self.nodes,
                "heterogeneous cells need one machine per node of a multi-node cell"
            );
        }
        let policy = match self.setup {
            Setup::Oracle => cuttlefish::NodePolicy::Oracle(match &self.oracle {
                Some(table) => table.clone(),
                None => self.derive_oracle_table(machine, scale),
            }),
            other => other.node_policy(self.config.clone()),
        };
        let node_machines: Vec<MachineSpec> = match &self.machines {
            Some(machines) => machines.clone(),
            None => vec![machine.clone(); self.nodes],
        };
        let topology = if self.nodes == 1 {
            crate::scenario::Topology::SingleNode
        } else if let Some(bsp) = &self.bsp {
            crate::scenario::Topology::bsp(bsp.supersteps, bsp.comm_bytes)
        } else {
            crate::scenario::Topology::Replicated
        };
        Scenario {
            label: self.label.clone(),
            workload: WorkloadSpec::Bench {
                name: self.bench.clone(),
                model: self.model,
                scale,
            },
            nodes: node_machines
                .into_iter()
                .map(|m| (m, policy.clone()))
                .collect(),
            topology,
            seed: self.seed(),
            duration_s: None,
            trace: self.trace,
            stepping: self.stepping,
        }
    }

    /// Canonical identity bytes of this cell in its grid context —
    /// what the content-addressed store hashes (see [`Store::key`]).
    ///
    /// This is the grid embedding of the cell's canonical scenario
    /// JSON: machine + scale + the cell spec, serialized through the
    /// same deterministic codec as the artifact. Hashing the *cell*
    /// rather than the expanded [`Scenario`] matters twice over: a
    /// derived-oracle cell (`oracle: None`) keys on its declaration,
    /// so a warm hit skips the expensive trace-probe expansion
    /// entirely (the derivation is deterministic, hence covered by the
    /// code-version half of the key); and fields a particular setup
    /// ignores at expansion time (e.g. `config` under `Default`) still
    /// separate keys, so the replayed `spec` bytes embedded in the
    /// artifact always match what a fresh run would embed.
    pub fn store_identity(&self, machine: &MachineSpec, scale: f64) -> Vec<u8> {
        obj(vec![
            ("schema", Json::Str(CELL_KEY_SCHEMA.into())),
            ("machine", machine.to_json()),
            ("scale", Json::Num(scale)),
            ("cell", self.to_json()),
        ])
        .to_pretty()
        .into_bytes()
    }

    /// Derive this cell's oracle table the way the paper builds its
    /// oracle: run the identical workload under the Default setup with
    /// a trace, then identify the frequent phases and their settling
    /// points from the samples (`OracleTable::from_trace`). Fully
    /// deterministic — same cell, same table, every time — which is
    /// what lets a derived-oracle grid cell and a scenario file
    /// carrying the table inline produce identical artifact bytes.
    ///
    /// # Panics
    /// Panics for multi-node cells (traces are single-node; give
    /// cluster oracle cells an explicit table) and when the trace
    /// yields no usable table.
    fn derive_oracle_table(&self, machine: &MachineSpec, scale: f64) -> OracleTable {
        assert_eq!(
            self.nodes, 1,
            "oracle tables are derived from single-node Default traces; \
             multi-node oracle cells need an explicit table"
        );
        let workload = WorkloadSpec::Bench {
            name: self.bench.clone(),
            model: self.model,
            scale,
        };
        let probe = Scenario {
            label: format!("{}-oracle-derive", self.label),
            workload: workload.clone(),
            nodes: vec![(machine.clone(), cuttlefish::NodePolicy::Default)],
            topology: crate::scenario::Topology::SingleNode,
            seed: self.seed(),
            duration_s: None,
            trace: true,
            stepping: SteppingMode::default(),
        };
        let mut points = Vec::new();
        probe.run_traced(Some(&mut points));
        let samples: Vec<TraceSample> = points
            .iter()
            .map(|p| TraceSample {
                tipi: p.tipi,
                jpi: p.jpi,
                watts: p.watts,
                cf: Freq((p.cf_ghz * 10.0).round() as u32),
                uf: Freq((p.uf_ghz * 10.0).round() as u32),
            })
            .collect();
        let params = OracleDerivation {
            tipi_range: workload.paper_tipi_range(),
            ..OracleDerivation::default()
        };
        // The probe's models are the run's models: both come from
        // `SimProcessor::new(machine)`.
        let model_source = simproc::SimProcessor::new(machine.clone());
        OracleTable::from_trace(
            &samples,
            machine,
            model_source.perf_model(),
            model_source.power_model(),
            &params,
        )
        .unwrap_or_else(|e| {
            panic!(
                "cell {}/{} cannot derive an oracle table: {e}",
                self.bench, self.label
            )
        })
    }
}

/// Derive the artifact cell identity of a free-standing [`Scenario`]
/// (the `--scenario` CLI path). The mapping back onto the cell format
/// is total for everything the grid axes produce; scenarios using
/// features the cell format cannot express (per-node policies,
/// non-harness seeds, BSP weights, synthetic workloads) are reported
/// as errors.
pub fn scenario_cell(scenario: &Scenario) -> Result<CellSpec, String> {
    let Some(rep) = scenario.rep() else {
        return Err(
            "scenario seed is not a harness repetition seed (HARNESS_SEED ^ rep<<32); \
             it cannot be embedded in a grid artifact"
                .into(),
        );
    };
    let WorkloadSpec::Bench { name, model, .. } = &scenario.workload else {
        return Err("synthetic workloads cannot be embedded in a grid artifact".into());
    };
    let (machine0, policy0) = &scenario.nodes[0];
    if scenario.nodes.iter().any(|(_, p)| p != policy0) {
        return Err("per-node policies cannot be embedded in a grid artifact".into());
    }
    let mut oracle = None;
    let (setup, config) = match policy0 {
        cuttlefish::NodePolicy::Default => (Setup::Default, Config::default()),
        cuttlefish::NodePolicy::Cuttlefish(cfg) => (Setup::Cuttlefish(cfg.policy), cfg.clone()),
        cuttlefish::NodePolicy::Pinned { cf, uf } => (Setup::Pinned(*cf, *uf), Config::default()),
        cuttlefish::NodePolicy::Ondemand => (Setup::Ondemand, Config::default()),
        cuttlefish::NodePolicy::Oracle(table) => {
            oracle = Some(table.clone());
            (Setup::Oracle, Config::default())
        }
        cuttlefish::NodePolicy::PidUncore { config, gains } => {
            (Setup::PidUncore(*gains), config.clone())
        }
    };
    let machines = if scenario.nodes.len() > 1 && scenario.nodes.iter().any(|(m, _)| m != machine0)
    {
        Some(scenario.nodes.iter().map(|(m, _)| m.clone()).collect())
    } else {
        None
    };
    let bsp = match &scenario.topology {
        crate::scenario::Topology::Bsp {
            supersteps,
            comm_bytes,
            weights,
        } => {
            if !weights.is_empty() {
                return Err("BSP weights cannot be embedded in a grid artifact".into());
            }
            Some(BspCell {
                supersteps: *supersteps,
                comm_bytes: *comm_bytes,
            })
        }
        _ => None,
    };
    Ok(CellSpec {
        bench: name.clone(),
        model: *model,
        label: scenario.label.clone(),
        setup,
        config,
        nodes: scenario.nodes.len(),
        rep,
        trace: scenario.trace,
        machines,
        bsp,
        oracle,
        stepping: scenario.stepping,
    })
}

/// Run a free-standing scenario into a one-cell [`GridResult`] — the
/// `--scenario` CLI path. The cell executes through exactly the code
/// the grid runner uses — including the result store when one is
/// given (a scenario identical to a previously-run grid cell is a
/// hit) — so a scenario file describing a grid cell reproduces that
/// cell's artifact bytes bit for bit.
pub fn run_scenario_timed(
    scenario: &Scenario,
    store: Option<&Store>,
) -> Result<(GridResult, GridTiming), String> {
    scenario.validate()?;
    let cell = scenario_cell(scenario)?;
    let machine = scenario.nodes[0].0.clone();
    let scale = scenario.workload.scale();
    let wall = Instant::now();
    let key = store.map(|s| s.key(&cell.store_identity(&machine, scale)));
    let (result, timing, hit) = match store.zip(key).and_then(|(store, key)| store.load(&key)) {
        Some(entry) => {
            let [stepped, idle, busy, total] = entry.quanta;
            let timing = CellTiming {
                wall_ms: wall.elapsed().as_secs_f64() * 1e3,
                cached: true,
                stepped_quanta: stepped,
                idle_advanced_quanta: idle,
                busy_advanced_quanta: busy,
                total_quanta: total,
            };
            (entry.result, timing, true)
        }
        None => {
            let (result, timing) = run_cell_timed(&machine, scale, &cell);
            if let (Some(store), Some(key)) = (store, &key) {
                if let Err(e) = store.commit(key, &result, &timing) {
                    eprintln!(
                        "warning: store commit failed for {} ({e}); continuing uncached",
                        key.hex()
                    );
                }
            }
            (result, timing, false)
        }
    };
    Ok((
        GridResult {
            grid: format!("scenario:{}", scenario.label),
            scale,
            machine: machine.name,
            cells: vec![result],
        },
        GridTiming {
            grid: format!("scenario:{}", scenario.label),
            wall_ms: timing.wall_ms,
            cells: vec![timing],
            cache: store.map(|_| CacheStats {
                hits: u64::from(hit),
                misses: u64::from(!hit),
            }),
        },
    ))
}

/// One TIPI-range line of a cell's controller report (Table 2 shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportEntry {
    /// Slab index.
    pub slab: u32,
    /// Paper-style range label.
    pub label: String,
    /// Resolved core optimum, deci-GHz.
    pub cf: Option<u32>,
    /// Resolved uncore optimum, deci-GHz.
    pub uf: Option<u32>,
    /// `Tinv` samples attributed to the range.
    pub occurrences: u64,
    /// Share of all samples.
    pub share: f64,
}

impl ReportEntry {
    /// The paper's "frequently occurring" threshold.
    pub fn is_frequent(&self) -> bool {
        self.share > 0.10
    }

    /// Core optimum in GHz.
    pub fn cf_ghz(&self) -> Option<f64> {
        self.cf.map(|f| f as f64 / 10.0)
    }

    /// Uncore optimum in GHz.
    pub fn uf_ghz(&self) -> Option<f64> {
        self.uf.map(|f| f as f64 / 10.0)
    }
}

/// Residency at one operating point, summed over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidencyEntry {
    /// Core frequency, deci-GHz.
    pub cf: u32,
    /// Uncore frequency, deci-GHz.
    pub uf: u32,
    /// Nanoseconds spent at this point.
    pub ns: u64,
}

/// Measurements from one executed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell that produced this.
    pub spec: CellSpec,
    /// Virtual wall time, seconds (slowest node for clusters).
    pub seconds: f64,
    /// Package energy, joules (summed over nodes).
    pub joules: f64,
    /// Instructions retired (summed over nodes).
    pub instructions: f64,
    /// Fraction of reported ranges with a resolved core optimum
    /// (averaged over nodes).
    pub resolved_cf: f64,
    /// Fraction with a resolved uncore optimum.
    pub resolved_uf: f64,
    /// Node 0's controller report.
    pub report: Vec<ReportEntry>,
    /// Operating-point residency in ascending `(cf, uf)` order.
    pub residency: Vec<ResidencyEntry>,
    /// Per-node energies (length = `spec.nodes`).
    pub node_joules: Vec<f64>,
    /// Barrier wait charged across nodes (0 for single-node cells).
    pub barrier_wait_s: f64,
    /// `Tinv`-rate trace (empty unless `spec.trace`).
    pub trace: Vec<TracePoint>,
}

impl CellResult {
    /// Energy-delay product, J·s.
    pub fn edp(&self) -> f64 {
        self.joules * self.seconds
    }

    /// Joules per instruction.
    pub fn jpi(&self) -> f64 {
        self.joules / self.instructions.max(1.0)
    }
}

/// Wall-clock and stepping counters for one executed cell. Kept apart
/// from [`CellResult`]: timing is machine- and run-dependent, so it
/// must never enter the deterministic artifact bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Host wall-clock the cell took, milliseconds. For a store hit
    /// this is the load-and-verify time, not the compute time.
    pub wall_ms: f64,
    /// Whether the cell was replayed from the result store. The quanta
    /// counters below are deterministic virtual quantities, so a hit
    /// restores the committing run's values verbatim — only this flag
    /// and the wall-clock betray that nothing executed.
    pub cached: bool,
    /// Quanta the engine executed one step at a time (all nodes).
    pub stepped_quanta: u64,
    /// Quanta fast-forwarded analytically while parked (all nodes).
    pub idle_advanced_quanta: u64,
    /// Quanta fast-forwarded analytically while executing (all nodes).
    pub busy_advanced_quanta: u64,
    /// Total virtual quanta elapsed (all nodes); always
    /// `stepped + idle_advanced + busy_advanced`.
    pub total_quanta: u64,
}

impl CellTiming {
    /// Stepping-work reduction factor (≥ 1; 1 = nothing skipped).
    pub fn fast_forward_factor(&self) -> f64 {
        fast_forward_factor(self.stepped_quanta, self.total_quanta)
    }
}

/// `total / stepped`, guarded against an all-skipped run — the one
/// definition of the stepping-reduction ratio every consumer shares.
fn fast_forward_factor(stepped: u64, total: u64) -> f64 {
    total as f64 / stepped.max(1) as f64
}

/// Result-store traffic of one grid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells replayed from the store.
    pub hits: u64,
    /// Cells executed (and committed).
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; an empty grid counts as all-hit.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-cell timings of one grid run, in cell-enumeration order.
#[derive(Debug, Clone, PartialEq)]
pub struct GridTiming {
    /// The grid's name.
    pub grid: String,
    /// End-to-end wall-clock of the grid run, milliseconds.
    pub wall_ms: f64,
    /// Per-cell timings.
    pub cells: Vec<CellTiming>,
    /// Store traffic; `None` when the run bypassed the store.
    pub cache: Option<CacheStats>,
}

impl GridTiming {
    /// Quanta stepped individually, summed over cells.
    pub fn stepped_quanta(&self) -> u64 {
        self.cells.iter().map(|c| c.stepped_quanta).sum()
    }

    /// Quanta fast-forwarded while parked, summed over cells.
    pub fn idle_advanced_quanta(&self) -> u64 {
        self.cells.iter().map(|c| c.idle_advanced_quanta).sum()
    }

    /// Quanta fast-forwarded while executing, summed over cells.
    pub fn busy_advanced_quanta(&self) -> u64 {
        self.cells.iter().map(|c| c.busy_advanced_quanta).sum()
    }

    /// Total virtual quanta, summed over cells.
    pub fn total_quanta(&self) -> u64 {
        self.cells.iter().map(|c| c.total_quanta).sum()
    }

    /// Stepping-work reduction factor over the whole grid run.
    pub fn fast_forward_factor(&self) -> f64 {
        fast_forward_factor(self.stepped_quanta(), self.total_quanta())
    }

    /// One-line before/after stepping summary: under the pure quantum
    /// loop every virtual quantum was an engine step; now only
    /// `stepped` of them are.
    pub fn stepping_summary(&self) -> String {
        let stepped = self.stepped_quanta();
        let total = self.total_quanta();
        let mut line = format!(
            "{}: stepped {stepped} of {total} quanta (idle-adv {}, busy-adv {}; \
             {:.2}x fast-forward), {:.1} ms wall, {:.2} Mquanta/s",
            self.grid,
            self.idle_advanced_quanta(),
            self.busy_advanced_quanta(),
            self.fast_forward_factor(),
            self.wall_ms,
            total as f64 / 1e3 / self.wall_ms.max(1e-9),
        );
        if let Some(cache) = &self.cache {
            line.push_str(&format!(
                "; store {} hit / {} miss ({:.0}% hits)",
                cache.hits,
                cache.misses,
                cache.hit_rate() * 100.0
            ));
        }
        line
    }
}

/// A de-rated straggler node for heterogeneous smoke cells: a quarter
/// of the paper machine's cores with tighter frequency ceilings —
/// the "one slow node" hardware of the §4.6 imbalance discussion.
pub fn straggler_spec() -> MachineSpec {
    MachineSpec {
        name: "de-rated straggler (5 cores, 1.2-1.6/1.2-2.2 GHz)".to_string(),
        n_cores: 5,
        core: FreqDomain::new(Freq(12), Freq(16)),
        uncore: FreqDomain::new(Freq(12), Freq(22)),
        quantum_ns: HASWELL_2650V3.quantum_ns,
    }
}

fn report_entries(report: &[cuttlefish::daemon::NodeReport]) -> Vec<ReportEntry> {
    report
        .iter()
        .map(|r| ReportEntry {
            slab: r.slab.0,
            label: r.label.clone(),
            cf: r.cf_opt.map(|f| f.0),
            uf: r.uf_opt.map(|f| f.0),
            occurrences: r.occurrences,
            share: r.share,
        })
        .collect()
}

/// Execute one cell through its scenario. Public so overhead
/// microbenchmarks and external drivers can measure exactly what the
/// grid runner runs per cell.
pub fn run_cell(machine: &MachineSpec, scale: f64, cell: &CellSpec) -> CellResult {
    run_cell_timed(machine, scale, cell).0
}

/// [`run_cell`] plus its wall-clock and stepping counters.
pub fn run_cell_timed(
    machine: &MachineSpec,
    scale: f64,
    cell: &CellSpec,
) -> (CellResult, CellTiming) {
    let wall = Instant::now();
    let (result, quanta) = run_cell_inner(machine, scale, cell);
    let [stepped_quanta, idle_advanced_quanta, busy_advanced_quanta, total_quanta] = quanta;
    (
        result,
        CellTiming {
            wall_ms: wall.elapsed().as_secs_f64() * 1e3,
            cached: false,
            stepped_quanta,
            idle_advanced_quanta,
            busy_advanced_quanta,
            total_quanta,
        },
    )
}

/// The second element is `[stepped, idle_advanced, busy_advanced,
/// total]` quanta.
fn run_cell_inner(machine: &MachineSpec, scale: f64, cell: &CellSpec) -> (CellResult, [u64; 4]) {
    let scenario = cell.scenario(machine, scale);
    // The result records the cell *as executed*: an oracle cell that
    // derived its table carries the derived table, so the artifact
    // bytes match a scenario file shipping the same table inline.
    let cell = &{
        let mut executed = cell.clone();
        if let cuttlefish::NodePolicy::Oracle(table) = &scenario.nodes[0].1 {
            executed.oracle = Some(table.clone());
        }
        executed
    };
    let mut trace = Vec::new();
    let outcome = scenario.run_traced(cell.trace.then_some(&mut trace));
    match outcome {
        ScenarioOutcome::Single(outcome) => {
            let cell_result = single_cell_result(cell, &outcome, trace);
            (
                cell_result,
                [
                    outcome.stepped_quanta,
                    outcome.idle_advanced_quanta,
                    outcome.busy_advanced_quanta,
                    outcome.total_quanta,
                ],
            )
        }
        ScenarioOutcome::Cluster(cluster) => {
            let outcome = &cluster.outcome;
            let fractions = &cluster.resolved;
            let n_nodes = fractions.len() as f64;
            let cell_result = CellResult {
                spec: cell.clone(),
                seconds: outcome.seconds,
                joules: outcome.joules,
                instructions: outcome.instructions,
                resolved_cf: fractions.iter().map(|f| f.0).sum::<f64>() / n_nodes,
                resolved_uf: fractions.iter().map(|f| f.1).sum::<f64>() / n_nodes,
                report: report_entries(&cluster.reports[0]),
                residency: cluster
                    .residency
                    .iter()
                    .map(|(&(cf, uf), &ns)| ResidencyEntry { cf, uf, ns })
                    .collect(),
                node_joules: outcome.node_joules.clone(),
                barrier_wait_s: outcome.barrier_wait_s,
                trace: Vec::new(),
            };
            (
                cell_result,
                [
                    outcome.stepped_quanta,
                    outcome.idle_advanced_quanta,
                    outcome.busy_advanced_quanta,
                    outcome.total_quanta,
                ],
            )
        }
    }
}

fn single_cell_result(cell: &CellSpec, outcome: &RunOutcome, trace: Vec<TracePoint>) -> CellResult {
    CellResult {
        spec: cell.clone(),
        seconds: outcome.seconds,
        joules: outcome.joules,
        instructions: outcome.instructions,
        resolved_cf: outcome.resolved.0,
        resolved_uf: outcome.resolved.1,
        report: report_entries(&outcome.report),
        residency: outcome
            .residency
            .iter()
            .map(|&((cf, uf), ns)| ResidencyEntry { cf, uf, ns })
            .collect(),
        node_joules: vec![outcome.joules],
        barrier_wait_s: 0.0,
        trace,
    }
}

/// Aggregated outcome of a grid run, in cell-enumeration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridResult {
    /// The grid's name.
    pub grid: String,
    /// Scale the grid ran at.
    pub scale: f64,
    /// Machine name.
    pub machine: String,
    /// Per-cell measurements.
    pub cells: Vec<CellResult>,
}

impl GridResult {
    /// Benchmark names in first-appearance order.
    pub fn benches(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !names.contains(&cell.spec.bench.as_str()) {
                names.push(&cell.spec.bench);
            }
        }
        names
    }

    /// First cell matching `(bench, setup label)`.
    pub fn cell(&self, bench: &str, label: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.spec.bench == bench && c.spec.label == label)
    }

    /// All cells of one benchmark, in enumeration order.
    pub fn cells_for<'a>(&'a self, bench: &'a str) -> impl Iterator<Item = &'a CellResult> + 'a {
        self.cells.iter().filter(move |c| c.spec.bench == bench)
    }

    /// Serialize to the deterministic JSON artifact format.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parse an artifact produced by [`GridResult::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<GridResult, JsonError> {
        GridResult::from_json(&Json::parse(text)?)
    }
}

/// One benchmark × setup row of a baseline-relative comparison — the
/// shape of the Figure 10/11 panels and the Table 3 / ablation
/// geomeans.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// Benchmark name.
    pub bench: String,
    /// Setup-axis label of the compared cell.
    pub label: String,
    /// Energy saving vs the baseline, percent (positive = better).
    pub energy_saving_pct: f64,
    /// Execution-time degradation vs the baseline, percent.
    pub time_degradation_pct: f64,
    /// EDP saving vs the baseline, percent.
    pub edp_saving_pct: f64,
    /// Baseline virtual seconds.
    pub base_seconds: f64,
    /// Compared cell's virtual seconds.
    pub seconds: f64,
    /// Baseline joules.
    pub base_joules: f64,
    /// Compared cell's joules.
    pub joules: f64,
}

/// Compare every non-baseline cell against its benchmark's `baseline`
/// cell, in enumeration order. One definition of the
/// savings/slowdown/EDP arithmetic, shared by every bin that reports
/// relative numbers — the paper's figures must not drift apart.
///
/// Only cells sharing the baseline's cluster shape (same node count,
/// machines, and BSP decomposition) are compared — a 2-node cell's
/// total joules against a single-node baseline is not a saving.
/// Benchmarks without a `baseline` cell (cluster-shape cells outside
/// the panel comparison) are skipped entirely.
///
/// # Panics
/// Panics when nothing was comparable even though non-baseline cells
/// exist — the signature of a misspelled baseline label.
pub fn compare_to_baseline(result: &GridResult, baseline: &str) -> Vec<BaselineComparison> {
    let mut out = Vec::new();
    for bench in result.benches() {
        let Some(base) = result.cell(bench, baseline) else {
            continue;
        };
        let comparable = |c: &&CellResult| {
            c.spec.label != baseline
                && c.spec.nodes == base.spec.nodes
                && c.spec.machines == base.spec.machines
                && c.spec.bsp == base.spec.bsp
        };
        for o in result.cells_for(bench).filter(comparable) {
            out.push(BaselineComparison {
                bench: o.spec.bench.clone(),
                label: o.spec.label.clone(),
                energy_saving_pct: crate::saving_pct(base.joules, o.joules),
                time_degradation_pct: (o.seconds / base.seconds - 1.0) * 100.0,
                edp_saving_pct: crate::saving_pct(base.edp(), o.edp()),
                base_seconds: base.seconds,
                seconds: o.seconds,
                base_joules: base.joules,
                joules: o.joules,
            });
        }
    }
    assert!(
        !out.is_empty() || result.cells.iter().all(|c| c.spec.label == baseline),
        "grid `{}`: no cell shares a benchmark and cluster shape with a \
         `{baseline}` baseline — misspelled baseline label?",
        result.grid
    );
    out
}

/// Per-setup geomeans over a comparison set: `(label, energy saving %,
/// slowdown %, EDP saving %)` in label order. Slowdowns are
/// geomean-composed as negative savings, matching the paper's
/// reporting.
pub fn geomean_by_setup(comparisons: &[BaselineComparison]) -> Vec<(String, f64, f64, f64)> {
    let mut by: std::collections::BTreeMap<&str, Vec<&BaselineComparison>> = Default::default();
    for c in comparisons {
        by.entry(&c.label).or_default().push(c);
    }
    by.into_iter()
        .map(|(label, group)| {
            let e: Vec<f64> = group.iter().map(|c| c.energy_saving_pct).collect();
            let s: Vec<f64> = group.iter().map(|c| -c.time_degradation_pct).collect();
            let d: Vec<f64> = group.iter().map(|c| c.edp_saving_pct).collect();
            (
                label.to_string(),
                crate::geomean_saving(&e),
                -crate::geomean_saving(&s),
                crate::geomean_saving(&d),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// JSON encoding of the artifact types (hand-rolled against
// `bench::json`; the serde derives above are offline-shim markers —
// see `shims/README.md`). The primitive codecs (machines, policies,
// configs, setups) live in `bench::scenario` and are shared.
// ---------------------------------------------------------------------

impl ToJson for CellSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("bench", Json::Str(self.bench.clone())),
            ("model", self.model.to_json()),
            ("label", Json::Str(self.label.clone())),
            ("setup", self.setup.to_json()),
            ("config", self.config.to_json()),
            ("nodes", Json::Num(self.nodes as f64)),
            ("rep", Json::Num(f64::from(self.rep))),
            ("trace", Json::Bool(self.trace)),
        ];
        // Only heterogeneous / BSP / oracle cells carry these keys:
        // plain cells keep their historical byte-exact encoding.
        if let Some(machines) = &self.machines {
            fields.push(("machines", arr(machines)));
        }
        if let Some(bsp) = &self.bsp {
            fields.push(("bsp", bsp.to_json()));
        }
        if let Some(oracle) = &self.oracle {
            fields.push(("oracle", oracle.to_json()));
        }
        if self.stepping != SteppingMode::default() {
            fields.push(("stepping", Json::Str(self.stepping.as_str().into())));
        }
        obj(fields)
    }
}

impl FromJson for CellSpec {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CellSpec {
            bench: j.field("bench")?.as_str()?.to_string(),
            model: ProgModel::from_json(j.field("model")?)?,
            label: j.field("label")?.as_str()?.to_string(),
            setup: Setup::from_json(j.field("setup")?)?,
            config: Config::from_json(j.field("config")?)?,
            nodes: j.field("nodes")?.as_u64()? as usize,
            rep: j.field("rep")?.as_u64()? as u32,
            trace: j.field("trace")?.as_bool()?,
            machines: match j.get("machines") {
                Some(m) => Some(from_arr(m)?),
                None => None,
            },
            bsp: match j.get("bsp") {
                Some(b) => Some(BspCell::from_json(b)?),
                None => None,
            },
            oracle: match j.get("oracle") {
                Some(o) => Some(OracleTable::from_json(o)?),
                None => None,
            },
            stepping: match j.get("stepping") {
                Some(s) => SteppingMode::parse(s.as_str()?).map_err(JsonError)?,
                None => SteppingMode::default(),
            },
        })
    }
}

impl ToJson for Setup {
    fn to_json(&self) -> Json {
        match self {
            Setup::Default => obj(vec![("kind", Json::Str("default".into()))]),
            Setup::Cuttlefish(policy) => obj(vec![
                ("kind", Json::Str("cuttlefish".into())),
                ("policy", policy.to_json()),
            ]),
            Setup::Pinned(cf, uf) => obj(vec![
                ("kind", Json::Str("pinned".into())),
                ("cf", Json::Num(f64::from(cf.0))),
                ("uf", Json::Num(f64::from(uf.0))),
            ]),
            Setup::Ondemand => obj(vec![("kind", Json::Str("ondemand".into()))]),
            Setup::Oracle => obj(vec![("kind", Json::Str("oracle".into()))]),
            Setup::PidUncore(gains) => obj(vec![
                ("kind", Json::Str("pid-uncore".into())),
                ("gains", gains.to_json()),
            ]),
        }
    }
}

impl FromJson for Setup {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.field("kind")?.as_str()? {
            "default" => Ok(Setup::Default),
            "cuttlefish" => Ok(Setup::Cuttlefish(cuttlefish::Policy::from_json(
                j.field("policy")?,
            )?)),
            "pinned" => Ok(Setup::Pinned(
                Freq(j.field("cf")?.as_u64()? as u32),
                Freq(j.field("uf")?.as_u64()? as u32),
            )),
            "ondemand" => Ok(Setup::Ondemand),
            "oracle" => Ok(Setup::Oracle),
            "pid-uncore" => Ok(Setup::PidUncore(PidGains::from_json(j.field("gains")?)?)),
            other => Err(JsonError(format!("unknown setup kind `{other}`"))),
        }
    }
}

impl ToJson for BspCell {
    fn to_json(&self) -> Json {
        obj(vec![
            ("supersteps", Json::Num(f64::from(self.supersteps))),
            ("comm_bytes", Json::Num(self.comm_bytes)),
        ])
    }
}

impl FromJson for BspCell {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(BspCell {
            supersteps: j.field("supersteps")?.as_u64()? as u32,
            comm_bytes: j.field("comm_bytes")?.as_f64()?,
        })
    }
}

impl ToJson for ReportEntry {
    fn to_json(&self) -> Json {
        obj(vec![
            ("slab", Json::Num(f64::from(self.slab))),
            ("label", Json::Str(self.label.clone())),
            ("cf", opt_u32(self.cf)),
            ("uf", opt_u32(self.uf)),
            ("occurrences", Json::Num(self.occurrences as f64)),
            ("share", Json::Num(self.share)),
        ])
    }
}

impl FromJson for ReportEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ReportEntry {
            slab: j.field("slab")?.as_u64()? as u32,
            label: j.field("label")?.as_str()?.to_string(),
            cf: from_opt_u32(j.field("cf")?)?,
            uf: from_opt_u32(j.field("uf")?)?,
            occurrences: j.field("occurrences")?.as_u64()?,
            share: j.field("share")?.as_f64()?,
        })
    }
}

impl ToJson for ResidencyEntry {
    fn to_json(&self) -> Json {
        obj(vec![
            ("cf", Json::Num(f64::from(self.cf))),
            ("uf", Json::Num(f64::from(self.uf))),
            ("ns", Json::Num(self.ns as f64)),
        ])
    }
}

impl FromJson for ResidencyEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ResidencyEntry {
            cf: j.field("cf")?.as_u64()? as u32,
            uf: j.field("uf")?.as_u64()? as u32,
            ns: j.field("ns")?.as_u64()?,
        })
    }
}

impl ToJson for TracePoint {
    fn to_json(&self) -> Json {
        obj(vec![
            ("t_s", Json::Num(self.t_s)),
            ("tipi", Json::Num(self.tipi)),
            ("jpi", Json::Num(self.jpi)),
            ("cf_ghz", Json::Num(self.cf_ghz)),
            ("uf_ghz", Json::Num(self.uf_ghz)),
            ("watts", Json::Num(self.watts)),
        ])
    }
}

impl FromJson for TracePoint {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(TracePoint {
            t_s: j.field("t_s")?.as_f64()?,
            tipi: j.field("tipi")?.as_f64()?,
            jpi: j.field("jpi")?.as_f64()?,
            cf_ghz: j.field("cf_ghz")?.as_f64()?,
            uf_ghz: j.field("uf_ghz")?.as_f64()?,
            watts: j.field("watts")?.as_f64()?,
        })
    }
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        obj(vec![
            ("spec", self.spec.to_json()),
            ("seconds", Json::Num(self.seconds)),
            ("joules", Json::Num(self.joules)),
            ("instructions", Json::Num(self.instructions)),
            ("resolved_cf", Json::Num(self.resolved_cf)),
            ("resolved_uf", Json::Num(self.resolved_uf)),
            ("report", arr(&self.report)),
            ("residency", arr(&self.residency)),
            (
                "node_joules",
                Json::Arr(self.node_joules.iter().map(|&v| Json::Num(v)).collect()),
            ),
            ("barrier_wait_s", Json::Num(self.barrier_wait_s)),
            ("trace", arr(&self.trace)),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CellResult {
            spec: CellSpec::from_json(j.field("spec")?)?,
            seconds: j.field("seconds")?.as_f64()?,
            joules: j.field("joules")?.as_f64()?,
            instructions: j.field("instructions")?.as_f64()?,
            resolved_cf: j.field("resolved_cf")?.as_f64()?,
            resolved_uf: j.field("resolved_uf")?.as_f64()?,
            report: from_arr(j.field("report")?)?,
            residency: from_arr(j.field("residency")?)?,
            node_joules: j
                .field("node_joules")?
                .as_arr()?
                .iter()
                .map(Json::as_f64)
                .collect::<Result<_, _>>()?,
            barrier_wait_s: j.field("barrier_wait_s")?.as_f64()?,
            trace: from_arr(j.field("trace")?)?,
        })
    }
}

impl ToJson for GridResult {
    fn to_json(&self) -> Json {
        obj(vec![
            ("schema", Json::Str(SCHEMA.into())),
            ("grid", Json::Str(self.grid.clone())),
            ("scale", Json::Num(self.scale)),
            ("machine", Json::Str(self.machine.clone())),
            ("cells", arr(&self.cells)),
        ])
    }
}

impl ToJson for CellTiming {
    fn to_json(&self) -> Json {
        obj(vec![
            ("wall_ms", Json::Num(self.wall_ms)),
            ("cached", Json::Bool(self.cached)),
            ("stepped_quanta", Json::Num(self.stepped_quanta as f64)),
            (
                "idle_advanced_quanta",
                Json::Num(self.idle_advanced_quanta as f64),
            ),
            (
                "busy_advanced_quanta",
                Json::Num(self.busy_advanced_quanta as f64),
            ),
            ("total_quanta", Json::Num(self.total_quanta as f64)),
        ])
    }
}

impl FromJson for CellTiming {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CellTiming {
            wall_ms: j.field("wall_ms")?.as_f64()?,
            cached: j.field("cached")?.as_bool()?,
            stepped_quanta: j.field("stepped_quanta")?.as_f64()? as u64,
            idle_advanced_quanta: j.field("idle_advanced_quanta")?.as_f64()? as u64,
            busy_advanced_quanta: j.field("busy_advanced_quanta")?.as_f64()? as u64,
            total_quanta: j.field("total_quanta")?.as_f64()? as u64,
        })
    }
}

/// Sidecar format tag for `.timing` files. v2 split the single
/// fast-forward counter into `idle_advanced_quanta` and
/// `busy_advanced_quanta` so the two mechanisms are attributable; v3
/// adds the result-store view — a per-cell `cached` flag and an
/// optional grid-level `cache` section (hits/misses/hit-rate).
pub const TIMING_SCHEMA: &str = "cuttlefish/grid-timing/v3";

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("hits", Json::Num(self.hits as f64)),
            ("misses", Json::Num(self.misses as f64)),
            ("hit_rate", Json::Num(self.hit_rate())),
        ])
    }
}

impl FromJson for CacheStats {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CacheStats {
            hits: j.field("hits")?.as_u64()?,
            misses: j.field("misses")?.as_u64()?,
        })
    }
}

impl ToJson for GridTiming {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::Str(TIMING_SCHEMA.into())),
            ("grid", Json::Str(self.grid.clone())),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("stepped_quanta", Json::Num(self.stepped_quanta() as f64)),
            (
                "idle_advanced_quanta",
                Json::Num(self.idle_advanced_quanta() as f64),
            ),
            (
                "busy_advanced_quanta",
                Json::Num(self.busy_advanced_quanta() as f64),
            ),
            ("total_quanta", Json::Num(self.total_quanta() as f64)),
            ("fast_forward", Json::Num(self.fast_forward_factor())),
        ];
        // Storeless runs keep the key omitted: "no store" and "0% hit
        // rate" are different facts.
        if let Some(cache) = &self.cache {
            fields.push(("cache", cache.to_json()));
        }
        fields.push(("cells", arr(&self.cells)));
        obj(fields)
    }
}

impl FromJson for GridTiming {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let schema = j.field("schema")?.as_str()?;
        if schema != TIMING_SCHEMA {
            return Err(JsonError(format!(
                "unsupported timing schema `{schema}` (expected `{TIMING_SCHEMA}`)"
            )));
        }
        Ok(GridTiming {
            grid: j.field("grid")?.as_str()?.to_string(),
            wall_ms: j.field("wall_ms")?.as_f64()?,
            cells: from_arr(j.field("cells")?)?,
            cache: match j.get("cache") {
                Some(c) => Some(CacheStats::from_json(c)?),
                None => None,
            },
        })
    }
}

impl FromJson for GridResult {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let schema = j.field("schema")?.as_str()?;
        if schema != SCHEMA {
            return Err(JsonError(format!(
                "unsupported artifact schema `{schema}` (expected `{SCHEMA}`)"
            )));
        }
        Ok(GridResult {
            grid: j.field("grid")?.as_str()?.to_string(),
            scale: j.field("scale")?.as_f64()?,
            machine: j.field("machine")?.as_str()?.to_string(),
            cells: from_arr(j.field("cells")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::Policy;

    #[test]
    fn enumeration_order_is_bench_fleet_setup_rep() {
        let mut spec = GridSpec::new("t", 0.05);
        spec.push(
            AxisSet::new(
                vec!["A".into(), "B".into()],
                vec![
                    GridSetup::new("s0", Setup::Default),
                    GridSetup::new("s1", Setup::Cuttlefish(Policy::Both)),
                ],
            )
            .with_fleets(vec![Fleet::single(), Fleet::uniform(2)])
            .with_reps(2),
        );
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert_eq!(
            (
                cells[0].bench.as_str(),
                cells[0].nodes,
                cells[0].label.as_str(),
                cells[0].rep
            ),
            ("A", 1, "s0", 0)
        );
        assert_eq!(cells[1].rep, 1);
        assert_eq!(cells[2].label, "s1");
        assert_eq!(cells[4].nodes, 2);
        assert_eq!(cells[8].bench, "B");
        // Rep 0 keeps the historical harness seed.
        assert_eq!(cells[0].seed(), HARNESS_SEED);
        assert_ne!(cells[1].seed(), HARNESS_SEED);
    }

    #[test]
    fn axis_sets_enumerate_in_declaration_order() {
        let mut spec = GridSpec::new("t", 0.05);
        spec.push(AxisSet::new(
            vec!["A".into()],
            vec![GridSetup::new("main", Setup::Default)],
        ));
        spec.push(
            AxisSet::new(
                vec!["B".into()],
                vec![GridSetup::new("mpi", Setup::Default)],
            )
            .with_fleets(vec![Fleet::uniform(4).with_bsp(96, 1.2e9)]),
        );
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].label, "main");
        let mpi = &cells[1];
        assert_eq!((mpi.label.as_str(), mpi.nodes), ("mpi", 4));
        assert_eq!(mpi.bsp.unwrap().supersteps, 96);
    }

    #[test]
    fn trace_is_disabled_on_cluster_cells() {
        let mut spec = GridSpec::new("t", 0.05);
        spec.push(
            AxisSet::new(
                vec!["A".into()],
                vec![GridSetup::new("s", Setup::Default).with_trace()],
            )
            .with_fleets(vec![Fleet::single(), Fleet::uniform(2)]),
        );
        let cells = spec.cells();
        assert!(cells[0].trace);
        assert!(!cells[1].trace);
    }

    #[test]
    fn setup_and_config_json_round_trip() {
        for setup in [
            Setup::Default,
            Setup::Cuttlefish(Policy::CoreOnly),
            Setup::Pinned(Freq(12), Freq(30)),
            Setup::Ondemand,
        ] {
            assert_eq!(Setup::from_json(&setup.to_json()).unwrap(), setup);
        }
        let cfg = Config {
            idle_guard: Some(0.3),
            ..Config::default()
        };
        assert_eq!(Config::from_json(&cfg.to_json()).unwrap(), cfg);
        assert_eq!(
            Config::from_json(&Config::default().to_json()).unwrap(),
            Config::default()
        );
    }

    #[test]
    fn cell_scenario_round_trip_preserves_identity() {
        let cell = CellSpec {
            bench: "Heat-ws".into(),
            model: ProgModel::OpenMp,
            label: "Cuttlefish-straggler".into(),
            setup: Setup::Cuttlefish(Policy::Both),
            config: Config::default(),
            nodes: 2,
            rep: 0,
            trace: false,
            machines: Some(vec![HASWELL_2650V3.clone(), straggler_spec()]),
            bsp: Some(BspCell {
                supersteps: 8,
                comm_bytes: 24.0e6,
            }),
            oracle: None,
            stepping: SteppingMode::Lockstep,
        };
        let scenario = cell.scenario(&HASWELL_2650V3, 0.02);
        assert_eq!(scenario.n_nodes(), 2);
        assert_eq!(scenario.stepping, SteppingMode::Lockstep);
        let back = scenario_cell(&scenario).expect("embeddable");
        assert_eq!(back, cell);
        // The non-default mode must also survive the cell's own JSON
        // codec; default-mode cells keep the key omitted entirely.
        let reparsed = CellSpec::from_json(&cell.to_json()).expect("codec");
        assert_eq!(reparsed, cell);
        let default_cell = CellSpec {
            stepping: SteppingMode::default(),
            ..cell
        };
        assert!(!default_cell.to_json().to_pretty().contains("stepping"));
    }
}
