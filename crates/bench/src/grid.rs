//! The scenario grid: declarative benchmark × setup × node-count ×
//! repetition sweeps, fanned out across worker threads and aggregated
//! into one machine-readable result.
//!
//! The paper's evaluation is a grid — every figure/table is "run these
//! benchmarks under these setups and compare" — and each run is an
//! independent, deterministic simulation. [`GridSpec`] captures the
//! declaration, [`GridSpec::run`] executes the enumerated cells on a
//! work-stealing pool (the crossbeam shim's `Injector` feeds cell
//! indices to `--shards` threads), and [`GridResult`] carries the
//! per-cell measurements in *cell-enumeration order* regardless of
//! which thread ran what — so the serialized artifact is byte-identical
//! for any shard count, which is what lets CI diff it over time.
//!
//! The figure/table bins in `src/bin/` are each one `GridSpec`
//! declaration plus a formatting layer over the returned cells; the
//! same JSON artifacts feed `ci.sh`'s "bench smoke" stage.

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::{run_on, Setup, TracePoint, HARNESS_SEED};
use cluster::{Cluster, CommModel};
use crossbeam::deque::{Injector, Steal};
use cuttlefish::{Config, Policy};
use serde::{Deserialize, Serialize};
use simproc::freq::{Freq, FreqDomain, MachineSpec, HASWELL_2650V3};
use std::sync::Mutex;
use std::time::Instant;
use workloads::{hclib_suite, openmp_suite, Benchmark, BuiltWorkload, ProgModel, Scale};

/// Artifact format tag embedded in every serialized [`GridResult`].
pub const SCHEMA: &str = "cuttlefish/grid-result/v1";

/// One entry on a grid's setup axis: an execution [`Setup`] with its
/// Cuttlefish [`Config`], a display label unique within the grid, and
/// whether cells under it collect a `Tinv`-rate trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSetup {
    /// Axis label (`"Default"`, `"Tinv=40ms"`, `"a:CF=1.2"` ...).
    pub label: String,
    /// Execution configuration.
    pub setup: Setup,
    /// Cuttlefish parameters (ignored by `Default`/`Pinned` setups).
    pub config: Config,
    /// Collect the per-`Tinv` trace for cells under this setup
    /// (single-node cells only; cluster cells have no single timeline).
    pub trace: bool,
}

impl GridSetup {
    /// Setup with the default [`Config`] and no trace.
    pub fn new(label: impl Into<String>, setup: Setup) -> Self {
        GridSetup {
            label: label.into(),
            setup,
            config: Config::default(),
            trace: false,
        }
    }

    /// Builder: replace the config.
    pub fn with_config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Builder: collect traces.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// A declarative scenario grid. Cells are the cartesian product
/// `benchmarks × node_counts × setups × reps`, enumerated in exactly
/// that nesting order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Grid name (the figure/table this reproduces).
    pub name: String,
    /// Workload scale factor (1.0 = paper-length runs).
    pub scale: f64,
    /// Machine every cell simulates.
    pub machine: MachineSpec,
    /// Programming model (selects the benchmark suite).
    pub model: ProgModel,
    /// Benchmark names (resolved against the suite for `model`).
    pub benchmarks: Vec<String>,
    /// Setup axis.
    pub setups: Vec<GridSetup>,
    /// Node counts; 1 = single package via the evaluation harness,
    /// >1 = an MPI+X-style cluster with per-node controllers.
    pub node_counts: Vec<usize>,
    /// Repetitions per cell (distinct instantiation seeds).
    pub reps: u32,
    /// Hand-built cells appended after the cartesian enumeration —
    /// shapes the axes cannot express, like heterogeneous straggler
    /// clusters (`CellSpec::machines`). Benchmarks must still resolve
    /// against this grid's suite.
    pub extra: Vec<CellSpec>,
}

impl GridSpec {
    /// Grid over the paper's Haswell machine, OpenMP model, one node,
    /// one repetition — the shape of most figure/table bins.
    pub fn new(name: impl Into<String>, scale: f64) -> Self {
        GridSpec {
            name: name.into(),
            scale,
            machine: HASWELL_2650V3.clone(),
            model: ProgModel::OpenMp,
            benchmarks: Vec::new(),
            setups: Vec::new(),
            node_counts: vec![1],
            reps: 1,
            extra: Vec::new(),
        }
    }

    /// Fill the benchmark axis with the entire suite for `model`.
    pub fn use_full_suite(&mut self) {
        self.benchmarks = self.suite().iter().map(|b| b.name.clone()).collect();
    }

    /// The benchmark suite this grid draws from.
    pub fn suite(&self) -> Vec<Benchmark> {
        match self.model {
            ProgModel::OpenMp => openmp_suite(Scale(self.scale)),
            ProgModel::HClib => hclib_suite(Scale(self.scale)),
        }
    }

    /// Enumerate the scenario cells in deterministic order (the
    /// cartesian axes, then any [`extra`](GridSpec::extra) cells).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for bench in &self.benchmarks {
            for &nodes in &self.node_counts {
                for setup in &self.setups {
                    for rep in 0..self.reps.max(1) {
                        cells.push(CellSpec {
                            bench: bench.clone(),
                            model: self.model,
                            label: setup.label.clone(),
                            setup: setup.setup,
                            config: setup.config.clone(),
                            nodes,
                            rep,
                            trace: setup.trace && nodes == 1,
                            machines: None,
                            bsp: None,
                        });
                    }
                }
            }
        }
        cells.extend(self.extra.iter().cloned());
        cells
    }

    /// Execute every cell across `shards` worker threads and aggregate.
    ///
    /// Cells are handed out through a shared work queue, so stragglers
    /// don't serialize behind a fixed partition; results are reassembled
    /// in enumeration order, making the aggregate — and its serialized
    /// bytes — independent of the shard count.
    pub fn run(&self, shards: usize) -> GridResult {
        self.run_timed(shards).0
    }

    /// [`run`](GridSpec::run), additionally reporting per-cell
    /// wall-clock and stepping counters. Timing lives *outside*
    /// [`GridResult`] by design: the artifact's bytes stay deterministic
    /// and shard-invariant, while the timing travels in the
    /// `.timing` sidecar / `BENCH_smoke.json` metadata the drift gate
    /// ignores.
    pub fn run_timed(&self, shards: usize) -> (GridResult, GridTiming) {
        let suite = self.suite();
        let cells = self.cells();
        let defs: Vec<&Benchmark> = cells
            .iter()
            .map(|cell| {
                suite
                    .iter()
                    .find(|b| b.name == cell.bench)
                    .unwrap_or_else(|| {
                        panic!("grid `{}`: unknown benchmark `{}`", self.name, cell.bench)
                    })
            })
            .collect();

        let queue: Injector<usize> = Injector::new();
        for idx in 0..cells.len() {
            queue.push(idx);
        }
        let workers = shards.clamp(1, cells.len().max(1));
        let collected: Mutex<Vec<(usize, CellResult, CellTiming)>> =
            Mutex::new(Vec::with_capacity(cells.len()));

        let wall = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = match queue.steal() {
                        Steal::Success(idx) => idx,
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    };
                    let (result, timing) = run_cell_timed(&self.machine, defs[idx], &cells[idx]);
                    collected
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((idx, result, timing));
                });
            }
        });
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

        let mut indexed = collected
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        indexed.sort_by_key(|&(idx, ..)| idx);
        let (cells, timings): (Vec<CellResult>, Vec<CellTiming>) =
            indexed.into_iter().map(|(_, r, t)| (r, t)).unzip();
        (
            GridResult {
                grid: self.name.clone(),
                scale: self.scale,
                machine: self.machine.name.clone(),
                cells,
            },
            GridTiming {
                grid: self.name.clone(),
                wall_ms,
                cells: timings,
            },
        )
    }
}

/// The paper's four §5 setups in presentation order, Default first —
/// the setup axis of the headline grids (Figures 10/11).
pub fn paper_setups() -> Vec<GridSetup> {
    vec![
        GridSetup::new("Default", Setup::Default),
        GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
        GridSetup::new("Cuttlefish-Core", Setup::Cuttlefish(Policy::CoreOnly)),
        GridSetup::new("Cuttlefish-Uncore", Setup::Cuttlefish(Policy::UncoreOnly)),
    ]
}

/// Fully-resolved identity of one scenario cell — everything needed to
/// re-run it, embedded verbatim in the result artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Benchmark name.
    pub bench: String,
    /// Programming model.
    pub model: ProgModel,
    /// Setup-axis label this cell belongs to.
    pub label: String,
    /// Execution configuration.
    pub setup: Setup,
    /// Cuttlefish parameters.
    pub config: Config,
    /// Node count (1 = single package).
    pub nodes: usize,
    /// Repetition index.
    pub rep: u32,
    /// Whether the cell collects a trace.
    pub trace: bool,
    /// Per-node machine overrides for heterogeneous clusters (length
    /// must equal `nodes`; requires `nodes > 1`). `None` — the normal
    /// case — runs every node on the grid's uniform machine, and the
    /// serialized cell is byte-identical to the pre-heterogeneity
    /// format (the key is omitted entirely).
    pub machines: Option<Vec<MachineSpec>>,
    /// Bulk-synchronous decomposition for multi-node cells. `None` —
    /// the normal case, serialized with the key omitted — replicates
    /// the whole benchmark on every node with one final barrier;
    /// `Some` strong-scales the benchmark's chunks across the nodes in
    /// superstep rounds, each ending in a barrier and an α–β exchange
    /// (the paper's §4.6 MPI+X execution shape, whose wall-clock is
    /// dominated by barrier/exchange windows).
    pub bsp: Option<BspCell>,
}

/// Parameters of a strong-scaled BSP cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BspCell {
    /// Superstep count the chunk stream is sliced into (chronological
    /// slices, so warm-up-dependent chunk costs keep their order).
    pub supersteps: u32,
    /// Bytes exchanged per node per superstep (α and bandwidth keep
    /// the [`CommModel`] defaults).
    pub comm_bytes: f64,
}

impl CellSpec {
    /// Instantiation seed: rep 0 reproduces the historical
    /// fixed-seed harness runs exactly.
    pub fn seed(&self) -> u64 {
        HARNESS_SEED ^ (u64::from(self.rep) << 32)
    }
}

/// One TIPI-range line of a cell's controller report (Table 2 shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportEntry {
    /// Slab index.
    pub slab: u32,
    /// Paper-style range label.
    pub label: String,
    /// Resolved core optimum, deci-GHz.
    pub cf: Option<u32>,
    /// Resolved uncore optimum, deci-GHz.
    pub uf: Option<u32>,
    /// `Tinv` samples attributed to the range.
    pub occurrences: u64,
    /// Share of all samples.
    pub share: f64,
}

impl ReportEntry {
    /// The paper's "frequently occurring" threshold.
    pub fn is_frequent(&self) -> bool {
        self.share > 0.10
    }

    /// Core optimum in GHz.
    pub fn cf_ghz(&self) -> Option<f64> {
        self.cf.map(|f| f as f64 / 10.0)
    }

    /// Uncore optimum in GHz.
    pub fn uf_ghz(&self) -> Option<f64> {
        self.uf.map(|f| f as f64 / 10.0)
    }
}

/// Residency at one operating point, summed over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidencyEntry {
    /// Core frequency, deci-GHz.
    pub cf: u32,
    /// Uncore frequency, deci-GHz.
    pub uf: u32,
    /// Nanoseconds spent at this point.
    pub ns: u64,
}

/// Measurements from one executed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell that produced this.
    pub spec: CellSpec,
    /// Virtual wall time, seconds (slowest node for clusters).
    pub seconds: f64,
    /// Package energy, joules (summed over nodes).
    pub joules: f64,
    /// Instructions retired (summed over nodes).
    pub instructions: f64,
    /// Fraction of reported ranges with a resolved core optimum
    /// (averaged over nodes).
    pub resolved_cf: f64,
    /// Fraction with a resolved uncore optimum.
    pub resolved_uf: f64,
    /// Node 0's controller report.
    pub report: Vec<ReportEntry>,
    /// Operating-point residency in ascending `(cf, uf)` order.
    pub residency: Vec<ResidencyEntry>,
    /// Per-node energies (length = `spec.nodes`).
    pub node_joules: Vec<f64>,
    /// Barrier wait charged across nodes (0 for single-node cells).
    pub barrier_wait_s: f64,
    /// `Tinv`-rate trace (empty unless `spec.trace`).
    pub trace: Vec<TracePoint>,
}

impl CellResult {
    /// Energy-delay product, J·s.
    pub fn edp(&self) -> f64 {
        self.joules * self.seconds
    }

    /// Joules per instruction.
    pub fn jpi(&self) -> f64 {
        self.joules / self.instructions.max(1.0)
    }
}

/// Wall-clock and stepping counters for one executed cell. Kept apart
/// from [`CellResult`]: timing is machine- and run-dependent, so it
/// must never enter the deterministic artifact bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Host wall-clock the cell took, milliseconds.
    pub wall_ms: f64,
    /// Quanta the engine executed one step at a time (all nodes).
    pub stepped_quanta: u64,
    /// Total virtual quanta elapsed (all nodes); the gap to
    /// `stepped_quanta` was fast-forwarded by the virtual-clock layer.
    pub total_quanta: u64,
}

impl CellTiming {
    /// Stepping-work reduction factor (≥ 1; 1 = nothing skipped).
    pub fn fast_forward_factor(&self) -> f64 {
        fast_forward_factor(self.stepped_quanta, self.total_quanta)
    }
}

/// `total / stepped`, guarded against an all-skipped run — the one
/// definition of the stepping-reduction ratio every consumer shares.
fn fast_forward_factor(stepped: u64, total: u64) -> f64 {
    total as f64 / stepped.max(1) as f64
}

/// Per-cell timings of one grid run, in cell-enumeration order.
#[derive(Debug, Clone, PartialEq)]
pub struct GridTiming {
    /// The grid's name.
    pub grid: String,
    /// End-to-end wall-clock of the grid run, milliseconds.
    pub wall_ms: f64,
    /// Per-cell timings.
    pub cells: Vec<CellTiming>,
}

impl GridTiming {
    /// Quanta stepped individually, summed over cells.
    pub fn stepped_quanta(&self) -> u64 {
        self.cells.iter().map(|c| c.stepped_quanta).sum()
    }

    /// Total virtual quanta, summed over cells.
    pub fn total_quanta(&self) -> u64 {
        self.cells.iter().map(|c| c.total_quanta).sum()
    }

    /// Stepping-work reduction factor over the whole grid run.
    pub fn fast_forward_factor(&self) -> f64 {
        fast_forward_factor(self.stepped_quanta(), self.total_quanta())
    }

    /// One-line before/after stepping summary: under the pure quantum
    /// loop every virtual quantum was an engine step; now only
    /// `stepped` of them are.
    pub fn stepping_summary(&self) -> String {
        let stepped = self.stepped_quanta();
        let total = self.total_quanta();
        format!(
            "{}: stepped {stepped} of {total} quanta ({:.2}x fast-forward), {:.1} ms wall, \
             {:.2} Mquanta/s",
            self.grid,
            self.fast_forward_factor(),
            self.wall_ms,
            total as f64 / 1e3 / self.wall_ms.max(1e-9),
        )
    }
}

/// A de-rated straggler node for heterogeneous smoke cells: a quarter
/// of the paper machine's cores with tighter frequency ceilings —
/// the "one slow node" hardware of the §4.6 imbalance discussion.
pub fn straggler_spec() -> MachineSpec {
    MachineSpec {
        name: "de-rated straggler (5 cores, 1.2-1.6/1.2-2.2 GHz)".to_string(),
        n_cores: 5,
        core: FreqDomain::new(Freq(12), Freq(16)),
        uncore: FreqDomain::new(Freq(12), Freq(22)),
        quantum_ns: HASWELL_2650V3.quantum_ns,
    }
}

fn report_entries(report: &[cuttlefish::daemon::NodeReport]) -> Vec<ReportEntry> {
    report
        .iter()
        .map(|r| ReportEntry {
            slab: r.slab.0,
            label: r.label.clone(),
            cf: r.cf_opt.map(|f| f.0),
            uf: r.uf_opt.map(|f| f.0),
            occurrences: r.occurrences,
            share: r.share,
        })
        .collect()
}

/// Execute one cell. Public so overhead microbenchmarks and external
/// drivers can measure exactly what the grid runner runs per cell.
pub fn run_cell(machine: &MachineSpec, def: &Benchmark, cell: &CellSpec) -> CellResult {
    run_cell_timed(machine, def, cell).0
}

/// [`run_cell`] plus its wall-clock and stepping counters.
pub fn run_cell_timed(
    machine: &MachineSpec,
    def: &Benchmark,
    cell: &CellSpec,
) -> (CellResult, CellTiming) {
    let wall = Instant::now();
    let (result, stepped_quanta, total_quanta) = run_cell_inner(machine, def, cell);
    (
        result,
        CellTiming {
            wall_ms: wall.elapsed().as_secs_f64() * 1e3,
            stepped_quanta,
            total_quanta,
        },
    )
}

/// Strong-scale a work-sharing benchmark into a bulk-synchronous app:
/// the chunk stream is cut into `supersteps` chronological slices and
/// each slice is dealt round-robin across the nodes, so every node
/// computes `1/nodes` of each superstep, synchronizes at the barrier,
/// and pays the exchange — the §4.6 MPI+X execution shape.
fn bsp_app(
    machine: &MachineSpec,
    def: &Benchmark,
    nodes: usize,
    supersteps: u32,
) -> cluster::BspApp {
    let chunks = match def.build(machine.n_cores) {
        BuiltWorkload::Regions(regions) => regions
            .into_iter()
            .flat_map(|r| r.into_chunks())
            .collect::<Vec<_>>(),
        BuiltWorkload::Dag(_) => panic!(
            "BSP cells need a work-sharing benchmark (`{}` builds a task DAG)",
            def.name
        ),
    };
    let supersteps = (supersteps.max(1) as usize).min(chunks.len().max(1));
    let per_step = chunks.len().div_ceil(supersteps);
    let mut steps = vec![vec![Vec::new(); nodes]; supersteps];
    for (i, chunk) in chunks.into_iter().enumerate() {
        let step = i / per_step;
        steps[step][(i % per_step) % nodes].push(chunk);
    }
    cluster::BspApp { steps }
}

fn run_cell_inner(
    machine: &MachineSpec,
    def: &Benchmark,
    cell: &CellSpec,
) -> (CellResult, u64, u64) {
    assert!(cell.nodes > 0, "cell must have at least one node");
    assert!(
        !(cell.trace && cell.nodes > 1),
        "traces are only defined for single-node cells (GridSpec::cells \
         normalizes this; hand-built CellSpecs must too)"
    );
    if let Some(machines) = &cell.machines {
        assert!(
            cell.nodes > 1 && machines.len() == cell.nodes,
            "heterogeneous cells need one machine per node of a multi-node cell"
        );
    }
    if cell.nodes == 1 {
        let mut trace = Vec::new();
        let outcome = run_on(
            machine,
            def,
            cell.setup,
            cell.model,
            cell.config.clone(),
            cell.trace.then_some(&mut trace),
            cell.seed(),
        );
        let cell_result = CellResult {
            spec: cell.clone(),
            seconds: outcome.seconds,
            joules: outcome.joules,
            instructions: outcome.instructions,
            resolved_cf: outcome.resolved.0,
            resolved_uf: outcome.resolved.1,
            report: report_entries(&outcome.report),
            residency: outcome
                .residency
                .iter()
                .map(|&((cf, uf), ns)| ResidencyEntry { cf, uf, ns })
                .collect(),
            node_joules: vec![outcome.joules],
            barrier_wait_s: 0.0,
            trace,
        };
        (cell_result, outcome.stepped_quanta, outcome.total_quanta)
    } else {
        let policy = cell.setup.node_policy(cell.config.clone());
        let comm = match &cell.bsp {
            Some(bsp) => CommModel {
                bytes: bsp.comm_bytes,
                ..CommModel::default()
            },
            None => CommModel::default(),
        };
        let mut cl = match &cell.machines {
            Some(machines) => Cluster::with_nodes(
                machines
                    .iter()
                    .map(|m| (m.clone(), policy.clone()))
                    .collect(),
                comm,
            ),
            None => Cluster::with_spec(cell.nodes, machine, policy, comm),
        };
        let outcome = if let Some(bsp) = &cell.bsp {
            cl.run(&bsp_app(machine, def, cell.nodes, bsp.supersteps))
        } else {
            let seed = cell.seed();
            cl.run_replicated(|node, n_cores| {
                // Distinct per-node seeds (node 0 keeps the base seed,
                // so a 1-node cluster instantiates exactly the
                // single-node run).
                def.instantiate(
                    cell.model,
                    n_cores,
                    seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
        };
        let reports = cl.reports();
        let fractions = cl.resolved_fractions();
        let n_nodes = fractions.len() as f64;
        let cell_result = CellResult {
            spec: cell.clone(),
            seconds: outcome.seconds,
            joules: outcome.joules,
            instructions: outcome.instructions,
            resolved_cf: fractions.iter().map(|f| f.0).sum::<f64>() / n_nodes,
            resolved_uf: fractions.iter().map(|f| f.1).sum::<f64>() / n_nodes,
            report: report_entries(&reports[0]),
            residency: cl
                .residency()
                .into_iter()
                .map(|((cf, uf), ns)| ResidencyEntry { cf, uf, ns })
                .collect(),
            node_joules: outcome.node_joules,
            barrier_wait_s: outcome.barrier_wait_s,
            trace: Vec::new(),
        };
        (cell_result, outcome.stepped_quanta, outcome.total_quanta)
    }
}

/// Aggregated outcome of a grid run, in cell-enumeration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridResult {
    /// The grid's name.
    pub grid: String,
    /// Scale the grid ran at.
    pub scale: f64,
    /// Machine name.
    pub machine: String,
    /// Per-cell measurements.
    pub cells: Vec<CellResult>,
}

impl GridResult {
    /// Benchmark names in first-appearance order.
    pub fn benches(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !names.contains(&cell.spec.bench.as_str()) {
                names.push(&cell.spec.bench);
            }
        }
        names
    }

    /// First cell matching `(bench, setup label)`.
    pub fn cell(&self, bench: &str, label: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.spec.bench == bench && c.spec.label == label)
    }

    /// All cells of one benchmark, in enumeration order.
    pub fn cells_for<'a>(&'a self, bench: &'a str) -> impl Iterator<Item = &'a CellResult> + 'a {
        self.cells.iter().filter(move |c| c.spec.bench == bench)
    }

    /// Serialize to the deterministic JSON artifact format.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parse an artifact produced by [`GridResult::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<GridResult, JsonError> {
        GridResult::from_json(&Json::parse(text)?)
    }
}

/// One benchmark × setup row of a baseline-relative comparison — the
/// shape of the Figure 10/11 panels and the Table 3 / ablation
/// geomeans.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// Benchmark name.
    pub bench: String,
    /// Setup-axis label of the compared cell.
    pub label: String,
    /// Energy saving vs the baseline, percent (positive = better).
    pub energy_saving_pct: f64,
    /// Execution-time degradation vs the baseline, percent.
    pub time_degradation_pct: f64,
    /// EDP saving vs the baseline, percent.
    pub edp_saving_pct: f64,
    /// Baseline virtual seconds.
    pub base_seconds: f64,
    /// Compared cell's virtual seconds.
    pub seconds: f64,
    /// Baseline joules.
    pub base_joules: f64,
    /// Compared cell's joules.
    pub joules: f64,
}

/// Compare every non-baseline cell against its benchmark's `baseline`
/// cell, in enumeration order. One definition of the
/// savings/slowdown/EDP arithmetic, shared by every bin that reports
/// relative numbers — the paper's figures must not drift apart.
///
/// Only cells sharing the baseline's cluster shape (same node count,
/// machines, and BSP decomposition) are compared — a 2-node extra's
/// total joules against a single-node baseline is not a saving.
/// Benchmarks without a `baseline` cell (cluster-shape extras outside
/// the panel comparison) are skipped entirely.
///
/// # Panics
/// Panics when nothing was comparable even though non-baseline cells
/// exist — the signature of a misspelled baseline label.
pub fn compare_to_baseline(result: &GridResult, baseline: &str) -> Vec<BaselineComparison> {
    let mut out = Vec::new();
    for bench in result.benches() {
        let Some(base) = result.cell(bench, baseline) else {
            continue;
        };
        let comparable = |c: &&CellResult| {
            c.spec.label != baseline
                && c.spec.nodes == base.spec.nodes
                && c.spec.machines == base.spec.machines
                && c.spec.bsp == base.spec.bsp
        };
        for o in result.cells_for(bench).filter(comparable) {
            out.push(BaselineComparison {
                bench: o.spec.bench.clone(),
                label: o.spec.label.clone(),
                energy_saving_pct: crate::saving_pct(base.joules, o.joules),
                time_degradation_pct: (o.seconds / base.seconds - 1.0) * 100.0,
                edp_saving_pct: crate::saving_pct(base.edp(), o.edp()),
                base_seconds: base.seconds,
                seconds: o.seconds,
                base_joules: base.joules,
                joules: o.joules,
            });
        }
    }
    assert!(
        !out.is_empty() || result.cells.iter().all(|c| c.spec.label == baseline),
        "grid `{}`: no cell shares a benchmark and cluster shape with a \
         `{baseline}` baseline — misspelled baseline label?",
        result.grid
    );
    out
}

/// Per-setup geomeans over a comparison set: `(label, energy saving %,
/// slowdown %, EDP saving %)` in label order. Slowdowns are
/// geomean-composed as negative savings, matching the paper's
/// reporting.
pub fn geomean_by_setup(comparisons: &[BaselineComparison]) -> Vec<(String, f64, f64, f64)> {
    let mut by: std::collections::BTreeMap<&str, Vec<&BaselineComparison>> = Default::default();
    for c in comparisons {
        by.entry(&c.label).or_default().push(c);
    }
    by.into_iter()
        .map(|(label, group)| {
            let e: Vec<f64> = group.iter().map(|c| c.energy_saving_pct).collect();
            let s: Vec<f64> = group.iter().map(|c| -c.time_degradation_pct).collect();
            let d: Vec<f64> = group.iter().map(|c| c.edp_saving_pct).collect();
            (
                label.to_string(),
                crate::geomean_saving(&e),
                -crate::geomean_saving(&s),
                crate::geomean_saving(&d),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// JSON encoding (hand-rolled against `bench::json`; the serde derives
// above are offline-shim markers — see `shims/README.md`).
// ---------------------------------------------------------------------

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn opt_u32(v: Option<u32>) -> Json {
    v.map_or(Json::Null, |x| Json::Num(f64::from(x)))
}

fn from_opt_u32(j: &Json) -> Result<Option<u32>, JsonError> {
    match j {
        Json::Null => Ok(None),
        other => Ok(Some(other.as_u64()? as u32)),
    }
}

impl ToJson for ProgModel {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ProgModel::OpenMp => "openmp",
                ProgModel::HClib => "hclib",
            }
            .into(),
        )
    }
}

impl FromJson for ProgModel {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str()? {
            "openmp" => Ok(ProgModel::OpenMp),
            "hclib" => Ok(ProgModel::HClib),
            other => Err(JsonError(format!("unknown programming model `{other}`"))),
        }
    }
}

impl ToJson for Policy {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Policy::Both => "both",
                Policy::CoreOnly => "core-only",
                Policy::UncoreOnly => "uncore-only",
            }
            .into(),
        )
    }
}

impl FromJson for Policy {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str()? {
            "both" => Ok(Policy::Both),
            "core-only" => Ok(Policy::CoreOnly),
            "uncore-only" => Ok(Policy::UncoreOnly),
            other => Err(JsonError(format!("unknown policy `{other}`"))),
        }
    }
}

impl ToJson for Setup {
    fn to_json(&self) -> Json {
        match self {
            Setup::Default => obj(vec![("kind", Json::Str("default".into()))]),
            Setup::Cuttlefish(policy) => obj(vec![
                ("kind", Json::Str("cuttlefish".into())),
                ("policy", policy.to_json()),
            ]),
            Setup::Pinned(cf, uf) => obj(vec![
                ("kind", Json::Str("pinned".into())),
                ("cf", Json::Num(f64::from(cf.0))),
                ("uf", Json::Num(f64::from(uf.0))),
            ]),
        }
    }
}

impl FromJson for Setup {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.field("kind")?.as_str()? {
            "default" => Ok(Setup::Default),
            "cuttlefish" => Ok(Setup::Cuttlefish(Policy::from_json(j.field("policy")?)?)),
            "pinned" => Ok(Setup::Pinned(
                Freq(j.field("cf")?.as_u64()? as u32),
                Freq(j.field("uf")?.as_u64()? as u32),
            )),
            other => Err(JsonError(format!("unknown setup kind `{other}`"))),
        }
    }
}

impl ToJson for Config {
    fn to_json(&self) -> Json {
        obj(vec![
            ("tinv_ns", Json::Num(self.tinv_ns as f64)),
            ("warmup_ns", Json::Num(self.warmup_ns as f64)),
            ("policy", self.policy.to_json()),
            (
                "samples_per_freq",
                Json::Num(f64::from(self.samples_per_freq)),
            ),
            ("slab_width", Json::Num(self.slab_width)),
            ("uf_window_mult", Json::Num(self.uf_window_mult)),
            (
                "neighbor_inheritance",
                Json::Bool(self.neighbor_inheritance),
            ),
            ("revalidation", Json::Bool(self.revalidation)),
            ("idle_guard", self.idle_guard.map_or(Json::Null, Json::Num)),
        ])
    }
}

impl FromJson for Config {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Config {
            tinv_ns: j.field("tinv_ns")?.as_u64()?,
            warmup_ns: j.field("warmup_ns")?.as_u64()?,
            policy: Policy::from_json(j.field("policy")?)?,
            samples_per_freq: j.field("samples_per_freq")?.as_u64()? as u32,
            slab_width: j.field("slab_width")?.as_f64()?,
            uf_window_mult: j.field("uf_window_mult")?.as_f64()?,
            neighbor_inheritance: j.field("neighbor_inheritance")?.as_bool()?,
            revalidation: j.field("revalidation")?.as_bool()?,
            idle_guard: match j.field("idle_guard")? {
                Json::Null => None,
                other => Some(other.as_f64()?),
            },
        })
    }
}

impl ToJson for FreqDomain {
    fn to_json(&self) -> Json {
        obj(vec![
            ("min", Json::Num(f64::from(self.min().0))),
            ("max", Json::Num(f64::from(self.max().0))),
        ])
    }
}

impl FromJson for FreqDomain {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let min = j.field("min")?.as_u64()? as u32;
        let max = j.field("max")?.as_u64()? as u32;
        if min == 0 || min > max {
            return Err(JsonError(format!("invalid frequency domain {min}..{max}")));
        }
        Ok(FreqDomain::new(Freq(min), Freq(max)))
    }
}

impl ToJson for MachineSpec {
    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("n_cores", Json::Num(self.n_cores as f64)),
            ("core", self.core.to_json()),
            ("uncore", self.uncore.to_json()),
            ("quantum_ns", Json::Num(self.quantum_ns as f64)),
        ])
    }
}

impl FromJson for MachineSpec {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let spec = MachineSpec {
            name: j.field("name")?.as_str()?.to_string(),
            n_cores: j.field("n_cores")?.as_u64()? as usize,
            core: FreqDomain::from_json(j.field("core")?)?,
            uncore: FreqDomain::from_json(j.field("uncore")?)?,
            quantum_ns: j.field("quantum_ns")?.as_u64()?,
        };
        spec.validate().map_err(JsonError)?;
        Ok(spec)
    }
}

impl ToJson for CellSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("bench", Json::Str(self.bench.clone())),
            ("model", self.model.to_json()),
            ("label", Json::Str(self.label.clone())),
            ("setup", self.setup.to_json()),
            ("config", self.config.to_json()),
            ("nodes", Json::Num(self.nodes as f64)),
            ("rep", Json::Num(f64::from(self.rep))),
            ("trace", Json::Bool(self.trace)),
        ];
        // Only heterogeneous / BSP cells carry these keys: plain cells
        // keep their historical byte-exact encoding.
        if let Some(machines) = &self.machines {
            fields.push(("machines", arr(machines)));
        }
        if let Some(bsp) = &self.bsp {
            fields.push(("bsp", bsp.to_json()));
        }
        obj(fields)
    }
}

impl FromJson for CellSpec {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CellSpec {
            bench: j.field("bench")?.as_str()?.to_string(),
            model: ProgModel::from_json(j.field("model")?)?,
            label: j.field("label")?.as_str()?.to_string(),
            setup: Setup::from_json(j.field("setup")?)?,
            config: Config::from_json(j.field("config")?)?,
            nodes: j.field("nodes")?.as_u64()? as usize,
            rep: j.field("rep")?.as_u64()? as u32,
            trace: j.field("trace")?.as_bool()?,
            machines: match j.get("machines") {
                Some(m) => Some(from_arr(m)?),
                None => None,
            },
            bsp: match j.get("bsp") {
                Some(b) => Some(BspCell::from_json(b)?),
                None => None,
            },
        })
    }
}

impl ToJson for BspCell {
    fn to_json(&self) -> Json {
        obj(vec![
            ("supersteps", Json::Num(f64::from(self.supersteps))),
            ("comm_bytes", Json::Num(self.comm_bytes)),
        ])
    }
}

impl FromJson for BspCell {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(BspCell {
            supersteps: j.field("supersteps")?.as_u64()? as u32,
            comm_bytes: j.field("comm_bytes")?.as_f64()?,
        })
    }
}

impl ToJson for ReportEntry {
    fn to_json(&self) -> Json {
        obj(vec![
            ("slab", Json::Num(f64::from(self.slab))),
            ("label", Json::Str(self.label.clone())),
            ("cf", opt_u32(self.cf)),
            ("uf", opt_u32(self.uf)),
            ("occurrences", Json::Num(self.occurrences as f64)),
            ("share", Json::Num(self.share)),
        ])
    }
}

impl FromJson for ReportEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ReportEntry {
            slab: j.field("slab")?.as_u64()? as u32,
            label: j.field("label")?.as_str()?.to_string(),
            cf: from_opt_u32(j.field("cf")?)?,
            uf: from_opt_u32(j.field("uf")?)?,
            occurrences: j.field("occurrences")?.as_u64()?,
            share: j.field("share")?.as_f64()?,
        })
    }
}

impl ToJson for ResidencyEntry {
    fn to_json(&self) -> Json {
        obj(vec![
            ("cf", Json::Num(f64::from(self.cf))),
            ("uf", Json::Num(f64::from(self.uf))),
            ("ns", Json::Num(self.ns as f64)),
        ])
    }
}

impl FromJson for ResidencyEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ResidencyEntry {
            cf: j.field("cf")?.as_u64()? as u32,
            uf: j.field("uf")?.as_u64()? as u32,
            ns: j.field("ns")?.as_u64()?,
        })
    }
}

impl ToJson for TracePoint {
    fn to_json(&self) -> Json {
        obj(vec![
            ("t_s", Json::Num(self.t_s)),
            ("tipi", Json::Num(self.tipi)),
            ("jpi", Json::Num(self.jpi)),
            ("cf_ghz", Json::Num(self.cf_ghz)),
            ("uf_ghz", Json::Num(self.uf_ghz)),
            ("watts", Json::Num(self.watts)),
        ])
    }
}

impl FromJson for TracePoint {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(TracePoint {
            t_s: j.field("t_s")?.as_f64()?,
            tipi: j.field("tipi")?.as_f64()?,
            jpi: j.field("jpi")?.as_f64()?,
            cf_ghz: j.field("cf_ghz")?.as_f64()?,
            uf_ghz: j.field("uf_ghz")?.as_f64()?,
            watts: j.field("watts")?.as_f64()?,
        })
    }
}

fn arr<T: ToJson>(items: &[T]) -> Json {
    Json::Arr(items.iter().map(ToJson::to_json).collect())
}

fn from_arr<T: FromJson>(j: &Json) -> Result<Vec<T>, JsonError> {
    j.as_arr()?.iter().map(T::from_json).collect()
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        obj(vec![
            ("spec", self.spec.to_json()),
            ("seconds", Json::Num(self.seconds)),
            ("joules", Json::Num(self.joules)),
            ("instructions", Json::Num(self.instructions)),
            ("resolved_cf", Json::Num(self.resolved_cf)),
            ("resolved_uf", Json::Num(self.resolved_uf)),
            ("report", arr(&self.report)),
            ("residency", arr(&self.residency)),
            (
                "node_joules",
                Json::Arr(self.node_joules.iter().map(|&v| Json::Num(v)).collect()),
            ),
            ("barrier_wait_s", Json::Num(self.barrier_wait_s)),
            ("trace", arr(&self.trace)),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CellResult {
            spec: CellSpec::from_json(j.field("spec")?)?,
            seconds: j.field("seconds")?.as_f64()?,
            joules: j.field("joules")?.as_f64()?,
            instructions: j.field("instructions")?.as_f64()?,
            resolved_cf: j.field("resolved_cf")?.as_f64()?,
            resolved_uf: j.field("resolved_uf")?.as_f64()?,
            report: from_arr(j.field("report")?)?,
            residency: from_arr(j.field("residency")?)?,
            node_joules: j
                .field("node_joules")?
                .as_arr()?
                .iter()
                .map(Json::as_f64)
                .collect::<Result<_, _>>()?,
            barrier_wait_s: j.field("barrier_wait_s")?.as_f64()?,
            trace: from_arr(j.field("trace")?)?,
        })
    }
}

impl ToJson for GridResult {
    fn to_json(&self) -> Json {
        obj(vec![
            ("schema", Json::Str(SCHEMA.into())),
            ("grid", Json::Str(self.grid.clone())),
            ("scale", Json::Num(self.scale)),
            ("machine", Json::Str(self.machine.clone())),
            ("cells", arr(&self.cells)),
        ])
    }
}

impl ToJson for CellTiming {
    fn to_json(&self) -> Json {
        obj(vec![
            ("wall_ms", Json::Num(self.wall_ms)),
            ("stepped_quanta", Json::Num(self.stepped_quanta as f64)),
            ("total_quanta", Json::Num(self.total_quanta as f64)),
        ])
    }
}

/// Sidecar format tag for `.timing` files.
pub const TIMING_SCHEMA: &str = "cuttlefish/grid-timing/v1";

impl ToJson for GridTiming {
    fn to_json(&self) -> Json {
        obj(vec![
            ("schema", Json::Str(TIMING_SCHEMA.into())),
            ("grid", Json::Str(self.grid.clone())),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("stepped_quanta", Json::Num(self.stepped_quanta() as f64)),
            ("total_quanta", Json::Num(self.total_quanta() as f64)),
            ("fast_forward", Json::Num(self.fast_forward_factor())),
            ("cells", arr(&self.cells)),
        ])
    }
}

impl FromJson for GridResult {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let schema = j.field("schema")?.as_str()?;
        if schema != SCHEMA {
            return Err(JsonError(format!(
                "unsupported artifact schema `{schema}` (expected `{SCHEMA}`)"
            )));
        }
        Ok(GridResult {
            grid: j.field("grid")?.as_str()?.to_string(),
            scale: j.field("scale")?.as_f64()?,
            machine: j.field("machine")?.as_str()?.to_string(),
            cells: from_arr(j.field("cells")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_order_is_bench_nodes_setup_rep() {
        let mut spec = GridSpec::new("t", 0.05);
        spec.benchmarks = vec!["A".into(), "B".into()];
        spec.setups = vec![
            GridSetup::new("s0", Setup::Default),
            GridSetup::new("s1", Setup::Cuttlefish(Policy::Both)),
        ];
        spec.node_counts = vec![1, 2];
        spec.reps = 2;
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert_eq!(
            (
                cells[0].bench.as_str(),
                cells[0].nodes,
                cells[0].label.as_str(),
                cells[0].rep
            ),
            ("A", 1, "s0", 0)
        );
        assert_eq!(cells[1].rep, 1);
        assert_eq!(cells[2].label, "s1");
        assert_eq!(cells[4].nodes, 2);
        assert_eq!(cells[8].bench, "B");
        // Rep 0 keeps the historical harness seed.
        assert_eq!(cells[0].seed(), HARNESS_SEED);
        assert_ne!(cells[1].seed(), HARNESS_SEED);
    }

    #[test]
    fn trace_is_disabled_on_cluster_cells() {
        let mut spec = GridSpec::new("t", 0.05);
        spec.benchmarks = vec!["A".into()];
        spec.setups = vec![GridSetup::new("s", Setup::Default).with_trace()];
        spec.node_counts = vec![1, 2];
        let cells = spec.cells();
        assert!(cells[0].trace);
        assert!(!cells[1].trace);
    }

    #[test]
    fn setup_and_config_json_round_trip() {
        for setup in [
            Setup::Default,
            Setup::Cuttlefish(Policy::CoreOnly),
            Setup::Pinned(Freq(12), Freq(30)),
        ] {
            assert_eq!(Setup::from_json(&setup.to_json()).unwrap(), setup);
        }
        let cfg = Config {
            idle_guard: Some(0.3),
            ..Config::default()
        };
        assert_eq!(Config::from_json(&cfg.to_json()).unwrap(), cfg);
        assert_eq!(
            Config::from_json(&Config::default().to_json()).unwrap(),
            Config::default()
        );
    }
}
