//! Evaluation harness shared by the table/figure regenerators.
//!
//! One entry point, [`run`], executes a benchmark on the simulated
//! 20-core machine under one of the paper's four configurations
//! ([`Setup`]) and returns measured energy / time / frequency
//! assignments. Everything downstream — savings percentages, EDP,
//! geometric means, trace series — is arithmetic over [`RunOutcome`]s.

use cuttlefish::controller::NodePolicy;
use cuttlefish::{Config, Policy};
use simproc::freq::{Freq, MachineSpec, HASWELL_2650V3};
use simproc::profile::{delta, CounterSnapshot};
use simproc::SimProcessor;
use workloads::{Benchmark, ProgModel};

pub mod cli;
pub mod grid;
pub mod json;

/// The benchmark-instantiation seed every harness run uses (reps > 0
/// fold the repetition index in, so rep 0 reproduces historical runs).
pub const HARNESS_SEED: u64 = 0xC0FFEE;

/// The execution configurations of the paper: the four Figure 10/11
/// setups plus the fixed-frequency pins of the Figure 3 sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setup {
    /// `performance` governor + firmware Auto uncore.
    Default,
    /// A Cuttlefish policy.
    Cuttlefish(Policy),
    /// Core and uncore pinned at a fixed operating point (§3.2).
    Pinned(Freq, Freq),
}

impl Setup {
    /// The paper's four setups in presentation order.
    pub fn all() -> [Setup; 4] {
        [
            Setup::Default,
            Setup::Cuttlefish(Policy::Both),
            Setup::Cuttlefish(Policy::CoreOnly),
            Setup::Cuttlefish(Policy::UncoreOnly),
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Setup::Default => "Default",
            Setup::Cuttlefish(p) => p.name(),
            Setup::Pinned(..) => "Pinned",
        }
    }

    /// The node policy this setup builds its controller from; `cfg`
    /// parameterizes the Cuttlefish setups (Tinv, slab width, ...).
    pub fn node_policy(self, cfg: Config) -> NodePolicy {
        match self {
            Setup::Default => NodePolicy::Default,
            Setup::Cuttlefish(policy) => NodePolicy::Cuttlefish(cfg.with_policy(policy)),
            Setup::Pinned(cf, uf) => NodePolicy::Pinned { cf, uf },
        }
    }
}

/// Measurements from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Benchmark name.
    pub bench: String,
    /// Setup used.
    pub setup: &'static str,
    /// Virtual execution time, seconds.
    pub seconds: f64,
    /// Package energy, joules.
    pub joules: f64,
    /// Instructions retired.
    pub instructions: f64,
    /// Per-TIPI-range report from the controller (the Cuttlefish
    /// daemon's discovered ranges, or a static controller's synthetic
    /// whole-run range).
    pub report: Vec<cuttlefish::daemon::NodeReport>,
    /// Fractions of distinct ranges with resolved (CFopt, UFopt).
    pub resolved: (f64, f64),
    /// Per-operating-point residency, `((core, uncore) deci-GHz, ns)`,
    /// in ascending key order (the residency/EDP analyses).
    pub residency: Vec<((u32, u32), u64)>,
    /// Quanta the engine executed one step at a time.
    pub stepped_quanta: u64,
    /// Total virtual quanta elapsed (stepped + fast-forwarded) — the
    /// per-cell stepping-rate data the CI smoke stage reports.
    pub total_quanta: u64,
}

impl RunOutcome {
    /// Energy-delay product, J·s.
    pub fn edp(&self) -> f64 {
        self.joules * self.seconds
    }

    /// Joules per instruction.
    pub fn jpi(&self) -> f64 {
        self.joules / self.instructions.max(1.0)
    }
}

/// One (time, tipi, jpi, cf, uf, watts) trace point (Fig. 2 series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    pub t_s: f64,
    pub tipi: f64,
    pub jpi: f64,
    pub cf_ghz: f64,
    pub uf_ghz: f64,
    pub watts: f64,
}

/// Run `bench` under `setup` on the paper's Haswell machine;
/// optionally collect a `Tinv`-rate trace.
pub fn run(
    bench: &Benchmark,
    setup: Setup,
    model: ProgModel,
    cfg: Config,
    trace: Option<&mut Vec<TracePoint>>,
) -> RunOutcome {
    run_on(
        &HASWELL_2650V3,
        bench,
        setup,
        model,
        cfg,
        trace,
        HARNESS_SEED,
    )
}

/// [`run`], generalized over the machine and instantiation seed — the
/// single-node cell executor of the scenario grid ([`grid`]).
pub fn run_on(
    machine: &MachineSpec,
    bench: &Benchmark,
    setup: Setup,
    model: ProgModel,
    cfg: Config,
    trace: Option<&mut Vec<TracePoint>>,
    seed: u64,
) -> RunOutcome {
    let mut proc = SimProcessor::new(machine.clone());
    let mut wl = bench.instantiate(model, proc.n_cores(), seed);

    let mut controller = setup.node_policy(cfg).build(&mut proc);

    let start_e = proc.total_energy_joules();
    let start_t = proc.now_ns();

    if let Some(points) = trace {
        // Traced runs sample counters on a fixed 20-quantum cadence, so
        // they step every quantum; untraced runs go through the
        // event-driven loop (identical numerics, fast-forwarded idle).
        let mut quanta = 0u64;
        let mut last = CounterSnapshot::capture(&proc).expect("counters readable");
        while !proc.workload_drained(wl.as_mut()) {
            proc.step(wl.as_mut());
            controller.on_quantum(&mut proc);
            quanta += 1;
            if quanta.is_multiple_of(20) {
                let now = CounterSnapshot::capture(&proc).expect("counters readable");
                if let Some(s) = delta(&last, &now) {
                    points.push(TracePoint {
                        t_s: proc.now_seconds(),
                        tipi: s.tipi,
                        jpi: s.jpi,
                        cf_ghz: proc.core_freq().ghz(),
                        uf_ghz: proc.uncore_freq().ghz(),
                        watts: proc.last_quantum().power_watts,
                    });
                }
                last = now;
            }
        }
    } else {
        cuttlefish::controller::drive(&mut proc, wl.as_mut(), controller.as_mut());
    }

    let report = controller.report();
    let resolved = controller.resolved_fractions();

    RunOutcome {
        bench: bench.name.clone(),
        setup: setup.name(),
        seconds: (proc.now_ns() - start_t) as f64 * 1e-9,
        joules: proc.total_energy_joules() - start_e,
        instructions: proc.total_instructions(),
        report,
        resolved,
        residency: proc
            .frequency_residency()
            .iter()
            .map(|(&point, &ns)| (point, ns))
            .collect(),
        stepped_quanta: proc.stepped_quanta(),
        total_quanta: proc.total_quanta(),
    }
}

/// Percentage saving of `tuned` relative to `base` (positive = tuned
/// is better/lower).
pub fn saving_pct(base: f64, tuned: f64) -> f64 {
    (1.0 - tuned / base) * 100.0
}

/// Geometric mean of ratios expressed as savings percentages.
///
/// The paper reports geomean savings across benchmarks; each saving
/// `s%` corresponds to a ratio `1 − s/100`, and the geomean of the
/// ratios is converted back to a percentage.
pub fn geomean_saving(savings_pct: &[f64]) -> f64 {
    if savings_pct.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = savings_pct.iter().map(|s| (1.0 - s / 100.0).ln()).sum();
    (1.0 - (log_sum / savings_pct.len() as f64).exp()) * 100.0
}

/// Render a fixed-width table (plain text, like the paper's artifacts).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Scale for harness binaries: `CUTTLEFISH_SCALE` env var, default 1.0
/// (the paper's full-length runs).
pub fn harness_scale() -> workloads::Scale {
    let s = std::env::var("CUTTLEFISH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    workloads::Scale(s.clamp(0.01, 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Scale;

    #[test]
    fn geomean_matches_hand_computation() {
        // Ratios 0.8 and 0.9 → geomean √0.72 ≈ 0.8485 → 15.15% saving.
        let g = geomean_saving(&[20.0, 10.0]);
        assert!((g - 15.147).abs() < 0.01, "got {g}");
        assert_eq!(geomean_saving(&[]), 0.0);
        // Negative savings (losses) are handled.
        let g2 = geomean_saving(&[-10.0, 10.0]);
        assert!(
            g2.abs() < 0.6,
            "symmetric gains/losses nearly cancel, got {g2}"
        );
    }

    #[test]
    fn saving_pct_signs() {
        assert!((saving_pct(100.0, 80.0) - 20.0).abs() < 1e-12);
        assert!((saving_pct(100.0, 110.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    fn default_and_cuttlefish_runs_complete() {
        let suite = workloads::openmp_suite(Scale(0.05));
        let uts = &suite[0];
        let d = run(
            uts,
            Setup::Default,
            ProgModel::OpenMp,
            Config::default(),
            None,
        );
        assert!(d.seconds > 0.0 && d.joules > 0.0);
        let c = run(
            uts,
            Setup::Cuttlefish(Policy::Both),
            ProgModel::OpenMp,
            Config::default(),
            None,
        );
        assert!(c.seconds > 0.0 && c.joules > 0.0);
        assert!(!c.report.is_empty(), "daemon must have discovered ranges");
    }

    #[test]
    fn trace_collection_samples_at_tinv() {
        let suite = workloads::openmp_suite(Scale(0.05));
        let mut points = Vec::new();
        let o = run(
            &suite[1],
            Setup::Default,
            ProgModel::OpenMp,
            Config::default(),
            Some(&mut points),
        );
        // ~1 point per 20 ms of virtual time.
        let expect = o.seconds / 0.020;
        assert!(
            (points.len() as f64) > expect * 0.8 && (points.len() as f64) < expect * 1.2,
            "expected ~{expect} points, got {}",
            points.len()
        );
    }
}
