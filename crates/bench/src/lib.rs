//! Evaluation harness shared by the table/figure regenerators.
//!
//! One declarative description, [`scenario::Scenario`], captures an
//! experiment — machine(s) × frequency policy × workload × topology —
//! and [`scenario::Scenario::run`] executes it, returning measured
//! energy / time / frequency assignments. Everything downstream —
//! savings percentages, EDP, geometric means, trace series — is
//! arithmetic over [`RunOutcome`]s; the grid runner ([`grid`]) fans
//! axis-sets of scenarios across worker threads.

use cuttlefish::controller::{NodePolicy, PidGains};
use cuttlefish::{Config, Policy};
use simproc::freq::Freq;

pub mod cli;
pub mod fuzz;
pub mod grid;
pub mod json;
pub mod scenario;
pub mod store;

pub use scenario::{Scenario, ScenarioOutcome, Topology};

/// The benchmark-instantiation seed every harness run uses (reps > 0
/// fold the repetition index in, so rep 0 reproduces historical runs).
pub const HARNESS_SEED: u64 = 0xC0FFEE;

/// The execution configurations of the paper — the four Figure 10/11
/// setups plus the fixed-frequency pins of the Figure 3 sweeps — and
/// the governors beyond the paper's four: the ondemand/schedutil-style
/// baseline, the static Table 2 oracle, and the PID uncore tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Setup {
    /// `performance` governor + firmware Auto uncore.
    Default,
    /// A Cuttlefish policy.
    Cuttlefish(Policy),
    /// Core and uncore pinned at a fixed operating point (§3.2).
    Pinned(Freq, Freq),
    /// The ondemand/schedutil-style utilization-proportional governor.
    Ondemand,
    /// The static per-phase oracle (§5's comparison baseline). The
    /// operating-point table is *derived per cell* from a traced
    /// Default run of the same scenario unless the cell carries an
    /// explicit one — see `grid::CellSpec::scenario`.
    Oracle,
    /// PID uncore tracking over the Cuttlefish core-only search.
    PidUncore(PidGains),
}

impl Setup {
    /// The paper's four setups in presentation order.
    pub fn all() -> [Setup; 4] {
        [
            Setup::Default,
            Setup::Cuttlefish(Policy::Both),
            Setup::Cuttlefish(Policy::CoreOnly),
            Setup::Cuttlefish(Policy::UncoreOnly),
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Setup::Default => "Default",
            Setup::Cuttlefish(p) => p.name(),
            Setup::Pinned(..) => "Pinned",
            Setup::Ondemand => "Ondemand",
            Setup::Oracle => "Oracle",
            Setup::PidUncore(_) => "PidUncore",
        }
    }

    /// The node policy this setup builds its controller from; `cfg`
    /// parameterizes the Cuttlefish setups (Tinv, slab width, ...) and
    /// the PID setup's delegated core search.
    ///
    /// # Panics
    /// Panics for [`Setup::Oracle`]: its operating-point table lives
    /// on the grid cell (explicit or derived), so oracle policies are
    /// resolved by `grid::CellSpec::scenario`, not here.
    pub fn node_policy(self, cfg: Config) -> NodePolicy {
        match self {
            Setup::Default => NodePolicy::Default,
            Setup::Cuttlefish(policy) => NodePolicy::Cuttlefish(cfg.with_policy(policy)),
            Setup::Pinned(cf, uf) => NodePolicy::Pinned { cf, uf },
            Setup::Ondemand => NodePolicy::Ondemand,
            Setup::Oracle => {
                panic!("oracle setups resolve their table through CellSpec::scenario")
            }
            Setup::PidUncore(gains) => NodePolicy::PidUncore { config: cfg, gains },
        }
    }
}

/// Measurements from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Benchmark name.
    pub bench: String,
    /// Setup used.
    pub setup: &'static str,
    /// Virtual execution time, seconds.
    pub seconds: f64,
    /// Package energy, joules.
    pub joules: f64,
    /// Instructions retired.
    pub instructions: f64,
    /// Per-TIPI-range report from the controller (the Cuttlefish
    /// daemon's discovered ranges, or a static controller's synthetic
    /// whole-run range).
    pub report: Vec<cuttlefish::daemon::NodeReport>,
    /// Fractions of distinct ranges with resolved (CFopt, UFopt).
    pub resolved: (f64, f64),
    /// Per-operating-point residency, `((core, uncore) deci-GHz, ns)`,
    /// in ascending key order (the residency/EDP analyses).
    pub residency: Vec<((u32, u32), u64)>,
    /// Quanta the engine executed one step at a time.
    pub stepped_quanta: u64,
    /// Quanta fast-forwarded analytically while parked.
    pub idle_advanced_quanta: u64,
    /// Quanta fast-forwarded analytically while executing (busy
    /// steady-state stretches the controller certified).
    pub busy_advanced_quanta: u64,
    /// Total virtual quanta elapsed — always
    /// `stepped + idle_advanced + busy_advanced`; the per-cell
    /// stepping-rate data the CI smoke stage reports.
    pub total_quanta: u64,
}

impl RunOutcome {
    /// Energy-delay product, J·s.
    pub fn edp(&self) -> f64 {
        self.joules * self.seconds
    }

    /// Joules per instruction.
    pub fn jpi(&self) -> f64 {
        self.joules / self.instructions.max(1.0)
    }
}

/// One (time, tipi, jpi, cf, uf, watts) trace point (Fig. 2 series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    pub t_s: f64,
    pub tipi: f64,
    pub jpi: f64,
    pub cf_ghz: f64,
    pub uf_ghz: f64,
    pub watts: f64,
}

/// Percentage saving of `tuned` relative to `base` (positive = tuned
/// is better/lower).
pub fn saving_pct(base: f64, tuned: f64) -> f64 {
    (1.0 - tuned / base) * 100.0
}

/// Geometric mean of ratios expressed as savings percentages.
///
/// The paper reports geomean savings across benchmarks; each saving
/// `s%` corresponds to a ratio `1 − s/100`, and the geomean of the
/// ratios is converted back to a percentage.
pub fn geomean_saving(savings_pct: &[f64]) -> f64 {
    if savings_pct.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = savings_pct.iter().map(|s| (1.0 - s / 100.0).ln()).sum();
    (1.0 - (log_sum / savings_pct.len() as f64).exp()) * 100.0
}

/// Render a fixed-width table (plain text, like the paper's artifacts).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Scale for harness binaries: `CUTTLEFISH_SCALE` env var, default 1.0
/// (the paper's full-length runs).
pub fn harness_scale() -> workloads::Scale {
    let s = std::env::var("CUTTLEFISH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    workloads::Scale(s.clamp(0.01, 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        // Ratios 0.8 and 0.9 → geomean √0.72 ≈ 0.8485 → 15.15% saving.
        let g = geomean_saving(&[20.0, 10.0]);
        assert!((g - 15.147).abs() < 0.01, "got {g}");
        assert_eq!(geomean_saving(&[]), 0.0);
        // Negative savings (losses) are handled.
        let g2 = geomean_saving(&[-10.0, 10.0]);
        assert!(
            g2.abs() < 0.6,
            "symmetric gains/losses nearly cancel, got {g2}"
        );
    }

    #[test]
    fn saving_pct_signs() {
        assert!((saving_pct(100.0, 80.0) - 20.0).abs() < 1e-12);
        assert!((saving_pct(100.0, 110.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    fn setup_names_cover_every_arm() {
        assert_eq!(Setup::Default.name(), "Default");
        assert_eq!(
            Setup::Cuttlefish(Policy::CoreOnly).name(),
            "Cuttlefish-Core"
        );
        assert_eq!(Setup::Pinned(Freq(12), Freq(22)).name(), "Pinned");
        assert_eq!(Setup::Ondemand.name(), "Ondemand");
        assert_eq!(
            Setup::Ondemand.node_policy(Config::default()),
            NodePolicy::Ondemand
        );
    }
}
