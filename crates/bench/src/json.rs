//! Deterministic JSON encoding for the grid artifacts.
//!
//! The workspace's `serde` is an offline marker-only shim (see
//! `shims/README.md`), so the machine-readable artifacts the CI
//! pipeline gates on are encoded by this module instead: a small JSON
//! value type, a byte-deterministic emitter, and a parser. Determinism
//! is a hard requirement the real `serde_json` would not state as a
//! contract — the shard-invariance gate compares artifact *bytes*
//! across thread counts — so the emitter pins key order (insertion
//! order of [`Json::Obj`]) and number formatting (Rust's shortest
//! round-trip `Display`, which `parse::<f64>()` inverts exactly).

use std::fmt::Write as _;

/// A JSON document. Objects preserve insertion order; all numbers are
/// `f64` (every count this workspace serializes is < 2^53, so the
/// mapping is exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Error from parsing or typed decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// The number value, if any.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(v) => Ok(*v),
            other => err(format!("expected number, got {}", other.kind())),
        }
    }

    /// The number value as an exact unsigned integer.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) {
            Ok(v as u64)
        } else {
            err(format!("expected unsigned integer, got {v}"))
        }
    }

    /// The bool value, if any.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {}", other.kind())),
        }
    }

    /// The string value, if any.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {}", other.kind())),
        }
    }

    /// The array elements, if any.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, got {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Serialize to a deterministic pretty-printed string (2-space
    /// indent, `\n` line ends, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize to a deterministic single-line string (no spaces, no
    /// newline) — the wire form of line-delimited protocols. Parsing a
    /// compact document and re-emitting it with [`Json::to_pretty`]
    /// reproduces the pretty bytes exactly (and vice versa): both
    /// emitters share the same key order and number formatting, so the
    /// two forms are interchangeable representations of the same value.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                assert!(v.is_finite(), "JSON artifacts must hold finite numbers");
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                assert!(v.is_finite(), "JSON artifacts must hold finite numbers");
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        err(format!(
            "expected `{}` at byte {}, got {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number slice");
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Json::Num(v)),
        _ => err(format!("invalid number `{text}` at byte {start}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .filter(|h| h.bytes().all(|b| b.is_ascii_hexdigit()))
                            .ok_or_else(|| JsonError("bad \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError(format!("bad \\u escape `{hex}`")))?;
                        // Surrogate pairs never occur in this workspace's
                        // artifacts (ASCII labels); reject rather than
                        // mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| JsonError(format!("unpaired surrogate \\u{hex}")))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => return err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the maximal run up to the next quote or
                // escape in one shot — one UTF-8 validation per run,
                // not per character (per-character revalidation of the
                // remainder made parsing quadratic).
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                out.push_str(run);
            }
        }
    }
}

/// Types that encode themselves as [`Json`].
pub trait ToJson {
    /// Deterministic JSON form.
    fn to_json(&self) -> Json;
}

/// Types that decode themselves from [`Json`].
pub trait FromJson: Sized {
    /// Parse from the JSON form produced by [`ToJson`].
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str("Heat-irt \"ws\"\n".into())),
            ("count".into(), Json::Num(3.0)),
            ("share".into(), Json::Num(0.004)),
            ("neg".into(), Json::Num(-1.5e-9)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.25)]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ])
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let first = doc().to_pretty();
        let reparsed = Json::parse(&first).unwrap();
        assert_eq!(reparsed, doc());
        assert_eq!(reparsed.to_pretty(), first);
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for v in [0.004, 1.0 / 3.0, 6.02e23, 123456789.123456, 1e-12] {
            let text = Json::Num(v).to_pretty();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn accessors_and_errors() {
        let d = doc();
        assert_eq!(d.field("count").unwrap().as_u64().unwrap(), 3);
        assert_eq!(
            d.field("name").unwrap().as_str().unwrap().chars().count(),
            14
        );
        assert!(d.field("missing").is_err());
        assert!(
            d.field("share").unwrap().as_u64().is_err(),
            "0.004 not integral"
        );
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite rejected");
    }

    #[test]
    fn escapes_parse_back() {
        let j = Json::parse(r#""aA\t\\\"""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "aA\t\\\"");
    }

    #[test]
    fn compact_is_single_line_and_interchangeable_with_pretty() {
        let compact = doc().to_compact();
        assert!(!compact.contains('\n'), "wire form must be one line");
        assert!(!compact.contains(": "), "no pretty separators");
        let reparsed = Json::parse(&compact).unwrap();
        assert_eq!(reparsed, doc());
        // Round-tripping between the two emitters is lossless at the
        // byte level in both directions.
        assert_eq!(reparsed.to_pretty(), doc().to_pretty());
        assert_eq!(
            Json::parse(&doc().to_pretty()).unwrap().to_compact(),
            compact
        );
    }
}
