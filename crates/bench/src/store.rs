//! Content-addressed result store: memoized grid cells keyed by
//! `H(cell identity ‖ code version)`.
//!
//! Every grid cell is a deterministic function of two inputs — the
//! canonical cell identity (machine × scale × [`CellSpec`], the grid
//! embedding of the cell's [`Scenario`](crate::scenario::Scenario))
//! and the code that interprets it. The store exploits that: it maps
//! the FNV-1a digest of those two inputs to the serialized
//! [`CellResult`] plus the deterministic stepping counters, so a
//! re-run recomputes only cells whose bytes or code actually changed.
//! Correctness is checkable bit-for-bit because both the identity and
//! the result round-trip byte-exactly through `bench::json`.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/                        default target/cuttlefish-store/,
//!                                overridable via --store/CUTTLEFISH_STORE
//!   objects/<hh>/<key16>.json    one entry per (identity, code version);
//!                                <hh> = first two hex digits of the key
//!   hints/<cell16>.json          last wall-clock per identity (any code
//!                                version) — the LPT dispatch cost model
//! ```
//!
//! Entries are immutable once written (content-addressed: same key ⇒
//! same bytes) and committed atomically (tmp file + rename), so
//! concurrent shards and concurrent grid invocations can share a root
//! without locking — the worst case is two writers racing to create
//! the identical entry. Hints are advisory and last-write-wins.
//!
//! # Invalidation
//!
//! There is no expiry and no mutation: a cell is invalidated by its
//! *key changing*. Flipping any identity byte (benchmark, scale,
//! config, fleet, seed, stepping mode, …) or any workspace source byte
//! (the build-time fingerprint from `build.rs`, override
//! `CUTTLEFISH_CODE_VERSION`) yields a fresh key and therefore a miss;
//! stale entries linger harmlessly until [`Store::gc`] sweeps the ones
//! whose recorded code version no longer matches. A corrupt or
//! truncated entry never replays: [`Store::load`] re-derives the
//! result digest from the decoded bytes and treats any mismatch — or
//! any parse failure — as a miss, falling back to recompute (which
//! rewrites the entry).

use crate::grid::{CellResult, CellTiming};
use crate::json::{FromJson, Json, ToJson};
use crate::scenario::obj;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format tag embedded in every store entry.
pub const ENTRY_SCHEMA: &str = "cuttlefish/store-entry/v1";

/// Format tag embedded in every wall-clock hint.
pub const HINT_SCHEMA: &str = "cuttlefish/store-hint/v1";

/// The workspace source digest baked in at build time (see
/// `crates/bench/build.rs`) — the default code-version half of every
/// store key.
pub const BUILD_FINGERPRINT: &str = env!("CUTTLEFISH_CODE_FINGERPRINT");

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over `bytes` — the store's one hash, hand-rolled like the
/// rest of `bench::json`'s determinism discipline (no new deps).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV_OFFSET, bytes)
}

fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The two digests addressing one cell in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellKey {
    /// `H(identity)` — code-version independent. Addresses the
    /// wall-clock hint, so cost estimates survive code changes.
    pub cell_hash: u64,
    /// `H(identity ‖ 0x00 ‖ code version)` — the store key proper.
    pub key_hash: u64,
}

impl CellKey {
    /// The store key as the 16-hex-digit entry filename stem.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.key_hash)
    }

    /// The identity digest as 16 hex digits (the hint filename stem).
    pub fn cell_hex(&self) -> String {
        format!("{:016x}", self.cell_hash)
    }
}

/// One decoded, digest-verified store entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// The memoized cell result, byte-identical to the miss path's.
    pub result: CellResult,
    /// `[stepped, idle_advanced, busy_advanced, total]` quanta of the
    /// committing run — deterministic virtual quantities, so a hit
    /// restores them verbatim (the fast-forward CI floors stay honest
    /// on warm runs).
    pub quanta: [u64; 4],
    /// Host wall-clock of the committing run, milliseconds.
    pub wall_ms: f64,
}

/// Cheap per-entry metadata for `store ls`/`verify`/`gc`.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryMeta {
    /// Entry key, 16 hex digits.
    pub key: String,
    /// Identity digest, 16 hex digits.
    pub cell: String,
    /// Code version the entry was computed under.
    pub code_version: String,
    /// Benchmark name (display only).
    pub bench: String,
    /// Setup label (display only).
    pub label: String,
    /// Wall-clock of the committing run, milliseconds.
    pub wall_ms: f64,
    /// Entry file size, bytes.
    pub bytes: u64,
}

/// Aggregate shape of a store — the `store stats` subcommand and the
/// serve daemon's `stats` response share this one computation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreStats {
    /// Decodable entries under `objects/`.
    pub entries: u64,
    /// Entry files that failed to decode (still counted in `bytes`).
    pub corrupt: u64,
    /// Total bytes of all entry files.
    pub bytes: u64,
    /// Distinct code versions across the decodable entries.
    pub code_versions: u64,
    /// Wall-clock hint files under `hints/`.
    pub hints: u64,
    /// Fraction of the distinct cell identities among decodable
    /// entries that have a hint (the LPT cost model's coverage);
    /// `1.0` for an empty store.
    pub hint_coverage: f64,
}

impl ToJson for StoreStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("entries", Json::Num(self.entries as f64)),
            ("corrupt", Json::Num(self.corrupt as f64)),
            ("bytes", Json::Num(self.bytes as f64)),
            ("code_versions", Json::Num(self.code_versions as f64)),
            ("hints", Json::Num(self.hints as f64)),
            ("hint_coverage", Json::Num(self.hint_coverage)),
        ])
    }
}

impl FromJson for StoreStats {
    fn from_json(j: &Json) -> Result<Self, crate::json::JsonError> {
        Ok(StoreStats {
            entries: j.field("entries")?.as_u64()?,
            corrupt: j.field("corrupt")?.as_u64()?,
            bytes: j.field("bytes")?.as_u64()?,
            code_versions: j.field("code_versions")?.as_u64()?,
            hints: j.field("hints")?.as_u64()?,
            hint_coverage: j.field("hint_coverage")?.as_f64()?,
        })
    }
}

/// What [`Store::gc`] swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Entries whose code version still matches.
    pub kept: usize,
    /// Entries removed (stale code version or undecodable).
    pub removed: usize,
    /// Bytes freed by the removals.
    pub bytes_freed: u64,
}

/// A content-addressed result store rooted at one directory.
///
/// Opening is free (no I/O); directories are created lazily on the
/// first commit, so a read-only consumer never writes.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    code_version: String,
}

/// Resolve the store root: explicit flag value, else the
/// `CUTTLEFISH_STORE` environment variable, else
/// `target/cuttlefish-store`.
pub fn resolve_root(flag: Option<PathBuf>) -> PathBuf {
    flag.or_else(|| std::env::var_os("CUTTLEFISH_STORE").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("target/cuttlefish-store"))
}

impl Store {
    /// Open a store at `root` under the build's own code version
    /// ([`BUILD_FINGERPRINT`], overridable at runtime via the
    /// `CUTTLEFISH_CODE_VERSION` environment variable — the lever CI
    /// uses to force cold runs without touching sources).
    pub fn open(root: impl Into<PathBuf>) -> Store {
        let code_version = std::env::var("CUTTLEFISH_CODE_VERSION")
            .unwrap_or_else(|_| BUILD_FINGERPRINT.to_string());
        Store {
            root: root.into(),
            code_version,
        }
    }

    /// Open a store pinned to an explicit code version — the test
    /// hook for exercising fingerprint invalidation without the
    /// process-global environment variable.
    pub fn with_code_version(root: impl Into<PathBuf>, code_version: impl Into<String>) -> Store {
        Store {
            root: root.into(),
            code_version: code_version.into(),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The code-version fingerprint keys are derived under.
    pub fn code_version(&self) -> &str {
        &self.code_version
    }

    /// Derive the store key for one canonical identity:
    /// `cell_hash = H(identity)`,
    /// `key_hash = H(identity ‖ 0x00 ‖ code version)`.
    pub fn key(&self, identity: &[u8]) -> CellKey {
        let cell_hash = fnv1a64(identity);
        let mut key_hash = fnv1a64_update(fnv1a64(identity), &[0]);
        key_hash = fnv1a64_update(key_hash, self.code_version.as_bytes());
        CellKey {
            cell_hash,
            key_hash,
        }
    }

    fn entry_path(&self, key: &CellKey) -> PathBuf {
        let hex = key.hex();
        self.root
            .join("objects")
            .join(&hex[..2])
            .join(format!("{hex}.json"))
    }

    fn hint_path(&self, key: &CellKey) -> PathBuf {
        self.root
            .join("hints")
            .join(format!("{}.json", key.cell_hex()))
    }

    /// Load and verify the entry for `key`. Returns `None` on *any*
    /// defect — missing, truncated, undecodable, wrong key, wrong code
    /// version, or result-digest mismatch — so the caller's only
    /// fallback is the one that is always correct: recompute.
    pub fn load(&self, key: &CellKey) -> Option<StoreEntry> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        self.decode_entry(key, &text).ok()
    }

    fn decode_entry(&self, key: &CellKey, text: &str) -> Result<StoreEntry, String> {
        let j = Json::parse(text).map_err(|e| e.0)?;
        let schema = j.field("schema").and_then(Json::as_str).map_err(|e| e.0)?;
        if schema != ENTRY_SCHEMA {
            return Err(format!("unsupported entry schema `{schema}`"));
        }
        let stored_key = j.field("key").and_then(Json::as_str).map_err(|e| e.0)?;
        if stored_key != key.hex() {
            return Err(format!(
                "entry key `{stored_key}` != requested `{}`",
                key.hex()
            ));
        }
        let cv = j
            .field("code_version")
            .and_then(Json::as_str)
            .map_err(|e| e.0)?;
        if cv != self.code_version {
            return Err(format!(
                "entry code version `{cv}` != current `{}`",
                self.code_version
            ));
        }
        let result = CellResult::from_json(j.field("result").map_err(|e| e.0)?).map_err(|e| e.0)?;
        let digest = j
            .field("result_digest")
            .and_then(Json::as_str)
            .map_err(|e| e.0)?;
        let actual = format!("{:016x}", fnv1a64(result.to_json().to_pretty().as_bytes()));
        if digest != actual {
            return Err(format!(
                "result digest mismatch (stored {digest}, decoded {actual})"
            ));
        }
        let quanta_field = |name: &str| -> Result<u64, String> {
            j.field(name).and_then(Json::as_u64).map_err(|e| e.0)
        };
        Ok(StoreEntry {
            result,
            quanta: [
                quanta_field("stepped_quanta")?,
                quanta_field("idle_advanced_quanta")?,
                quanta_field("busy_advanced_quanta")?,
                quanta_field("total_quanta")?,
            ],
            wall_ms: j.field("wall_ms").and_then(Json::as_f64).map_err(|e| e.0)?,
        })
    }

    /// Commit one executed cell under `key`, atomically, plus its
    /// wall-clock hint. Never called for a hit, so the miss-path wall
    /// clock in `timing` is the genuine compute cost.
    pub fn commit(
        &self,
        key: &CellKey,
        result: &CellResult,
        timing: &CellTiming,
    ) -> io::Result<()> {
        let result_json = result.to_json().to_pretty();
        let entry = obj(vec![
            ("schema", Json::Str(ENTRY_SCHEMA.into())),
            ("key", Json::Str(key.hex())),
            ("cell", Json::Str(key.cell_hex())),
            ("code_version", Json::Str(self.code_version.clone())),
            ("bench", Json::Str(result.spec.bench.clone())),
            ("label", Json::Str(result.spec.label.clone())),
            ("wall_ms", Json::Num(timing.wall_ms)),
            ("stepped_quanta", Json::Num(timing.stepped_quanta as f64)),
            (
                "idle_advanced_quanta",
                Json::Num(timing.idle_advanced_quanta as f64),
            ),
            (
                "busy_advanced_quanta",
                Json::Num(timing.busy_advanced_quanta as f64),
            ),
            ("total_quanta", Json::Num(timing.total_quanta as f64)),
            (
                "result_digest",
                Json::Str(format!("{:016x}", fnv1a64(result_json.as_bytes()))),
            ),
            ("result", Json::parse(&result_json).expect("canonical JSON")),
        ]);
        write_atomic(&self.entry_path(key), &entry.to_pretty())?;
        let hint = obj(vec![
            ("schema", Json::Str(HINT_SCHEMA.into())),
            ("wall_ms", Json::Num(timing.wall_ms)),
        ]);
        write_atomic(&self.hint_path(key), &hint.to_pretty())
    }

    /// Last recorded compute wall-clock for this cell identity, under
    /// *any* code version — the LPT dispatch cost estimate. `None`
    /// means the cell was never computed here (dispatch first, at
    /// estimated-max).
    pub fn wall_hint(&self, key: &CellKey) -> Option<f64> {
        let text = std::fs::read_to_string(self.hint_path(key)).ok()?;
        let j = Json::parse(&text).ok()?;
        if j.field("schema").and_then(Json::as_str).ok()? != HINT_SCHEMA {
            return None;
        }
        j.field("wall_ms").and_then(Json::as_f64).ok()
    }

    /// Every hint file under `hints/`, sorted by cell digest.
    pub fn hint_files(&self) -> Vec<PathBuf> {
        let mut files = Vec::new();
        if let Ok(entries) = std::fs::read_dir(self.root.join("hints")) {
            files.extend(
                entries
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "json")),
            );
        }
        files.sort();
        files
    }

    /// Aggregate shape of the store: entry/byte counts, distinct code
    /// versions, and how much of the cell population the LPT wall-clock
    /// hints cover. One directory sweep, no digest verification.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        let mut versions: std::collections::BTreeSet<String> = Default::default();
        let mut cells: std::collections::BTreeSet<String> = Default::default();
        for path in self.entry_files() {
            stats.bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            match Store::describe(&path) {
                Ok(meta) => {
                    stats.entries += 1;
                    versions.insert(meta.code_version);
                    cells.insert(meta.cell);
                }
                Err(_) => stats.corrupt += 1,
            }
        }
        stats.code_versions = versions.len() as u64;
        let hinted: std::collections::BTreeSet<String> = self
            .hint_files()
            .iter()
            .filter_map(|p| p.file_stem().and_then(|s| s.to_str()).map(str::to_string))
            .collect();
        stats.hints = hinted.len() as u64;
        stats.hint_coverage = if cells.is_empty() {
            1.0
        } else {
            cells.iter().filter(|c| hinted.contains(*c)).count() as f64 / cells.len() as f64
        };
        stats
    }

    /// Every entry file under `objects/`, sorted by key (the two-hex
    /// prefix directory is the key's own first two digits, so the
    /// lexicographic path order *is* ascending key order — `store ls`
    /// output must not depend on filesystem directory-iteration order).
    pub fn entry_files(&self) -> Vec<PathBuf> {
        let mut files = Vec::new();
        let objects = self.root.join("objects");
        let Ok(prefixes) = std::fs::read_dir(&objects) else {
            return files;
        };
        for prefix in prefixes.flatten() {
            if let Ok(entries) = std::fs::read_dir(prefix.path()) {
                files.extend(
                    entries
                        .flatten()
                        .map(|e| e.path())
                        .filter(|p| p.extension().is_some_and(|e| e == "json")),
                );
            }
        }
        files.sort();
        files
    }

    /// Decode one entry file's metadata without verifying digests —
    /// the `store ls` view. Errors name the defect.
    pub fn describe(path: &Path) -> Result<EntryMeta, String> {
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let j = Json::parse(&text).map_err(|e| e.0)?;
        let field = |name: &str| -> Result<String, String> {
            Ok(j.field(name)
                .and_then(Json::as_str)
                .map_err(|e| e.0)?
                .to_string())
        };
        Ok(EntryMeta {
            key: field("key")?,
            cell: field("cell")?,
            code_version: field("code_version")?,
            bench: field("bench")?,
            label: field("label")?,
            wall_ms: j.field("wall_ms").and_then(Json::as_f64).map_err(|e| e.0)?,
            bytes,
        })
    }

    /// Fully verify one entry file: decodable, schema and filename
    /// consistent, result digest intact. The `store verify` workhorse.
    pub fn verify_file(&self, path: &Path) -> Result<EntryMeta, String> {
        let meta = Store::describe(path)?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| "entry filename is not UTF-8".to_string())?;
        if stem != meta.key {
            return Err(format!("filename `{stem}` != entry key `{}`", meta.key));
        }
        let key_hash = u64::from_str_radix(&meta.key, 16)
            .map_err(|_| format!("entry key `{}` is not 16 hex digits", meta.key))?;
        let cell_hash = u64::from_str_radix(&meta.cell, 16)
            .map_err(|_| format!("entry cell `{}` is not 16 hex digits", meta.cell))?;
        let key = CellKey {
            cell_hash,
            key_hash,
        };
        // Digest + schema verification, under the entry's own recorded
        // code version: `verify` audits integrity, not freshness.
        let pinned = Store::with_code_version(&self.root, meta.code_version.clone());
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        pinned.decode_entry(&key, &text)?;
        Ok(meta)
    }

    /// Sweep entries that can never hit again under the current code
    /// version: stale fingerprints and undecodable files. Hints are
    /// kept — they are the cost model that survives code changes.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for path in self.entry_files() {
            let fresh = Store::describe(&path).is_ok_and(|m| m.code_version == self.code_version);
            if fresh {
                report.kept += 1;
            } else {
                report.bytes_freed += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(&path)?;
                report.removed += 1;
            }
        }
        Ok(report)
    }

    /// Remove every entry whose key starts with `prefix` (hex digits).
    /// Returns how many were removed.
    pub fn remove_prefix(&self, prefix: &str) -> io::Result<usize> {
        let mut removed = 0;
        for path in self.entry_files() {
            let matches = path
                .file_stem()
                .and_then(|s| s.to_str())
                .is_some_and(|stem| stem.starts_with(prefix));
            if matches {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Write `contents` to `path` atomically: unique tmp file in the same
/// directory, then rename. Concurrent committers of the same key race
/// benignly — both rename identical bytes into place.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().expect("store paths have parents");
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".tmp.{}.{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn keys_separate_identity_and_code_version() {
        let a = Store::with_code_version("/tmp/unused", "v1");
        let b = Store::with_code_version("/tmp/unused", "v2");
        let k1 = a.key(b"identity");
        let k2 = b.key(b"identity");
        let k3 = a.key(b"identitz");
        // Same identity: shared hint address, distinct store keys.
        assert_eq!(k1.cell_hash, k2.cell_hash);
        assert_ne!(k1.key_hash, k2.key_hash);
        // Different identity: everything moves.
        assert_ne!(k1.cell_hash, k3.cell_hash);
        assert_ne!(k1.key_hash, k3.key_hash);
        // The concatenation is separator-guarded: identity bytes must
        // not bleed into the code version.
        assert_ne!(
            a.key(b"ab").key_hash,
            Store::with_code_version("/tmp/unused", "bv1")
                .key(b"a")
                .key_hash
        );
    }
}
