//! Tiny shared argument parser for the figure/table bins.
//!
//! Every bin accepts the same grid flags:
//!
//! * `--shards N` — worker threads for the scenario grid (default: all
//!   available cores);
//! * `--smoke` — run the bin's reduced smoke grid at a fixed small
//!   scale (the CI "bench smoke" stage), ignoring `CUTTLEFISH_SCALE`;
//! * `--json PATH` — additionally write the [`GridResult`] artifact;
//! * `--scenario FILE` — instead of the grid, run one scenario from a
//!   JSON file (see `bench::scenario`): any imaginable cell without
//!   recompiling. With `--json` the one-cell artifact is written, and
//!   a cell described by a scenario file reproduces the grid's cell
//!   bytes bit for bit;
//! * `--list` — print the grid's enumerated cells and exit;
//! * `--store PATH` — content-addressed result store to replay hits
//!   from and commit misses to (default `target/cuttlefish-store`,
//!   or the `CUTTLEFISH_STORE` environment variable — see
//!   [`bench::store`](crate::store));
//! * `--no-store` — bypass the store entirely (every cell executes).
//!
//! Bin-specific flags (`--csv`, positionals) pass through untouched.

use crate::grid::{GridResult, GridSpec, GridTiming};
use crate::json::ToJson;
use crate::scenario::Scenario;
use crate::store::{resolve_root, Store};

/// Scale every `--smoke` grid runs at: small enough for PR-time CI,
/// large enough that daemons resolve optima on the short benchmarks.
pub const SMOKE_SCALE: f64 = 0.05;

/// Parsed common flags plus pass-through arguments.
#[derive(Debug, Clone)]
pub struct GridArgs {
    /// Worker threads for `GridSpec::run`.
    pub shards: usize,
    /// Reduced-grid mode.
    pub smoke: bool,
    /// Artifact output path.
    pub json: Option<std::path::PathBuf>,
    /// Scenario file to run instead of the grid.
    pub scenario: Option<std::path::PathBuf>,
    /// List the grid's cells instead of running.
    pub list: bool,
    /// Explicit result-store root (`--store`).
    pub store_root: Option<std::path::PathBuf>,
    /// Bypass the result store (`--no-store`).
    pub no_store: bool,
    rest: Vec<String>,
}

impl GridArgs {
    /// Parse `std::env::args`; `usage` is printed on `--help` or on a
    /// malformed flag. Unknown `--flags` are fatal (a typo like
    /// `--smoek` must not silently run the full paper-scale grid);
    /// bins with extra flags declare them via [`GridArgs::parse_with`].
    pub fn parse(usage: &str) -> GridArgs {
        Self::parse_with(usage, &[])
    }

    /// [`GridArgs::parse`] with bin-specific boolean flags (e.g.
    /// `&["--csv"]`) passed through to [`GridArgs::take_flag`].
    pub fn parse_with(usage: &str, extra_flags: &[&str]) -> GridArgs {
        let mut shards = default_shards();
        let mut smoke = false;
        let mut json = None;
        let mut scenario = None;
        let mut list = false;
        let mut store_root = None;
        let mut no_store = false;
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--shards" => {
                    shards = args
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die(usage, "--shards needs a positive integer"));
                }
                "--json" => {
                    json = Some(std::path::PathBuf::from(
                        args.next()
                            .unwrap_or_else(|| die(usage, "--json needs a path")),
                    ));
                }
                "--scenario" => {
                    scenario = Some(std::path::PathBuf::from(
                        args.next()
                            .unwrap_or_else(|| die(usage, "--scenario needs a path")),
                    ));
                }
                "--list" => list = true,
                "--smoke" => smoke = true,
                "--store" => {
                    store_root = Some(std::path::PathBuf::from(
                        args.next()
                            .unwrap_or_else(|| die(usage, "--store needs a path")),
                    ));
                }
                "--no-store" => no_store = true,
                "--help" | "-h" => {
                    println!("{usage}");
                    std::process::exit(0);
                }
                other if other.starts_with("--") && !extra_flags.contains(&other) => {
                    die(usage, &format!("unknown flag `{other}`"));
                }
                _ => rest.push(arg),
            }
        }
        GridArgs {
            shards,
            smoke,
            json,
            scenario,
            list,
            store_root,
            no_store,
            rest,
        }
    }

    /// The result store this invocation runs against: `None` under
    /// `--no-store`, otherwise a [`Store`] at the `--store` path /
    /// `CUTTLEFISH_STORE` / `target/cuttlefish-store` root. Opening is
    /// free, so bins resolve this once and pass it down.
    pub fn store(&self) -> Option<Store> {
        if self.no_store {
            return None;
        }
        Some(Store::open(resolve_root(self.store_root.clone())))
    }

    /// Run `spec` with this invocation's shard count and store — the
    /// one-line body of every figure/table bin.
    pub fn run_grid(&self, spec: &GridSpec) -> (GridResult, GridTiming) {
        spec.run_timed_store(self.shards, self.store().as_ref())
    }

    /// Handle `--list` and `--scenario` for this bin's grid. Returns
    /// `true` when the invocation was fully handled and the bin should
    /// exit without running its grid.
    ///
    /// `--list` prints every enumerated cell (index, benchmark, label,
    /// cluster shape) — the catalogue a scenario file can reproduce.
    /// `--scenario FILE` parses and validates the file, runs it through
    /// exactly the grid's per-cell path, prints a one-line outcome, and
    /// honours `--json` with the one-cell artifact.
    pub fn handle_scenario_or_list(&self, spec: &GridSpec) -> bool {
        if self.list {
            let cells = spec.cells();
            println!(
                "{}: {} cells (scale {})",
                spec.name,
                cells.len(),
                spec.scale
            );
            for (i, c) in cells.iter().enumerate() {
                let mut shape = format!("nodes={}", c.nodes);
                if let Some(b) = &c.bsp {
                    shape.push_str(&format!(" bsp={}x{:.0}B", b.supersteps, b.comm_bytes));
                }
                if c.machines.is_some() {
                    shape.push_str(" hetero");
                }
                if c.trace {
                    shape.push_str(" trace");
                }
                println!(
                    "  [{i:>3}] {:<10} {:<22} rep={} {}",
                    c.bench, c.label, c.rep, shape
                );
            }
            return true;
        }
        let Some(path) = &self.scenario else {
            return false;
        };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        let scenario = Scenario::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!(
                "error: {} is not a valid scenario file: {e}",
                path.display()
            );
            std::process::exit(2);
        });
        // Artifacts embed the grid's cell format, which only covers
        // grid-expressible scenarios (benchmark workloads, uniform
        // policies, harness seeds); everything the file schema allows
        // still *runs* — without `--json`, execute directly.
        match crate::grid::run_scenario_timed(&scenario, self.store().as_ref()) {
            Ok((result, timing)) => {
                self.finish_timed(&result, &timing);
                let cell = &result.cells[0];
                print_outcome(&scenario, cell.seconds, cell.joules, cell.instructions);
            }
            Err(reason) if self.json.is_none() => {
                let wall = std::time::Instant::now();
                let outcome = scenario.run();
                eprintln!(
                    "{}: stepped {} of {} quanta (idle-adv {}, busy-adv {}), {:.1} ms wall \
                     (cell format not applicable: {reason})",
                    scenario.label,
                    outcome.stepped_quanta(),
                    outcome.total_quanta(),
                    outcome.idle_advanced_quanta(),
                    outcome.busy_advanced_quanta(),
                    wall.elapsed().as_secs_f64() * 1e3,
                );
                print_outcome(
                    &scenario,
                    outcome.seconds(),
                    outcome.joules(),
                    outcome.instructions(),
                );
            }
            Err(reason) => {
                eprintln!(
                    "error: scenario {} cannot be written as a --json grid artifact: \
                     {reason} (drop --json to run it anyway)",
                    path.display()
                );
                std::process::exit(2);
            }
        }
        true
    }

    /// Consume a bin-specific boolean flag (e.g. `--csv`).
    pub fn take_flag(&mut self, name: &str) -> bool {
        match self.rest.iter().position(|a| a == name) {
            Some(idx) => {
                self.rest.remove(idx);
                true
            }
            None => false,
        }
    }

    /// Remaining positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.rest
    }

    /// The scale this invocation runs at: `--smoke` pins
    /// [`SMOKE_SCALE`] (CI artifacts must not depend on the
    /// environment); otherwise `CUTTLEFISH_SCALE` applies as before.
    pub fn scale(&self) -> f64 {
        if self.smoke {
            SMOKE_SCALE
        } else {
            crate::harness_scale().0
        }
    }

    /// Write the artifact if `--json` was given. Exits non-zero on I/O
    /// failure so CI cannot mistake a missing artifact for success.
    pub fn finish(&self, result: &GridResult) {
        if let Some(path) = &self.json {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    die_io(path, &e);
                }
            }
            if let Err(e) = std::fs::write(path, result.to_json_string()) {
                die_io(path, &e);
            }
            eprintln!(
                "{}: wrote {} cells to {}",
                result.grid,
                result.cells.len(),
                path.display()
            );
        }
    }

    /// [`finish`](GridArgs::finish), plus the run's timing: prints the
    /// before/after stepping-rate line (under the pure quantum loop
    /// every virtual quantum was an engine step; the line shows how
    /// many still are) and, next to a `--json` artifact, writes a
    /// `<artifact>.timing` sidecar the aggregate step folds into
    /// `BENCH_smoke.json` metadata. Timing never enters the artifact
    /// itself — those bytes stay deterministic.
    pub fn finish_timed(&self, result: &GridResult, timing: &GridTiming) {
        self.finish(result);
        eprintln!("{}", timing.stepping_summary());
        if let Some(path) = &self.json {
            let mut sidecar = path.as_os_str().to_owned();
            sidecar.push(".timing");
            let sidecar = std::path::PathBuf::from(sidecar);
            if let Err(e) = std::fs::write(&sidecar, timing.to_json().to_pretty()) {
                die_io(&sidecar, &e);
            }
        }
    }
}

/// One-line scenario outcome summary.
fn print_outcome(scenario: &Scenario, seconds: f64, joules: f64, instructions: f64) {
    println!(
        "{}: {} on {} node(s) — {:.3} s, {:.1} J, {:.3e} instructions",
        scenario.label,
        scenario.workload.name(),
        scenario.n_nodes(),
        seconds,
        joules,
        instructions
    );
}

/// Default shard count: every available core.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn die(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}\n{usage}");
    std::process::exit(2);
}

fn die_io(path: &std::path::Path, e: &std::io::Error) -> ! {
    eprintln!("error: cannot write {}: {e}", path.display());
    std::process::exit(1);
}
