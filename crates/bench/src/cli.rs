//! Tiny shared argument parser for the figure/table bins.
//!
//! Every bin accepts the same three grid flags:
//!
//! * `--shards N` — worker threads for the scenario grid (default: all
//!   available cores);
//! * `--smoke` — run the bin's reduced smoke grid at a fixed small
//!   scale (the CI "bench smoke" stage), ignoring `CUTTLEFISH_SCALE`;
//! * `--json PATH` — additionally write the [`GridResult`] artifact.
//!
//! Bin-specific flags (`--csv`, positionals) pass through untouched.

use crate::grid::{GridResult, GridTiming};
use crate::json::ToJson;

/// Scale every `--smoke` grid runs at: small enough for PR-time CI,
/// large enough that daemons resolve optima on the short benchmarks.
pub const SMOKE_SCALE: f64 = 0.05;

/// Parsed common flags plus pass-through arguments.
#[derive(Debug, Clone)]
pub struct GridArgs {
    /// Worker threads for `GridSpec::run`.
    pub shards: usize,
    /// Reduced-grid mode.
    pub smoke: bool,
    /// Artifact output path.
    pub json: Option<std::path::PathBuf>,
    rest: Vec<String>,
}

impl GridArgs {
    /// Parse `std::env::args`; `usage` is printed on `--help` or on a
    /// malformed flag. Unknown `--flags` are fatal (a typo like
    /// `--smoek` must not silently run the full paper-scale grid);
    /// bins with extra flags declare them via [`GridArgs::parse_with`].
    pub fn parse(usage: &str) -> GridArgs {
        Self::parse_with(usage, &[])
    }

    /// [`GridArgs::parse`] with bin-specific boolean flags (e.g.
    /// `&["--csv"]`) passed through to [`GridArgs::take_flag`].
    pub fn parse_with(usage: &str, extra_flags: &[&str]) -> GridArgs {
        let mut shards = default_shards();
        let mut smoke = false;
        let mut json = None;
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--shards" => {
                    shards = args
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die(usage, "--shards needs a positive integer"));
                }
                "--json" => {
                    json = Some(std::path::PathBuf::from(
                        args.next()
                            .unwrap_or_else(|| die(usage, "--json needs a path")),
                    ));
                }
                "--smoke" => smoke = true,
                "--help" | "-h" => {
                    println!("{usage}");
                    std::process::exit(0);
                }
                other if other.starts_with("--") && !extra_flags.contains(&other) => {
                    die(usage, &format!("unknown flag `{other}`"));
                }
                _ => rest.push(arg),
            }
        }
        GridArgs {
            shards,
            smoke,
            json,
            rest,
        }
    }

    /// Consume a bin-specific boolean flag (e.g. `--csv`).
    pub fn take_flag(&mut self, name: &str) -> bool {
        match self.rest.iter().position(|a| a == name) {
            Some(idx) => {
                self.rest.remove(idx);
                true
            }
            None => false,
        }
    }

    /// Remaining positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.rest
    }

    /// The scale this invocation runs at: `--smoke` pins
    /// [`SMOKE_SCALE`] (CI artifacts must not depend on the
    /// environment); otherwise `CUTTLEFISH_SCALE` applies as before.
    pub fn scale(&self) -> f64 {
        if self.smoke {
            SMOKE_SCALE
        } else {
            crate::harness_scale().0
        }
    }

    /// Write the artifact if `--json` was given. Exits non-zero on I/O
    /// failure so CI cannot mistake a missing artifact for success.
    pub fn finish(&self, result: &GridResult) {
        if let Some(path) = &self.json {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    die_io(path, &e);
                }
            }
            if let Err(e) = std::fs::write(path, result.to_json_string()) {
                die_io(path, &e);
            }
            eprintln!(
                "{}: wrote {} cells to {}",
                result.grid,
                result.cells.len(),
                path.display()
            );
        }
    }

    /// [`finish`](GridArgs::finish), plus the run's timing: prints the
    /// before/after stepping-rate line (under the pure quantum loop
    /// every virtual quantum was an engine step; the line shows how
    /// many still are) and, next to a `--json` artifact, writes a
    /// `<artifact>.timing` sidecar the aggregate step folds into
    /// `BENCH_smoke.json` metadata. Timing never enters the artifact
    /// itself — those bytes stay deterministic.
    pub fn finish_timed(&self, result: &GridResult, timing: &GridTiming) {
        self.finish(result);
        eprintln!("{}", timing.stepping_summary());
        if let Some(path) = &self.json {
            let mut sidecar = path.as_os_str().to_owned();
            sidecar.push(".timing");
            let sidecar = std::path::PathBuf::from(sidecar);
            if let Err(e) = std::fs::write(&sidecar, timing.to_json().to_pretty()) {
                die_io(&sidecar, &e);
            }
        }
    }
}

/// Default shard count: every available core.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn die(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}\n{usage}");
    std::process::exit(2);
}

fn die_io(path: &std::path::Path, e: &std::io::Error) -> ! {
    eprintln!("error: cannot write {}: {e}", path.display());
    std::process::exit(1);
}
