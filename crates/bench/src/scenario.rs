//! The Scenario API: one declarative, serializable description of
//! *machine × policy × workload × topology*, consumed everywhere.
//!
//! The paper's evaluation is "benchmark × setup × node count" (§5);
//! before this module, describing one such experiment was scattered
//! across ad-hoc entry points — a harness `run_on(...)` call here, a
//! `Cluster::with_spec`/`with_nodes` there, hand-assembled cell
//! structs in the bins. [`Scenario`] is now the single description:
//!
//! * **nodes** — one `(MachineSpec, NodePolicy)` pair per node (one
//!   pair = a single package; several = an MPI+X-style cluster, and
//!   the pairs may differ — mixed fleets, stragglers, per-node
//!   governors);
//! * **workload** — a [`WorkloadSpec`]: a Table 1 benchmark under a
//!   programming model at a scale, or a synthetic chunk stream;
//! * **topology** — [`Topology::SingleNode`], [`Topology::Replicated`]
//!   (every node runs the workload independently, final barrier + one
//!   exchange), or [`Topology::Bsp`] (the workload strong-scaled into
//!   supersteps, each ending in a barrier and an α–β exchange);
//! * **seed / duration / trace** — instantiation seed, an optional
//!   virtual-time cap for endless streams, and `Tinv`-rate trace
//!   collection.
//!
//! A scenario round-trips through the deterministic JSON codec
//! ([`Scenario::to_json_string`] / [`Scenario::from_json_str`], schema
//! [`SCENARIO_SCHEMA`]), so any imaginable cell is runnable from a
//! file without recompiling (`--scenario` on every figure/table bin),
//! and executes via [`Scenario::run`]. The grid runner
//! (`bench::grid`), the bins, the examples, and the equivalence tests
//! all construct experiments exclusively through this type.

use crate::{RunOutcome, TracePoint, HARNESS_SEED};
use cluster::{BspApp, Cluster, CommModel, ReplicatedProgram, SteppingMode};
use cuttlefish::controller::{NodePolicy, OracleEntry, OracleTable, PidGains};
use cuttlefish::daemon::NodeReport;
use cuttlefish::{Config, Policy, TipiSlab};
use simproc::freq::{Freq, FreqDomain, MachineSpec, HASWELL_2650V3};
use simproc::profile::{delta, CounterSnapshot};
use simproc::SimProcessor;
use std::collections::BTreeMap;
use workloads::{BuiltWorkload, ChunkPhase, ProgModel, SyntheticSpec, WorkloadSpec};

use crate::json::{FromJson, Json, JsonError, ToJson};

/// Schema tag of a serialized [`Scenario`].
pub const SCENARIO_SCHEMA: &str = "cuttlefish/scenario/v1";

/// How a scenario's nodes cooperate.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// One package, the evaluation-harness shape (traces allowed).
    SingleNode,
    /// Every node runs the workload independently (distinct per-node
    /// seeds), then all nodes meet at one final barrier and pay one
    /// exchange — "the same benchmark replicated over N nodes".
    Replicated,
    /// Bulk-synchronous strong scaling (§4.6): the workload's chunk
    /// stream is sliced into `supersteps` rounds dealt across the
    /// nodes, each round ending in a barrier plus an α–β exchange of
    /// `comm_bytes` per node.
    Bsp {
        /// Superstep count.
        supersteps: u32,
        /// Bytes exchanged per node per superstep (α and bandwidth
        /// keep the [`CommModel`] defaults).
        comm_bytes: f64,
        /// Per-node work multipliers for synthetic workloads (empty =
        /// balanced). `weights[i]` copies of the synthetic cycle land
        /// on node `i` each superstep — the §4.6 imbalance shape.
        weights: Vec<u32>,
    },
}

impl Topology {
    /// Balanced BSP decomposition.
    pub fn bsp(supersteps: u32, comm_bytes: f64) -> Self {
        Topology::Bsp {
            supersteps,
            comm_bytes,
            weights: Vec::new(),
        }
    }
}

/// One declarative experiment description — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display / cell label (the setup-axis label in grid artifacts).
    pub label: String,
    /// What runs.
    pub workload: WorkloadSpec,
    /// Per-node machine and frequency policy; length = node count.
    pub nodes: Vec<(MachineSpec, NodePolicy)>,
    /// How the nodes cooperate.
    pub topology: Topology,
    /// Workload instantiation seed ([`HARNESS_SEED`] reproduces the
    /// historical harness runs; must stay below 2^53 so the JSON codec
    /// transports it exactly).
    pub seed: u64,
    /// Optional virtual-time cap, seconds — for endless synthetic
    /// streams (single-node only).
    pub duration_s: Option<f64>,
    /// Collect the per-`Tinv` trace (single-node only).
    pub trace: bool,
    /// How the cluster driving plane advances virtual time (event
    /// heap vs. lockstep reference); serialized only when non-default,
    /// so historical scenario files keep their bytes. Single-node runs
    /// have their own (always event-driven) loop and ignore it.
    pub stepping: SteppingMode,
}

/// Builder for [`Scenario`] — the one construction path shared by the
/// grid, the bins, the examples, and the tests.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    label: Option<String>,
    workload: WorkloadSpec,
    nodes: Vec<(MachineSpec, NodePolicy)>,
    bsp: Option<(u32, f64, Vec<u32>)>,
    seed: u64,
    duration_s: Option<f64>,
    trace: bool,
    stepping: SteppingMode,
}

impl Scenario {
    /// Builder over a Table 1 benchmark.
    pub fn bench(name: impl Into<String>, model: ProgModel, scale: f64) -> ScenarioBuilder {
        Self::workload(WorkloadSpec::bench(name, model, scale))
    }

    /// Builder over a synthetic chunk stream.
    pub fn synthetic(spec: SyntheticSpec) -> ScenarioBuilder {
        Self::workload(WorkloadSpec::Synthetic(spec))
    }

    /// Builder over an explicit workload description.
    pub fn workload(workload: WorkloadSpec) -> ScenarioBuilder {
        ScenarioBuilder {
            label: None,
            workload,
            nodes: Vec::new(),
            bsp: None,
            seed: HARNESS_SEED,
            duration_s: None,
            trace: false,
            stepping: SteppingMode::default(),
        }
    }

    /// Node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The repetition index this scenario's seed encodes, if it is a
    /// harness-style seed (`HARNESS_SEED ^ (rep << 32)`).
    pub fn rep(&self) -> Option<u32> {
        let bits = self.seed ^ HARNESS_SEED;
        if bits & 0xFFFF_FFFF == 0 {
            Some((bits >> 32) as u32)
        } else {
            None
        }
    }

    /// Check every invariant the runner relies on. [`ScenarioBuilder::build`]
    /// panics on violations (a programming error); the JSON decoder
    /// surfaces them as parse errors (malformed file).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("scenario needs at least one node".into());
        }
        for (machine, policy) in &self.nodes {
            machine.validate()?;
            policy.validate()?;
        }
        let quantum = self.nodes[0].0.quantum_ns;
        if self.nodes.iter().any(|(m, _)| m.quantum_ns != quantum) {
            return Err("all nodes must share one quantum_ns".into());
        }
        if self.seed > (1u64 << 53) {
            return Err("seed must stay below 2^53 (exact JSON transport)".into());
        }
        match &self.workload {
            WorkloadSpec::Bench { scale, .. } => {
                if !(scale.is_finite() && *scale > 0.0) {
                    return Err(format!("invalid workload scale {scale}"));
                }
                self.workload.resolve()?;
            }
            WorkloadSpec::Synthetic(spec) => {
                if spec.phases.is_empty() {
                    return Err("synthetic workload needs at least one phase".into());
                }
            }
        }
        match &self.topology {
            Topology::SingleNode => {
                if self.nodes.len() != 1 {
                    return Err(format!(
                        "single-node topology with {} nodes",
                        self.nodes.len()
                    ));
                }
            }
            Topology::Replicated => {}
            Topology::Bsp {
                supersteps,
                comm_bytes,
                weights,
            } => {
                if *supersteps == 0 {
                    return Err("BSP topology needs at least one superstep".into());
                }
                if !(comm_bytes.is_finite() && *comm_bytes >= 0.0) {
                    return Err(format!("invalid exchange size {comm_bytes}"));
                }
                if !weights.is_empty() && weights.len() != self.nodes.len() {
                    return Err(format!(
                        "BSP weights ({}) must match the node count ({})",
                        weights.len(),
                        self.nodes.len()
                    ));
                }
                if let WorkloadSpec::Bench { .. } = &self.workload {
                    if !weights.is_empty() {
                        return Err("BSP weights apply to synthetic workloads only (benchmarks \
                             strong-scale their chunk stream evenly)"
                            .into());
                    }
                    let def = self.workload.resolve()?;
                    if def.style != workloads::Style::WorkSharing {
                        return Err(format!(
                            "BSP scenarios need a work-sharing benchmark (`{}` builds a task DAG)",
                            def.name
                        ));
                    }
                }
            }
        }
        if self.trace && !matches!(self.topology, Topology::SingleNode) {
            return Err("traces are only defined for single-node scenarios".into());
        }
        if self.duration_s.is_some() && !matches!(self.topology, Topology::SingleNode) {
            return Err("a duration cap is only defined for single-node scenarios".into());
        }
        if let Some(d) = self.duration_s {
            if !(d.is_finite() && d > 0.0) {
                return Err(format!("invalid duration {d}"));
            }
        }
        // An endless synthetic stream must have *some* terminator:
        // a duration cap (single node) or the per-superstep cycling of
        // a BSP decomposition. A replicated or uncapped single-node
        // endless stream would spin forever.
        if let WorkloadSpec::Synthetic(spec) = &self.workload {
            if spec.total_chunks.is_none() {
                let bounded = match self.topology {
                    Topology::SingleNode => self.duration_s.is_some(),
                    Topology::Bsp { .. } => true,
                    Topology::Replicated => false,
                };
                if !bounded {
                    return Err("an endless synthetic stream (total_chunks = null) needs a \
                         duration cap (single node) or a BSP decomposition to terminate"
                        .into());
                }
            }
        }
        Ok(())
    }

    /// Execute the scenario.
    pub fn run(&self) -> ScenarioOutcome {
        self.run_traced(None)
    }

    /// [`run`](Self::run), collecting the `Tinv`-rate trace into
    /// `trace` when the scenario requests one: a scenario built
    /// without [`trace`](ScenarioBuilder::trace) leaves the buffer
    /// untouched and keeps the event-driven (fast-forwarding) loop, so
    /// passing a buffer never silently changes how the run executes.
    pub fn run_traced(&self, trace: Option<&mut Vec<TracePoint>>) -> ScenarioOutcome {
        self.validate().expect("invalid scenario");
        let trace = if self.trace { trace } else { None };
        match self.topology {
            Topology::SingleNode => ScenarioOutcome::Single(self.run_single(trace)),
            _ => ScenarioOutcome::Cluster(self.run_cluster()),
        }
    }

    /// Build the single-node execution parts — processor, workload,
    /// controller — without running them, for callers that drive the
    /// stepping loop themselves (interactive examples, custom
    /// samplers). The controller has been built (and any initial
    /// actuation applied) exactly as [`run`](Self::run) would.
    ///
    /// # Panics
    /// Panics unless the scenario is valid and single-node.
    pub fn build_single_node(
        &self,
    ) -> (
        SimProcessor,
        Box<dyn simproc::engine::Workload>,
        Box<dyn cuttlefish::controller::FrequencyController>,
    ) {
        self.validate().expect("invalid scenario");
        assert!(
            matches!(self.topology, Topology::SingleNode),
            "build_single_node needs a single-node scenario"
        );
        let (machine, policy) = &self.nodes[0];
        let mut proc = SimProcessor::new(machine.clone());
        let wl = self.workload.build(proc.n_cores(), self.seed);
        let controller = policy.build(&mut proc);
        (proc, wl, controller)
    }

    fn run_single(&self, trace: Option<&mut Vec<TracePoint>>) -> RunOutcome {
        let (mut proc, mut wl, mut controller) = self.build_single_node();

        let start_e = proc.total_energy_joules();
        let start_t = proc.now_ns();
        let deadline = self.duration_s.map(|d| start_t + (d * 1e9).round() as u64);
        let expired = |proc: &SimProcessor| deadline.is_some_and(|d| proc.now_ns() >= d);

        let quantum_ns = proc.spec().quantum_ns;
        if let Some(points) = trace {
            // Traced runs sample counters on a fixed 20-quantum cadence.
            // The capture is a pure read, so each 20-quantum segment is
            // advanced through the same event-driven loop untraced runs
            // use (identical numerics, fast-forwarded idle and busy
            // stretches), bounded so the clock pauses exactly at every
            // capture point — and at the duration cap, when one is set.
            let mut quanta = 0u64;
            let mut last = CounterSnapshot::capture(&proc).expect("counters readable");
            while !proc.workload_drained(wl.as_mut()) && !expired(&proc) {
                let budget = match deadline {
                    Some(d) => (d - proc.now_ns()).div_ceil(quantum_ns).min(20),
                    None => 20,
                };
                let done = cuttlefish::controller::drive_quanta(
                    &mut proc,
                    wl.as_mut(),
                    controller.as_mut(),
                    budget,
                );
                if done == 0 {
                    break;
                }
                quanta += done;
                if quanta.is_multiple_of(20) {
                    let now = CounterSnapshot::capture(&proc).expect("counters readable");
                    if let Some(s) = delta(&last, &now) {
                        points.push(TracePoint {
                            t_s: proc.now_seconds(),
                            tipi: s.tipi,
                            jpi: s.jpi,
                            cf_ghz: proc.core_freq().ghz(),
                            uf_ghz: proc.uncore_freq().ghz(),
                            watts: proc.last_quantum().power_watts,
                        });
                    }
                    last = now;
                }
            }
        } else if let Some(d) = deadline {
            // Duration-capped runs bound every fast-forward by the
            // quanta left to the cap, so the clock lands on the first
            // boundary at or past it — exactly where plain per-quantum
            // stepping would stop.
            while !proc.workload_drained(wl.as_mut()) && !expired(&proc) {
                let budget = (d - proc.now_ns()).div_ceil(quantum_ns);
                let done = cuttlefish::controller::drive_quanta(
                    &mut proc,
                    wl.as_mut(),
                    controller.as_mut(),
                    budget,
                );
                if done == 0 {
                    break;
                }
            }
        } else {
            cuttlefish::controller::drive(&mut proc, wl.as_mut(), controller.as_mut());
        }

        let report = controller.report();
        let resolved = controller.resolved_fractions();

        RunOutcome {
            bench: self.workload.name(),
            setup: self.nodes[0].1.name(),
            seconds: (proc.now_ns() - start_t) as f64 * 1e-9,
            joules: proc.total_energy_joules() - start_e,
            instructions: proc.total_instructions(),
            report,
            resolved,
            residency: proc
                .frequency_residency()
                .iter()
                .map(|(&point, &ns)| (point, ns))
                .collect(),
            stepped_quanta: proc.stepped_quanta(),
            idle_advanced_quanta: proc.idle_advanced_quanta(),
            busy_advanced_quanta: proc.busy_advanced_quanta(),
            total_quanta: proc.total_quanta(),
        }
    }

    fn run_cluster(&self) -> ClusterOutcome {
        let comm = match &self.topology {
            Topology::Bsp { comm_bytes, .. } => CommModel {
                bytes: *comm_bytes,
                ..CommModel::default()
            },
            _ => CommModel::default(),
        };
        let mut cl = Cluster::with_nodes(self.nodes.clone(), comm);
        cl.set_stepping(self.stepping);
        let outcome = match &self.topology {
            Topology::Replicated => {
                let seed = self.seed;
                let workload = &self.workload;
                cl.run_program(&mut ReplicatedProgram::new(
                    self.nodes.len(),
                    |node, n_cores| {
                        // Distinct per-node seeds (node 0 keeps the base
                        // seed, so a 1-node cluster instantiates exactly
                        // the single-node run).
                        workload.build(
                            n_cores,
                            seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        )
                    },
                ))
            }
            Topology::Bsp { .. } => cl.run_program(&mut &self.bsp_app()),
            Topology::SingleNode => unreachable!("run_traced routes single-node scenarios"),
        };
        ClusterOutcome {
            outcome,
            reports: cl.reports(),
            resolved: cl.resolved_fractions(),
            residency: cl.residency(),
        }
    }

    /// The bulk-synchronous decomposition of this scenario's workload.
    ///
    /// Benchmarks strong-scale: the chunk stream is cut into
    /// `supersteps` chronological slices (warm-up-dependent chunk costs
    /// keep their order) and each slice is dealt round-robin across the
    /// nodes, so every node computes `1/nodes` of each superstep.
    /// Synthetic workloads replicate: each node receives `weights[i]`
    /// (default 1) copies of one phase cycle per superstep.
    fn bsp_app(&self) -> BspApp {
        let Topology::Bsp {
            supersteps,
            weights,
            ..
        } = &self.topology
        else {
            unreachable!("bsp_app is only called for BSP topologies")
        };
        let n_nodes = self.nodes.len();
        match &self.workload {
            WorkloadSpec::Bench { .. } => {
                let def = self.workload.resolve().expect("validated benchmark");
                let machine = &self.nodes[0].0;
                let chunks = match def.build(machine.n_cores) {
                    BuiltWorkload::Regions(regions) => regions
                        .into_iter()
                        .flat_map(|r| r.into_chunks())
                        .collect::<Vec<_>>(),
                    BuiltWorkload::Dag(_) => panic!(
                        "BSP scenarios need a work-sharing benchmark (`{}` builds a task DAG)",
                        def.name
                    ),
                };
                let supersteps = ((*supersteps).max(1) as usize).min(chunks.len().max(1));
                let per_step = chunks.len().div_ceil(supersteps);
                let mut steps = vec![vec![Vec::new(); n_nodes]; supersteps];
                for (i, chunk) in chunks.into_iter().enumerate() {
                    let step = i / per_step;
                    steps[step][(i % per_step) % n_nodes].push(chunk);
                }
                BspApp { steps }
            }
            WorkloadSpec::Synthetic(spec) => {
                let unit = spec.cycle_chunks();
                let weight = |node: usize| {
                    if weights.is_empty() {
                        1
                    } else {
                        weights[node].max(1)
                    }
                };
                let steps = (0..*supersteps as usize)
                    .map(|_| {
                        (0..n_nodes)
                            .map(|node| {
                                let mut chunks = Vec::new();
                                for _ in 0..weight(node) {
                                    chunks.extend(unit.iter().cloned());
                                }
                                chunks
                            })
                            .collect()
                    })
                    .collect();
                BspApp { steps }
            }
        }
    }
}

impl ScenarioBuilder {
    /// Set the display / cell label (defaults to the first node's
    /// policy name).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Append one node.
    pub fn node(mut self, machine: &MachineSpec, policy: NodePolicy) -> Self {
        self.nodes.push((machine.clone(), policy));
        self
    }

    /// Append `n` identical nodes.
    pub fn nodes(mut self, n: usize, machine: &MachineSpec, policy: NodePolicy) -> Self {
        for _ in 0..n {
            self.nodes.push((machine.clone(), policy.clone()));
        }
        self
    }

    /// Shorthand: one paper-Haswell node under `policy`.
    pub fn policy(self, policy: NodePolicy) -> Self {
        self.node(&HASWELL_2650V3, policy)
    }

    /// Strong-scale into a balanced BSP decomposition.
    pub fn bsp(mut self, supersteps: u32, comm_bytes: f64) -> Self {
        self.bsp = Some((supersteps, comm_bytes, Vec::new()));
        self
    }

    /// BSP with per-node work multipliers (synthetic workloads only).
    pub fn bsp_weighted(mut self, supersteps: u32, comm_bytes: f64, weights: Vec<u32>) -> Self {
        self.bsp = Some((supersteps, comm_bytes, weights));
        self
    }

    /// Set the instantiation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the seed via a repetition index (rep 0 = [`HARNESS_SEED`]).
    pub fn rep(mut self, rep: u32) -> Self {
        self.seed = HARNESS_SEED ^ (u64::from(rep) << 32);
        self
    }

    /// Cap virtual time (single-node; for endless synthetic streams).
    pub fn duration_s(mut self, seconds: f64) -> Self {
        self.duration_s = Some(seconds);
        self
    }

    /// Collect the `Tinv`-rate trace (single-node).
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Pin the cluster driving mode (defaults to
    /// [`SteppingMode::EventDriven`]).
    pub fn stepping(mut self, mode: SteppingMode) -> Self {
        self.stepping = mode;
        self
    }

    /// Finish the description. Defaults: no nodes added = one
    /// paper-Haswell node under the Default policy; topology inferred
    /// (1 node = single-node, >1 = replicated, BSP when requested).
    ///
    /// # Panics
    /// Panics when the description violates a [`Scenario::validate`]
    /// invariant — builder misuse is a programming error (files go
    /// through the parsing path, which reports errors instead).
    pub fn build(self) -> Scenario {
        let mut nodes = self.nodes;
        if nodes.is_empty() {
            nodes.push((HASWELL_2650V3.clone(), NodePolicy::Default));
        }
        let topology = match self.bsp {
            Some((supersteps, comm_bytes, weights)) => Topology::Bsp {
                supersteps,
                comm_bytes,
                weights,
            },
            None if nodes.len() == 1 => Topology::SingleNode,
            None => Topology::Replicated,
        };
        let label = self.label.unwrap_or_else(|| nodes[0].1.name().to_string());
        let scenario = Scenario {
            label,
            workload: self.workload,
            nodes,
            topology,
            seed: self.seed,
            duration_s: self.duration_s,
            trace: self.trace,
            stepping: self.stepping,
        };
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        scenario
    }
}

/// What a scenario produced: a single-node [`RunOutcome`] or a cluster
/// [`ClusterOutcome`].
#[derive(Debug, Clone)]
pub enum ScenarioOutcome {
    /// Single-node result.
    Single(RunOutcome),
    /// Cluster result.
    Cluster(ClusterOutcome),
}

/// Cluster measurements: the bulk-synchronous outcome plus the
/// per-node controller state gathered after the run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Timing/energy outcome.
    pub outcome: cluster::BspOutcome,
    /// Per-node controller reports.
    pub reports: Vec<Vec<NodeReport>>,
    /// Per-node resolved-optimum fractions.
    pub resolved: Vec<(f64, f64)>,
    /// Operating-point residency summed over nodes.
    pub residency: BTreeMap<(u32, u32), u64>,
}

impl ScenarioOutcome {
    /// Virtual wall time, seconds (slowest node for clusters).
    pub fn seconds(&self) -> f64 {
        match self {
            ScenarioOutcome::Single(o) => o.seconds,
            ScenarioOutcome::Cluster(c) => c.outcome.seconds,
        }
    }

    /// Package energy, joules (summed over nodes).
    pub fn joules(&self) -> f64 {
        match self {
            ScenarioOutcome::Single(o) => o.joules,
            ScenarioOutcome::Cluster(c) => c.outcome.joules,
        }
    }

    /// Instructions retired (summed over nodes).
    pub fn instructions(&self) -> f64 {
        match self {
            ScenarioOutcome::Single(o) => o.instructions,
            ScenarioOutcome::Cluster(c) => c.outcome.instructions,
        }
    }

    /// Node 0's controller report.
    pub fn report(&self) -> Vec<NodeReport> {
        match self {
            ScenarioOutcome::Single(o) => o.report.clone(),
            ScenarioOutcome::Cluster(c) => c.reports.first().cloned().unwrap_or_default(),
        }
    }

    /// Quanta the engine executed one step at a time (all nodes).
    pub fn stepped_quanta(&self) -> u64 {
        match self {
            ScenarioOutcome::Single(o) => o.stepped_quanta,
            ScenarioOutcome::Cluster(c) => c.outcome.stepped_quanta,
        }
    }

    /// Quanta fast-forwarded analytically while parked (all nodes).
    pub fn idle_advanced_quanta(&self) -> u64 {
        match self {
            ScenarioOutcome::Single(o) => o.idle_advanced_quanta,
            ScenarioOutcome::Cluster(c) => c.outcome.idle_advanced_quanta,
        }
    }

    /// Quanta fast-forwarded analytically while executing (all nodes).
    pub fn busy_advanced_quanta(&self) -> u64 {
        match self {
            ScenarioOutcome::Single(o) => o.busy_advanced_quanta,
            ScenarioOutcome::Cluster(c) => c.outcome.busy_advanced_quanta,
        }
    }

    /// Total virtual quanta elapsed (all nodes).
    pub fn total_quanta(&self) -> u64 {
        match self {
            ScenarioOutcome::Single(o) => o.total_quanta,
            ScenarioOutcome::Cluster(c) => c.outcome.total_quanta,
        }
    }

    /// The single-node outcome, if this was one.
    pub fn single(&self) -> Option<&RunOutcome> {
        match self {
            ScenarioOutcome::Single(o) => Some(o),
            ScenarioOutcome::Cluster(_) => None,
        }
    }

    /// The cluster outcome, if this was one.
    pub fn cluster(&self) -> Option<&ClusterOutcome> {
        match self {
            ScenarioOutcome::Single(_) => None,
            ScenarioOutcome::Cluster(c) => Some(c),
        }
    }
}

// ---------------------------------------------------------------------
// JSON codec (hand-rolled against `bench::json`; the workspace serde is
// an offline marker-only shim — see `shims/README.md`). The primitive
// impls here (machines, policies, configs) are shared with the grid
// artifact codec in `bench::grid`.
// ---------------------------------------------------------------------

/// Build a [`Json::Obj`] from `(key, value)` pairs in order. Public
/// because downstream codecs (the serve protocol, external tools)
/// compose documents out of the same primitive impls defined here.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Build a [`Json::Arr`] by encoding each item.
pub fn arr<T: ToJson>(items: &[T]) -> Json {
    Json::Arr(items.iter().map(ToJson::to_json).collect())
}

/// Decode a homogeneous array.
pub fn from_arr<T: FromJson>(j: &Json) -> Result<Vec<T>, JsonError> {
    j.as_arr()?.iter().map(T::from_json).collect()
}

pub(crate) fn opt_u32(v: Option<u32>) -> Json {
    v.map_or(Json::Null, |x| Json::Num(f64::from(x)))
}

pub(crate) fn from_opt_u32(j: &Json) -> Result<Option<u32>, JsonError> {
    match j {
        Json::Null => Ok(None),
        other => Ok(Some(other.as_u64()? as u32)),
    }
}

impl ToJson for ProgModel {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ProgModel::OpenMp => "openmp",
                ProgModel::HClib => "hclib",
            }
            .into(),
        )
    }
}

impl FromJson for ProgModel {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str()? {
            "openmp" => Ok(ProgModel::OpenMp),
            "hclib" => Ok(ProgModel::HClib),
            other => Err(JsonError(format!("unknown programming model `{other}`"))),
        }
    }
}

impl ToJson for Policy {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Policy::Both => "both",
                Policy::CoreOnly => "core-only",
                Policy::UncoreOnly => "uncore-only",
            }
            .into(),
        )
    }
}

impl FromJson for Policy {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str()? {
            "both" => Ok(Policy::Both),
            "core-only" => Ok(Policy::CoreOnly),
            "uncore-only" => Ok(Policy::UncoreOnly),
            other => Err(JsonError(format!("unknown policy `{other}`"))),
        }
    }
}

impl ToJson for Config {
    fn to_json(&self) -> Json {
        obj(vec![
            ("tinv_ns", Json::Num(self.tinv_ns as f64)),
            ("warmup_ns", Json::Num(self.warmup_ns as f64)),
            ("policy", self.policy.to_json()),
            (
                "samples_per_freq",
                Json::Num(f64::from(self.samples_per_freq)),
            ),
            ("slab_width", Json::Num(self.slab_width)),
            ("uf_window_mult", Json::Num(self.uf_window_mult)),
            (
                "neighbor_inheritance",
                Json::Bool(self.neighbor_inheritance),
            ),
            ("revalidation", Json::Bool(self.revalidation)),
            ("idle_guard", self.idle_guard.map_or(Json::Null, Json::Num)),
        ])
    }
}

impl FromJson for Config {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Config {
            tinv_ns: j.field("tinv_ns")?.as_u64()?,
            warmup_ns: j.field("warmup_ns")?.as_u64()?,
            policy: Policy::from_json(j.field("policy")?)?,
            samples_per_freq: j.field("samples_per_freq")?.as_u64()? as u32,
            slab_width: j.field("slab_width")?.as_f64()?,
            uf_window_mult: j.field("uf_window_mult")?.as_f64()?,
            neighbor_inheritance: j.field("neighbor_inheritance")?.as_bool()?,
            revalidation: j.field("revalidation")?.as_bool()?,
            idle_guard: match j.field("idle_guard")? {
                Json::Null => None,
                other => Some(other.as_f64()?),
            },
        })
    }
}

impl ToJson for FreqDomain {
    fn to_json(&self) -> Json {
        obj(vec![
            ("min", Json::Num(f64::from(self.min().0))),
            ("max", Json::Num(f64::from(self.max().0))),
        ])
    }
}

impl FromJson for FreqDomain {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let min = j.field("min")?.as_u64()? as u32;
        let max = j.field("max")?.as_u64()? as u32;
        if min == 0 || min > max {
            return Err(JsonError(format!("invalid frequency domain {min}..{max}")));
        }
        Ok(FreqDomain::new(Freq(min), Freq(max)))
    }
}

impl ToJson for MachineSpec {
    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("n_cores", Json::Num(self.n_cores as f64)),
            ("core", self.core.to_json()),
            ("uncore", self.uncore.to_json()),
            ("quantum_ns", Json::Num(self.quantum_ns as f64)),
        ])
    }
}

impl FromJson for MachineSpec {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let spec = MachineSpec {
            name: j.field("name")?.as_str()?.to_string(),
            n_cores: j.field("n_cores")?.as_u64()? as usize,
            core: FreqDomain::from_json(j.field("core")?)?,
            uncore: FreqDomain::from_json(j.field("uncore")?)?,
            quantum_ns: j.field("quantum_ns")?.as_u64()?,
        };
        spec.validate().map_err(JsonError)?;
        Ok(spec)
    }
}

impl ToJson for OracleEntry {
    fn to_json(&self) -> Json {
        obj(vec![
            ("slab", Json::Num(f64::from(self.slab.0))),
            ("cf", Json::Num(f64::from(self.cf.0))),
            ("uf", Json::Num(f64::from(self.uf.0))),
        ])
    }
}

impl FromJson for OracleEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(OracleEntry {
            slab: TipiSlab(j.field("slab")?.as_u64()? as u32),
            cf: Freq(j.field("cf")?.as_u64()? as u32),
            uf: Freq(j.field("uf")?.as_u64()? as u32),
        })
    }
}

impl ToJson for OracleTable {
    fn to_json(&self) -> Json {
        obj(vec![
            ("slab_width", Json::Num(self.slab_width)),
            ("tinv_ns", Json::Num(self.tinv_ns as f64)),
            ("entries", arr(&self.entries)),
        ])
    }
}

impl FromJson for OracleTable {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let table = OracleTable {
            slab_width: j.field("slab_width")?.as_f64()?,
            tinv_ns: j.field("tinv_ns")?.as_u64()?,
            entries: from_arr(j.field("entries")?)?,
        };
        table.validate().map_err(JsonError)?;
        Ok(table)
    }
}

impl ToJson for PidGains {
    fn to_json(&self) -> Json {
        obj(vec![
            ("kp", Json::Num(self.kp)),
            ("ki", Json::Num(self.ki)),
            ("kd", Json::Num(self.kd)),
            ("setpoint", Json::Num(self.setpoint)),
        ])
    }
}

impl FromJson for PidGains {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let gains = PidGains {
            kp: j.field("kp")?.as_f64()?,
            ki: j.field("ki")?.as_f64()?,
            kd: j.field("kd")?.as_f64()?,
            setpoint: j.field("setpoint")?.as_f64()?,
        };
        gains.validate().map_err(JsonError)?;
        Ok(gains)
    }
}

impl ToJson for NodePolicy {
    fn to_json(&self) -> Json {
        match self {
            NodePolicy::Default => obj(vec![("kind", Json::Str("default".into()))]),
            NodePolicy::Cuttlefish(cfg) => obj(vec![
                ("kind", Json::Str("cuttlefish".into())),
                ("config", cfg.to_json()),
            ]),
            NodePolicy::Pinned { cf, uf } => obj(vec![
                ("kind", Json::Str("pinned".into())),
                ("cf", Json::Num(f64::from(cf.0))),
                ("uf", Json::Num(f64::from(uf.0))),
            ]),
            NodePolicy::Ondemand => obj(vec![("kind", Json::Str("ondemand".into()))]),
            NodePolicy::Oracle(table) => obj(vec![
                ("kind", Json::Str("oracle".into())),
                ("table", table.to_json()),
            ]),
            NodePolicy::PidUncore { config, gains } => obj(vec![
                ("kind", Json::Str("pid-uncore".into())),
                ("config", config.to_json()),
                ("gains", gains.to_json()),
            ]),
        }
    }
}

impl FromJson for NodePolicy {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.field("kind")?.as_str()? {
            "default" => Ok(NodePolicy::Default),
            "cuttlefish" => Ok(NodePolicy::Cuttlefish(Config::from_json(
                j.field("config")?,
            )?)),
            "pinned" => Ok(NodePolicy::Pinned {
                cf: Freq(j.field("cf")?.as_u64()? as u32),
                uf: Freq(j.field("uf")?.as_u64()? as u32),
            }),
            "ondemand" => Ok(NodePolicy::Ondemand),
            // The table may be inline (`table`) or referenced
            // (`table_file`, resolved relative to the process CWD and
            // holding a bare serialized `OracleTable`). Files always
            // re-serialize inline.
            "oracle" => {
                let table = match j.get("table") {
                    Some(t) => OracleTable::from_json(t)?,
                    None => {
                        let path = j.field("table_file")?.as_str()?;
                        let text = std::fs::read_to_string(path).map_err(|e| {
                            JsonError(format!("cannot read oracle table_file `{path}`: {e}"))
                        })?;
                        OracleTable::from_json(&Json::parse(&text)?)?
                    }
                };
                Ok(NodePolicy::Oracle(table))
            }
            "pid-uncore" => Ok(NodePolicy::PidUncore {
                config: Config::from_json(j.field("config")?)?,
                gains: PidGains::from_json(j.field("gains")?)?,
            }),
            other => Err(JsonError(format!("unknown node policy `{other}`"))),
        }
    }
}

impl ToJson for ChunkPhase {
    fn to_json(&self) -> Json {
        obj(vec![
            ("chunks", Json::Num(self.chunks as f64)),
            ("instructions", Json::Num(self.instructions as f64)),
            ("misses_local", Json::Num(self.misses_local as f64)),
            ("misses_remote", Json::Num(self.misses_remote as f64)),
            ("cpi", Json::Num(self.cpi)),
            ("mlp", Json::Num(self.mlp)),
        ])
    }
}

impl FromJson for ChunkPhase {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ChunkPhase {
            chunks: j.field("chunks")?.as_u64()?,
            instructions: j.field("instructions")?.as_u64()?,
            misses_local: j.field("misses_local")?.as_u64()?,
            misses_remote: j.field("misses_remote")?.as_u64()?,
            cpi: j.field("cpi")?.as_f64()?,
            mlp: j.field("mlp")?.as_f64()?,
        })
    }
}

impl ToJson for WorkloadSpec {
    fn to_json(&self) -> Json {
        match self {
            WorkloadSpec::Bench { name, model, scale } => obj(vec![
                ("kind", Json::Str("bench".into())),
                ("bench", Json::Str(name.clone())),
                ("model", model.to_json()),
                ("scale", Json::Num(*scale)),
            ]),
            WorkloadSpec::Synthetic(spec) => obj(vec![
                ("kind", Json::Str("synthetic".into())),
                ("phases", arr(&spec.phases)),
                (
                    "total_chunks",
                    spec.total_chunks
                        .map_or(Json::Null, |n| Json::Num(n as f64)),
                ),
            ]),
        }
    }
}

impl FromJson for WorkloadSpec {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.field("kind")?.as_str()? {
            "bench" => Ok(WorkloadSpec::Bench {
                name: j.field("bench")?.as_str()?.to_string(),
                model: ProgModel::from_json(j.field("model")?)?,
                scale: j.field("scale")?.as_f64()?,
            }),
            "synthetic" => Ok(WorkloadSpec::Synthetic(SyntheticSpec {
                phases: from_arr(j.field("phases")?)?,
                total_chunks: match j.field("total_chunks")? {
                    Json::Null => None,
                    other => Some(other.as_u64()?),
                },
            })),
            other => Err(JsonError(format!("unknown workload kind `{other}`"))),
        }
    }
}

impl ToJson for Topology {
    fn to_json(&self) -> Json {
        match self {
            Topology::SingleNode => obj(vec![("kind", Json::Str("single-node".into()))]),
            Topology::Replicated => obj(vec![("kind", Json::Str("replicated".into()))]),
            Topology::Bsp {
                supersteps,
                comm_bytes,
                weights,
            } => {
                let mut fields = vec![
                    ("kind", Json::Str("bsp".into())),
                    ("supersteps", Json::Num(f64::from(*supersteps))),
                    ("comm_bytes", Json::Num(*comm_bytes)),
                ];
                if !weights.is_empty() {
                    fields.push((
                        "weights",
                        Json::Arr(weights.iter().map(|&w| Json::Num(f64::from(w))).collect()),
                    ));
                }
                obj(fields)
            }
        }
    }
}

impl FromJson for Topology {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.field("kind")?.as_str()? {
            "single-node" => Ok(Topology::SingleNode),
            "replicated" => Ok(Topology::Replicated),
            "bsp" => Ok(Topology::Bsp {
                supersteps: j.field("supersteps")?.as_u64()? as u32,
                comm_bytes: j.field("comm_bytes")?.as_f64()?,
                weights: match j.get("weights") {
                    Some(w) => w
                        .as_arr()?
                        .iter()
                        .map(|v| Ok(v.as_u64()? as u32))
                        .collect::<Result<_, JsonError>>()?,
                    None => Vec::new(),
                },
            }),
            other => Err(JsonError(format!("unknown topology `{other}`"))),
        }
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::Str(SCENARIO_SCHEMA.into())),
            ("label", Json::Str(self.label.clone())),
            ("workload", self.workload.to_json()),
            (
                "nodes",
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|(machine, policy)| {
                            obj(vec![
                                ("machine", machine.to_json()),
                                ("policy", policy.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("topology", self.topology.to_json()),
            ("seed", Json::Num(self.seed as f64)),
            ("duration_s", self.duration_s.map_or(Json::Null, Json::Num)),
            ("trace", Json::Bool(self.trace)),
        ];
        // Default-mode scenarios keep their historical byte-exact
        // encoding; the key appears only when a cell pins lockstep.
        if self.stepping != SteppingMode::default() {
            fields.push(("stepping", Json::Str(self.stepping.as_str().into())));
        }
        obj(fields)
    }
}

impl FromJson for Scenario {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let schema = j.field("schema")?.as_str()?;
        if schema != SCENARIO_SCHEMA {
            return Err(JsonError(format!(
                "unsupported scenario schema `{schema}` (expected `{SCENARIO_SCHEMA}`)"
            )));
        }
        let nodes = j
            .field("nodes")?
            .as_arr()?
            .iter()
            .map(|n| {
                Ok((
                    MachineSpec::from_json(n.field("machine")?)?,
                    NodePolicy::from_json(n.field("policy")?)?,
                ))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let scenario = Scenario {
            label: j.field("label")?.as_str()?.to_string(),
            workload: WorkloadSpec::from_json(j.field("workload")?)?,
            nodes,
            topology: Topology::from_json(j.field("topology")?)?,
            seed: j.field("seed")?.as_u64()?,
            duration_s: match j.field("duration_s")? {
                Json::Null => None,
                other => Some(other.as_f64()?),
            },
            trace: j.field("trace")?.as_bool()?,
            stepping: match j.get("stepping") {
                Some(s) => SteppingMode::parse(s.as_str()?).map_err(JsonError)?,
                None => SteppingMode::default(),
            },
        };
        scenario.validate().map_err(JsonError)?;
        Ok(scenario)
    }
}

impl Scenario {
    /// Serialize to the deterministic scenario-file format.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parse and validate a scenario file.
    pub fn from_json_str(text: &str) -> Result<Scenario, JsonError> {
        Scenario::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Scale;

    #[test]
    fn default_and_cuttlefish_runs_complete() {
        let d = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
            .policy(NodePolicy::Default)
            .build()
            .run();
        assert!(d.seconds() > 0.0 && d.joules() > 0.0);
        let c = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
            .policy(NodePolicy::Cuttlefish(Config::default()))
            .build()
            .run();
        assert!(c.seconds() > 0.0 && c.joules() > 0.0);
        assert!(!c.report().is_empty(), "daemon must have discovered ranges");
    }

    #[test]
    fn trace_collection_samples_at_tinv() {
        let suite = workloads::openmp_suite(Scale(0.05));
        let scenario = Scenario::bench(suite[1].name.clone(), ProgModel::OpenMp, 0.05)
            .policy(NodePolicy::Default)
            .trace()
            .build();
        let mut points = Vec::new();
        let o = scenario.run_traced(Some(&mut points));
        // ~1 point per 20 ms of virtual time.
        let expect = o.seconds() / 0.020;
        assert!(
            (points.len() as f64) > expect * 0.8 && (points.len() as f64) < expect * 1.2,
            "expected ~{expect} points, got {}",
            points.len()
        );
    }

    #[test]
    fn duration_cap_bounds_endless_streams() {
        let scenario = Scenario::synthetic(SyntheticSpec {
            phases: vec![ChunkPhase::streaming(1)],
            total_chunks: None,
        })
        .policy(NodePolicy::Default)
        .duration_s(0.5)
        .build();
        let o = scenario.run();
        assert!((o.seconds() - 0.5).abs() < 0.01, "got {}", o.seconds());
    }

    #[test]
    fn replicated_and_bsp_clusters_run() {
        let rep = Scenario::bench("UTS", ProgModel::OpenMp, 0.02)
            .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
            .build();
        assert_eq!(rep.topology, Topology::Replicated);
        let o = rep.run();
        let c = o.cluster().expect("cluster outcome");
        assert_eq!(c.outcome.node_joules.len(), 2);

        let bsp = Scenario::bench("Heat-ws", ProgModel::OpenMp, 0.02)
            .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
            .bsp(8, 24.0e6)
            .build();
        let o = bsp.run();
        assert!(o.seconds() > 0.0 && o.joules() > 0.0);
    }

    #[test]
    fn bsp_weights_imbalance_synthetic_nodes() {
        let spec = SyntheticSpec {
            phases: vec![ChunkPhase::streaming(400)],
            total_chunks: None,
        };
        let balanced = Scenario::synthetic(spec.clone())
            .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
            .bsp(4, 4.0e6)
            .build()
            .run();
        let imbalanced = Scenario::synthetic(spec)
            .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
            .bsp_weighted(4, 4.0e6, vec![2, 1])
            .build()
            .run();
        let b = balanced.cluster().unwrap();
        let i = imbalanced.cluster().unwrap();
        assert!(
            i.outcome.barrier_wait_s > b.outcome.barrier_wait_s + 0.05,
            "the weighted node must make the other wait ({} vs {})",
            i.outcome.barrier_wait_s,
            b.outcome.barrier_wait_s
        );
    }

    #[test]
    fn builder_defaults_and_rep_seeds() {
        let s = Scenario::bench("UTS", ProgModel::OpenMp, 0.05).build();
        assert_eq!(s.label, "Default");
        assert_eq!(s.seed, HARNESS_SEED);
        assert_eq!(s.rep(), Some(0));
        let s = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
            .rep(3)
            .build();
        assert_eq!(s.rep(), Some(3));
        let s = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
            .seed(12345)
            .build();
        assert_eq!(s.rep(), None);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        // Trace on a cluster.
        let mut s = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
            .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
            .build();
        s.trace = true;
        assert!(s.validate().is_err());
        // DAG benchmark under BSP.
        let mut s = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
            .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
            .build();
        s.topology = Topology::bsp(4, 1.0e6);
        assert!(s.validate().is_err());
        // Weight list of the wrong length.
        let mut s = Scenario::synthetic(SyntheticSpec {
            phases: vec![ChunkPhase::compute(1)],
            total_chunks: Some(10),
        })
        .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
        .build();
        s.topology = Topology::Bsp {
            supersteps: 2,
            comm_bytes: 1.0,
            weights: vec![1, 2, 3],
        };
        assert!(s.validate().is_err());
        // Unknown benchmark.
        let s = Scenario {
            label: "x".into(),
            workload: WorkloadSpec::bench("NoSuch", ProgModel::OpenMp, 0.05),
            nodes: vec![(HASWELL_2650V3.clone(), NodePolicy::Default)],
            topology: Topology::SingleNode,
            seed: HARNESS_SEED,
            duration_s: None,
            trace: false,
            stepping: SteppingMode::default(),
        };
        assert!(s.validate().is_err());
        // Endless synthetic stream with nothing to terminate it.
        let endless = WorkloadSpec::Synthetic(SyntheticSpec {
            phases: vec![ChunkPhase::streaming(1)],
            total_chunks: None,
        });
        let mut s = Scenario::workload(endless.clone())
            .policy(NodePolicy::Default)
            .duration_s(0.1)
            .build();
        s.duration_s = None;
        assert!(s.validate().is_err(), "uncapped endless stream must fail");
        let mut s = Scenario::workload(endless)
            .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
            .bsp(2, 1.0e6)
            .build();
        s.topology = Topology::Replicated;
        assert!(s.validate().is_err(), "replicated endless stream must fail");
    }

    #[test]
    fn run_traced_respects_the_scenario_trace_flag() {
        // A buffer passed to an untraced scenario stays untouched and
        // the run keeps the event-driven loop.
        let scenario = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
            .policy(NodePolicy::Default)
            .build();
        let mut points = Vec::new();
        let o = scenario.run_traced(Some(&mut points));
        assert!(points.is_empty(), "untraced scenarios must not trace");
        let traced = scenario.run();
        assert_eq!(
            o.single().unwrap().joules.to_bits(),
            traced.single().unwrap().joules.to_bits(),
            "passing a buffer must not change the execution path"
        );
    }

    #[test]
    fn scenario_json_round_trips() {
        let s = Scenario::bench("Heat-ws", ProgModel::HClib, 0.05)
            .label("Cuttlefish-mpi")
            .nodes(
                4,
                &HASWELL_2650V3,
                NodePolicy::Cuttlefish(Config {
                    idle_guard: Some(0.3),
                    ..Config::default()
                }),
            )
            .bsp(96, 1.2e9)
            .rep(1)
            .build();
        let text = s.to_json_string();
        let parsed = Scenario::from_json_str(&text).expect("round trip parses");
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json_string(), text);
        // Default stepping stays off the wire, so every pre-existing
        // scenario file keeps its historical byte-exact encoding.
        assert_eq!(s.stepping, SteppingMode::EventDriven);
        assert!(!text.contains("stepping"));
    }

    #[test]
    fn stepping_mode_round_trips_through_scenario_json() {
        let s = Scenario::bench("Heat-ws", ProgModel::OpenMp, 0.05)
            .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
            .bsp(4, 1.0e6)
            .stepping(SteppingMode::Lockstep)
            .build();
        let text = s.to_json_string();
        assert!(
            text.contains("\"stepping\": \"lockstep\""),
            "non-default mode must be serialized: {text}"
        );
        let parsed = Scenario::from_json_str(&text).expect("round trip parses");
        assert_eq!(parsed.stepping, SteppingMode::Lockstep);
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn policy_json_round_trips() {
        for policy in [
            NodePolicy::Default,
            NodePolicy::Cuttlefish(Config::default().with_policy(Policy::CoreOnly)),
            NodePolicy::Pinned {
                cf: Freq(12),
                uf: Freq(22),
            },
            NodePolicy::Ondemand,
        ] {
            assert_eq!(NodePolicy::from_json(&policy.to_json()).unwrap(), policy);
        }
    }
}
