//! Inspect and garbage-collect the content-addressed result store.
//!
//! `store <command> [--store PATH]`
//!
//! * `ls` — list every entry (key, code version, benchmark, label,
//!   compute wall-clock, size), sorted by key;
//! * `stats` — aggregate shape: entries, total bytes, distinct code
//!   versions, hint coverage (the same `bench::store::StoreStats`
//!   computation the `cuttlefish-serve` daemon reports over the wire);
//! * `verify` — fully verify every entry (decodable, filename/key
//!   consistent, result digest intact); exits non-zero if any fail;
//! * `gc` — remove entries that can never hit under the current code
//!   version (stale fingerprints, undecodable files);
//! * `rm PREFIX` / `rm --all` — remove entries by key-hex prefix, or
//!   everything.
//!
//! The root resolves like the grid bins: `--store PATH`, else
//! `CUTTLEFISH_STORE`, else `target/cuttlefish-store`.

use bench::store::{resolve_root, Store};
use std::path::PathBuf;

const USAGE: &str = "store <ls|stats|verify|gc|rm> [PREFIX|--all] [--store PATH]";

fn main() {
    let mut command = None;
    let mut operand: Option<String> = None;
    let mut root = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                root = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    die("--store needs a path");
                })));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ if command.is_none() => command = Some(arg),
            _ if operand.is_none() => operand = Some(arg),
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    let store = Store::open(resolve_root(root));
    let command = command.unwrap_or_else(|| die("missing command"));
    match command.as_str() {
        "ls" => ls(&store),
        "stats" => stats(&store),
        "verify" => verify(&store),
        "gc" => gc(&store),
        "rm" => rm(&store, operand.as_deref()),
        other => die(&format!("unknown command `{other}`")),
    }
}

fn ls(store: &Store) {
    let files = store.entry_files();
    let current = store.code_version();
    let mut fresh = 0usize;
    for path in &files {
        match Store::describe(path) {
            Ok(meta) => {
                let marker = if meta.code_version == current {
                    fresh += 1;
                    ' '
                } else {
                    // Stale: still addressable under its own code
                    // version, but the current build will never hit it.
                    '*'
                };
                println!(
                    "{}{} cv={} {:>9.1} ms {:>7} B  {:<12} {}",
                    marker,
                    meta.key,
                    meta.code_version,
                    meta.wall_ms,
                    meta.bytes,
                    meta.bench,
                    meta.label
                );
            }
            Err(e) => println!("!{} — undecodable: {e}", path.display()),
        }
    }
    println!(
        "{} entries at {} ({} current under cv={}, * = stale, ! = corrupt)",
        files.len(),
        store.root().display(),
        fresh,
        current
    );
}

fn stats(store: &Store) {
    let s = store.stats();
    println!(
        "{} entries ({} bytes, {} corrupt) across {} code version(s) at {}",
        s.entries,
        s.bytes,
        s.corrupt,
        s.code_versions,
        store.root().display()
    );
    println!(
        "hints: {} file(s), {:.0}% cell coverage (current cv={})",
        s.hints,
        s.hint_coverage * 100.0,
        store.code_version()
    );
}

fn verify(store: &Store) {
    let files = store.entry_files();
    let mut bad = 0usize;
    for path in &files {
        if let Err(e) = store.verify_file(path) {
            eprintln!("BAD {}: {e}", path.display());
            bad += 1;
        }
    }
    println!(
        "verified {} entries at {}: {} ok, {bad} bad",
        files.len(),
        store.root().display(),
        files.len() - bad
    );
    if bad > 0 {
        std::process::exit(1);
    }
}

fn gc(store: &Store) {
    match store.gc() {
        Ok(report) => println!(
            "gc {}: kept {}, removed {} ({} bytes freed; current cv={})",
            store.root().display(),
            report.kept,
            report.removed,
            report.bytes_freed,
            store.code_version()
        ),
        Err(e) => die(&format!("gc failed: {e}")),
    }
}

fn rm(store: &Store, operand: Option<&str>) {
    let prefix = match operand {
        Some("--all") => "",
        Some(p) if p.chars().all(|c| c.is_ascii_hexdigit()) && !p.is_empty() => p,
        Some(p) => die(&format!("`{p}` is not a hex key prefix (or --all)")),
        None => die("rm needs a key prefix or --all"),
    };
    match store.remove_prefix(prefix) {
        Ok(n) => println!("removed {n} entries from {}", store.root().display()),
        Err(e) => die(&format!("rm failed: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}
