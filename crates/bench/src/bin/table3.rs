//! Table 3 — sensitivity to the profiling interval `Tinv`.
//!
//! Geomean energy savings and slowdown over the OpenMP suite for
//! `Tinv` ∈ {10, 20, 40, 60} ms. The paper's trend: larger `Tinv`
//! slightly reduces both savings and slowdown (exploration takes
//! longer, so more time runs at the higher pre-optimum frequencies);
//! 20 ms is chosen as the default.
//!
//! Usage: `cargo run --release -p bench --bin table3 --
//!         [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]`

use bench::cli::GridArgs;
use bench::grid::{
    compare_to_baseline, geomean_by_setup, AxisSet, GridResult, GridSetup, GridSpec,
};
use bench::{render_table, Setup};
use cuttlefish::{Config, Policy};

const USAGE: &str = "table3 [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

const TINVS_MS: [u64; 4] = [10, 20, 40, 60];

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("table3", args.scale());
    // Default runs are Tinv-independent: one baseline setup, then one
    // Cuttlefish setup per interval.
    let mut setups = vec![GridSetup::new("Default", Setup::Default)];
    for tinv_ms in TINVS_MS {
        setups.push(
            GridSetup::new(format!("Tinv={tinv_ms}ms"), Setup::Cuttlefish(Policy::Both))
                .with_config(Config::default().with_tinv_ms(tinv_ms)),
        );
    }
    let benchmarks = if args.smoke {
        vec!["SOR-ws".into(), "Heat-irt".into()]
    } else {
        spec.full_suite()
    };
    spec.push(AxisSet::new(benchmarks, setups));
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "table3: Tinv sensitivity at scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result);
}

fn render(result: &GridResult) {
    let geomeans = geomean_by_setup(&compare_to_baseline(result, "Default"));
    let mut rows = Vec::new();
    for tinv_ms in TINVS_MS {
        let label = format!("Tinv={tinv_ms}ms");
        let (_, energy, slowdown, _) = geomeans
            .iter()
            .find(|(l, ..)| *l == label)
            .expect("tinv setup present");
        rows.push(vec![
            format!("{tinv_ms}ms"),
            format!("{energy:.1}%"),
            format!("{slowdown:.1}%"),
        ]);
    }

    println!(
        "{}",
        render_table(&["T_inv", "energy savings", "slowdown"], &rows)
    );
    println!("(paper: 10ms 19.5%/4.1%, 20ms 19.4%/3.6%, 40ms 18.8%/2.9%, 60ms 17.8%/2.9%)");
}
