//! Table 3 — sensitivity to the profiling interval `Tinv`.
//!
//! Geomean energy savings and slowdown over the OpenMP suite for
//! `Tinv` ∈ {10, 20, 40, 60} ms. The paper's trend: larger `Tinv`
//! slightly reduces both savings and slowdown (exploration takes
//! longer, so more time runs at the higher pre-optimum frequencies);
//! 20 ms is chosen as the default.
//!
//! Usage: `cargo run --release -p bench --bin table3`

use bench::{geomean_saving, render_table, run, saving_pct, Setup};
use cuttlefish::{Config, Policy};
use workloads::{openmp_suite, ProgModel};

fn main() {
    let scale = bench::harness_scale();
    eprintln!("table3: Tinv sensitivity at scale {:.2}", scale.0);

    let suite = openmp_suite(scale);
    // Default runs are Tinv-independent: measure once.
    let bases: Vec<_> = suite
        .iter()
        .map(|b| {
            run(
                b,
                Setup::Default,
                ProgModel::OpenMp,
                Config::default(),
                None,
            )
        })
        .collect();

    let mut rows = Vec::new();
    for tinv_ms in [10u64, 20, 40, 60] {
        let cfg = Config::default().with_tinv_ms(tinv_ms);
        let mut e_savs = Vec::new();
        let mut slows = Vec::new();
        for (b, base) in suite.iter().zip(&bases) {
            let o = run(
                b,
                Setup::Cuttlefish(Policy::Both),
                ProgModel::OpenMp,
                cfg.clone(),
                None,
            );
            e_savs.push(saving_pct(base.joules, o.joules));
            slows.push(-(o.seconds / base.seconds - 1.0) * 100.0);
        }
        rows.push(vec![
            format!("{tinv_ms}ms"),
            format!("{:.1}%", geomean_saving(&e_savs)),
            format!("{:.1}%", -geomean_saving(&slows)),
        ]);
    }

    println!(
        "{}",
        render_table(&["T_inv", "energy savings", "slowdown"], &rows)
    );
    println!("(paper: 10ms 19.5%/4.1%, 20ms 19.4%/3.6%, 40ms 18.8%/2.9%, 60ms 17.8%/2.9%)");
}
