//! Figure 11 — the HClib (async–finish work-stealing) evaluation.
//!
//! Reproduces the paper's §5.2: the SOR and Heat variants executed
//! under the HClib-style work-stealing runtime, each Cuttlefish policy
//! vs the Default. The paper's claim — Cuttlefish is programming-model
//! oblivious — shows as this figure matching Figure 10's results for
//! the same benchmarks.
//!
//! Usage: `cargo run --release -p bench --bin fig11`

use bench::{geomean_saving, render_table, run, saving_pct, Setup};
use cuttlefish::Config;
use workloads::{hclib_suite, ProgModel};

fn main() {
    let scale = bench::harness_scale();
    eprintln!("fig11: HClib suite at scale {:.2}", scale.0);

    let suite = hclib_suite(scale);
    let mut rows = Vec::new();
    let mut by_setup: std::collections::BTreeMap<&str, Vec<(f64, f64, f64)>> = Default::default();

    for bench_def in &suite {
        let base = run(
            bench_def,
            Setup::Default,
            ProgModel::HClib,
            Config::default(),
            None,
        );
        for setup in [
            Setup::Cuttlefish(cuttlefish::Policy::Both),
            Setup::Cuttlefish(cuttlefish::Policy::CoreOnly),
            Setup::Cuttlefish(cuttlefish::Policy::UncoreOnly),
        ] {
            let o = run(bench_def, setup, ProgModel::HClib, Config::default(), None);
            let e_sav = saving_pct(base.joules, o.joules);
            let slow = (o.seconds / base.seconds - 1.0) * 100.0;
            let edp_sav = saving_pct(base.edp(), o.edp());
            by_setup
                .entry(o.setup)
                .or_default()
                .push((e_sav, slow, edp_sav));
            rows.push(vec![
                o.bench.clone(),
                o.setup.to_string(),
                format!("{e_sav:+.1}%"),
                format!("{slow:+.1}%"),
                format!("{edp_sav:+.1}%"),
            ]);
        }
    }

    println!(
        "{}",
        render_table(
            &["benchmark", "setup", "energy-sav", "time-deg", "EDP-sav"],
            &rows
        )
    );
    println!("Geometric means (compare with the same benchmarks in fig10 —");
    println!("similarity across programming models is the paper's §5.2 claim):");
    for (setup, triples) in &by_setup {
        let e: Vec<f64> = triples.iter().map(|t| t.0).collect();
        let s: Vec<f64> = triples.iter().map(|t| -t.1).collect();
        let d: Vec<f64> = triples.iter().map(|t| t.2).collect();
        println!(
            "  {:>17}: energy {:+5.1}%  slowdown {:+5.1}%  EDP {:+5.1}%",
            setup,
            geomean_saving(&e),
            -geomean_saving(&s),
            geomean_saving(&d),
        );
    }
}
