//! Figure 11 — the HClib (async–finish work-stealing) evaluation.
//!
//! Reproduces the paper's §5.2: the SOR and Heat variants executed
//! under the HClib-style work-stealing runtime, each Cuttlefish policy
//! vs the Default. The paper's claim — Cuttlefish is programming-model
//! oblivious — shows as this figure matching Figure 10's results for
//! the same benchmarks.
//!
//! Usage: `cargo run --release -p bench --bin fig11 --
//!         [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]`

use bench::cli::GridArgs;
use bench::grid::{
    compare_to_baseline, geomean_by_setup, paper_setups, AxisSet, Fleet, GridResult, GridSetup,
    GridSpec,
};
use bench::{render_table, Setup};
use cuttlefish::Policy;
use workloads::ProgModel;

const USAGE: &str = "fig11 [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("fig11", args.scale());
    spec.model = ProgModel::HClib;
    if args.smoke {
        spec.push(AxisSet::new(
            vec!["SOR-irt".into(), "Heat-ws".into()],
            paper_setups(),
        ));
        // One MPI+HClib cell (two work-stealing nodes, final barrier):
        // the §5.2 obliviousness claim extended to the §4.6 MPI+X shape.
        spec.push(
            AxisSet::new(
                vec!["Heat-ws".into()],
                vec![GridSetup::new(
                    "Cuttlefish-2node",
                    Setup::Cuttlefish(Policy::Both),
                )],
            )
            .with_fleets(vec![Fleet::uniform(2)]),
        );
        // And the barrier-window-dominated bulk-synchronous shape
        // (per-superstep barrier + 100 ms collective), matching the
        // fig10 MPI cells so the obliviousness comparison extends to
        // the cluster path.
        spec.push(
            AxisSet::new(
                vec!["Heat-ws".into()],
                vec![GridSetup::new(
                    "Cuttlefish-mpi",
                    Setup::Cuttlefish(Policy::Both),
                )],
            )
            .with_fleets(vec![Fleet::uniform(4).with_bsp(96, 1.2e9)]),
        );
    } else {
        let full = spec.full_suite();
        spec.push(AxisSet::new(full, paper_setups()));
    }
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "fig11: HClib suite at scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result);
}

fn render(result: &GridResult) {
    let comparisons = compare_to_baseline(result, "Default");
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.bench.clone(),
                c.label.clone(),
                format!("{:+.1}%", c.energy_saving_pct),
                format!("{:+.1}%", c.time_degradation_pct),
                format!("{:+.1}%", c.edp_saving_pct),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            &["benchmark", "setup", "energy-sav", "time-deg", "EDP-sav"],
            &rows
        )
    );
    println!("Geometric means (compare with the same benchmarks in fig10 —");
    println!("similarity across programming models is the paper's §5.2 claim):");
    for (setup, energy, slowdown, edp) in geomean_by_setup(&comparisons) {
        println!(
            "  {setup:>17}: energy {energy:+5.1}%  slowdown {slowdown:+5.1}%  EDP {edp:+5.1}%"
        );
    }
}
