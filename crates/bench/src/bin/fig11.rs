//! Figure 11 — the HClib (async–finish work-stealing) evaluation.
//!
//! Reproduces the paper's §5.2: the SOR and Heat variants executed
//! under the HClib-style work-stealing runtime, each Cuttlefish policy
//! vs the Default. The paper's claim — Cuttlefish is programming-model
//! oblivious — shows as this figure matching Figure 10's results for
//! the same benchmarks.
//!
//! Usage: `cargo run --release -p bench --bin fig11 --
//!         [--smoke] [--shards N] [--json PATH]`

use bench::cli::GridArgs;
use bench::grid::{compare_to_baseline, geomean_by_setup, paper_setups, GridResult, GridSpec};
use bench::render_table;
use workloads::ProgModel;

const USAGE: &str = "fig11 [--smoke] [--shards N] [--json PATH]";

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("fig11", args.scale());
    spec.model = ProgModel::HClib;
    spec.setups = paper_setups();
    if args.smoke {
        spec.benchmarks = vec!["SOR-irt".into(), "Heat-ws".into()];
    } else {
        spec.use_full_suite();
    }
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    eprintln!(
        "fig11: HClib suite at scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let result = spec.run(args.shards);
    args.finish(&result);
    render(&result);
}

fn render(result: &GridResult) {
    let comparisons = compare_to_baseline(result, "Default");
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.bench.clone(),
                c.label.clone(),
                format!("{:+.1}%", c.energy_saving_pct),
                format!("{:+.1}%", c.time_degradation_pct),
                format!("{:+.1}%", c.edp_saving_pct),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            &["benchmark", "setup", "energy-sav", "time-deg", "EDP-sav"],
            &rows
        )
    );
    println!("Geometric means (compare with the same benchmarks in fig10 —");
    println!("similarity across programming models is the paper's §5.2 claim):");
    for (setup, energy, slowdown, edp) in geomean_by_setup(&comparisons) {
        println!(
            "  {setup:>17}: energy {energy:+5.1}%  slowdown {slowdown:+5.1}%  EDP {edp:+5.1}%"
        );
    }
}
