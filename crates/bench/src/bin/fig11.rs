//! Figure 11 — the HClib (async–finish work-stealing) evaluation.
//!
//! Reproduces the paper's §5.2: the SOR and Heat variants executed
//! under the HClib-style work-stealing runtime, each Cuttlefish policy
//! vs the Default. The paper's claim — Cuttlefish is programming-model
//! oblivious — shows as this figure matching Figure 10's results for
//! the same benchmarks.
//!
//! Usage: `cargo run --release -p bench --bin fig11 --
//!         [--smoke] [--shards N] [--json PATH]`

use bench::cli::GridArgs;
use bench::grid::{
    compare_to_baseline, geomean_by_setup, paper_setups, BspCell, CellSpec, GridResult, GridSpec,
};
use bench::{render_table, Setup};
use cuttlefish::{Config, Policy};
use workloads::ProgModel;

const USAGE: &str = "fig11 [--smoke] [--shards N] [--json PATH]";

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("fig11", args.scale());
    spec.model = ProgModel::HClib;
    spec.setups = paper_setups();
    if args.smoke {
        spec.benchmarks = vec!["SOR-irt".into(), "Heat-ws".into()];
        // One MPI+HClib cell (two work-stealing nodes, final barrier):
        // the §5.2 obliviousness claim extended to the §4.6 MPI+X shape.
        spec.extra.push(CellSpec {
            bench: "Heat-ws".into(),
            model: ProgModel::HClib,
            label: "Cuttlefish-2node".into(),
            setup: Setup::Cuttlefish(Policy::Both),
            config: Config::default(),
            nodes: 2,
            rep: 0,
            trace: false,
            machines: None,
            bsp: None,
        });
        // And the barrier-window-dominated bulk-synchronous shape
        // (per-superstep barrier + 100 ms collective), matching the
        // fig10 MPI cells so the obliviousness comparison extends to
        // the cluster path.
        spec.extra.push(CellSpec {
            bench: "Heat-ws".into(),
            model: ProgModel::HClib,
            label: "Cuttlefish-mpi".into(),
            setup: Setup::Cuttlefish(Policy::Both),
            config: Config::default(),
            nodes: 4,
            rep: 0,
            trace: false,
            machines: None,
            bsp: Some(BspCell {
                supersteps: 96,
                comm_bytes: 1.2e9,
            }),
        });
    } else {
        spec.use_full_suite();
    }
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    eprintln!(
        "fig11: HClib suite at scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = spec.run_timed(args.shards);
    args.finish_timed(&result, &timing);
    render(&result);
}

fn render(result: &GridResult) {
    let comparisons = compare_to_baseline(result, "Default");
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.bench.clone(),
                c.label.clone(),
                format!("{:+.1}%", c.energy_saving_pct),
                format!("{:+.1}%", c.time_degradation_pct),
                format!("{:+.1}%", c.edp_saving_pct),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            &["benchmark", "setup", "energy-sav", "time-deg", "EDP-sav"],
            &rows
        )
    );
    println!("Geometric means (compare with the same benchmarks in fig10 —");
    println!("similarity across programming models is the paper's §5.2 claim):");
    for (setup, energy, slowdown, edp) in geomean_by_setup(&comparisons) {
        println!(
            "  {setup:>17}: energy {energy:+5.1}%  slowdown {slowdown:+5.1}%  EDP {edp:+5.1}%"
        );
    }
}
