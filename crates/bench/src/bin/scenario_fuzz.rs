//! Deterministic scenario-fuzz campaign driver: generate `--cases`
//! scenarios from `--seed`, run each under every `--governors` entry
//! plus the static pin sweep, and assert the differential invariant
//! catalogue (docs/FUZZING.md). The JSON report is bit-identical for
//! a given `(seed, cases, governors)` regardless of `--shards` or
//! prior runs; exit status 1 signals violations, 2 usage errors.
//!
//! With `--shrink`, every violating case is greedily minimized (the
//! predicate being "run_case still reports a violation") and the
//! shrunk reproducer is written next to the report — the candidate a
//! fix turns into a committed `scenarios/regression-*.json`.

use bench::fuzz::{
    all_governors, parse_governors, run_campaign, run_case, shrink, CampaignConfig, Tolerances,
};

fn die(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}\n{usage}");
    std::process::exit(2);
}

fn die_io(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

const USAGE: &str = "usage: scenario_fuzz [--seed S] [--cases N] [--governors a,b,..] \
     [--shards N] [--shrink] [--json PATH]

  --seed S          campaign seed, decimal or 0x-hex (default 0xC0FFEE)
  --cases N         cases to generate (default 200)
  --governors LIST  comma-separated subset of:
                    default,cuttlefish,pinned,ondemand,oracle,pid-uncore
                    (default: all six)
  --shards N        worker threads (default: available parallelism);
                    never changes the report bytes
  --shrink          minimize each violating case and write the shrunk
                    reproducer beside the report (or ./)
  --json PATH       write the deterministic campaign report to PATH";

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>()
    };
    parsed.map_err(|e| format!("bad seed `{s}`: {e}"))
}

fn main() {
    let mut seed: u64 = bench::HARNESS_SEED;
    let mut cases: u64 = 200;
    let mut governors = all_governors();
    let mut shards = bench::cli::default_shards();
    let mut do_shrink = false;
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(USAGE, &format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed");
                seed = parse_seed(&v).unwrap_or_else(|e| die(USAGE, &e));
            }
            "--cases" => {
                let v = value("--cases");
                cases = v
                    .parse()
                    .unwrap_or_else(|e| die(USAGE, &format!("bad case count `{v}`: {e}")));
            }
            "--governors" => {
                let v = value("--governors");
                governors = parse_governors(&v).unwrap_or_else(|e| die(USAGE, &e));
            }
            "--shards" => {
                let v = value("--shards");
                shards = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die(USAGE, &format!("bad shard count `{v}`")));
            }
            "--shrink" => do_shrink = true,
            "--json" => json_path = Some(value("--json")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(USAGE, &format!("unknown flag `{other}`")),
        }
    }

    let config = CampaignConfig {
        seed,
        cases,
        governors,
        shards,
        tol: Tolerances::default(),
    };
    let start = std::time::Instant::now();
    let campaign = run_campaign(&config);
    let wall = start.elapsed();

    for case in &campaign.outcomes {
        for v in &case.violations {
            eprintln!(
                "case {}: [{}] governor {}: {}",
                case.index, v.invariant, v.governor, v.detail
            );
        }
    }

    if let Some(path) = &json_path {
        std::fs::write(path, campaign.to_json_string())
            .unwrap_or_else(|e| die_io(&format!("writing {path}: {e}")));
        eprintln!("report: {path}");
    }

    let violations = campaign.violation_count();
    if do_shrink && violations > 0 {
        let dir = json_path
            .as_deref()
            .and_then(|p| std::path::Path::new(p).parent())
            .filter(|p| !p.as_os_str().is_empty())
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        for case in campaign.outcomes.iter().filter(|c| !c.clean()) {
            let mut failing = |s: &bench::scenario::Scenario| {
                !run_case(case.index, s, &config.governors, &config.tol).clean()
            };
            let shrunk = shrink(&case.scenario, &mut failing);
            let path = dir.join(format!("regression-candidate-{:04}.json", case.index));
            std::fs::write(&path, shrunk.to_json_string())
                .unwrap_or_else(|e| die_io(&format!("writing {}: {e}", path.display())));
            eprintln!("case {}: shrunk reproducer: {}", case.index, path.display());
        }
    }

    println!(
        "fuzz: seed {seed:#x}, {} cases x {} governors, {violations} violations, {:.1}s",
        campaign.config.cases,
        campaign.config.governors.len(),
        wall.as_secs_f64()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
