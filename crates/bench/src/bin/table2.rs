//! Table 2 — per-benchmark frequency assignments.
//!
//! For every OpenMP benchmark: the fraction of distinct TIPI ranges
//! whose CFopt/UFopt were resolved, and for each *frequent* TIPI range
//! (>10 % of samples) the CFopt and UFopt Cuttlefish chose, versus the
//! Default execution's settings (CF pinned 2.3; firmware uncore 2.2
//! for compute-bound, 3.0 for memory-bound).
//!
//! Usage: `cargo run --release -p bench --bin table2`

use bench::{render_table, run, Setup};
use cuttlefish::{Config, Policy};
use workloads::{openmp_suite, ProgModel};

fn main() {
    let scale = bench::harness_scale();
    eprintln!("table2: OpenMP suite at scale {:.2}", scale.0);

    let suite = openmp_suite(scale);
    let mut rows = Vec::new();

    for bench_def in &suite {
        // Default run to observe the firmware's uncore choice.
        let mut trace = Vec::new();
        let _ = run(
            bench_def,
            Setup::Default,
            ProgModel::OpenMp,
            Config::default(),
            Some(&mut trace),
        );
        // Modal uncore frequency over the run (the firmware's settled
        // point; the last sample can catch a phase dip).
        let default_uf = {
            let mut counts: std::collections::BTreeMap<u32, u32> = Default::default();
            for p in &trace {
                *counts.entry((p.uf_ghz * 10.0).round() as u32).or_default() += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(_, n)| n)
                .map(|(r, _)| r as f64 / 10.0)
                .unwrap_or(f64::NAN)
        };

        let o = run(
            bench_def,
            Setup::Cuttlefish(Policy::Both),
            ProgModel::OpenMp,
            Config::default(),
            None,
        );
        let (cf_frac, uf_frac) = o.resolved;
        let mut first = true;
        for r in o.report.iter().filter(|r| r.is_frequent()) {
            rows.push(vec![
                if first {
                    o.bench.clone()
                } else {
                    String::new()
                },
                if first {
                    format!("{:.0}% / {:.0}%", cf_frac * 100.0, uf_frac * 100.0)
                } else {
                    String::new()
                },
                format!("{} ({:.0}%)", r.label, r.share * 100.0),
                r.cf_opt
                    .map(|f| format!("{:.1}", f.ghz()))
                    .unwrap_or("-".into()),
                r.uf_opt
                    .map(|f| format!("{:.1}", f.ghz()))
                    .unwrap_or("-".into()),
                "2.3".into(),
                format!("{default_uf:.1}"),
            ]);
            first = false;
        }
        if first {
            rows.push(vec![
                o.bench.clone(),
                format!("{:.0}% / {:.0}%", cf_frac * 100.0, uf_frac * 100.0),
                "(no frequent range)".into(),
                "-".into(),
                "-".into(),
                "2.3".into(),
                format!("{default_uf:.1}"),
            ]);
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "resolved CF/UF",
                "frequent TIPI range",
                "CFopt",
                "UFopt",
                "Def CF",
                "Def UF",
            ],
            &rows
        )
    );
}
