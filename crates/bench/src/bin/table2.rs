//! Table 2 — per-benchmark frequency assignments.
//!
//! For every OpenMP benchmark: the fraction of distinct TIPI ranges
//! whose CFopt/UFopt were resolved, and for each *frequent* TIPI range
//! (>10 % of samples) the CFopt and UFopt Cuttlefish chose, versus the
//! Default execution's settings (CF pinned 2.3; firmware uncore 2.2
//! for compute-bound, 3.0 for memory-bound).
//!
//! A second section reports the paper's central §5 comparison as a
//! number: the energy gap between Cuttlefish's *online* search and the
//! *static oracle* (its per-phase table derived from the benchmark's
//! traced Default run) on the same cells.
//!
//! Usage: `cargo run --release -p bench --bin table2 --
//!         [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]`

use bench::cli::GridArgs;
use bench::grid::{AxisSet, CellResult, GridResult, GridSetup, GridSpec};
use bench::{render_table, saving_pct, Setup};
use cuttlefish::Policy;

const USAGE: &str = "table2 [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("table2", args.scale());
    let setups = vec![
        // Default with a trace: the firmware's settled uncore choice is
        // read off the timeline.
        GridSetup::new("Default", Setup::Default).with_trace(),
        GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
    ];
    let benchmarks = if args.smoke {
        vec!["UTS".into(), "Heat-ws".into(), "MiniFE".into()]
    } else {
        spec.full_suite()
    };
    spec.push(AxisSet::new(benchmarks.clone(), setups));
    // The oracle column, appended as its own axis-set so the historical
    // cells keep their positions (and bytes) in the artifact.
    spec.push(AxisSet::new(
        benchmarks,
        vec![GridSetup::new("Oracle", Setup::Oracle)],
    ));
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "table2: OpenMP suite at scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result);
}

/// Modal uncore frequency over the Default run (the firmware's settled
/// point; the last sample can catch a phase dip).
fn modal_uf(cell: &CellResult) -> f64 {
    let mut counts: std::collections::BTreeMap<u32, u32> = Default::default();
    for p in &cell.trace {
        *counts.entry((p.uf_ghz * 10.0).round() as u32).or_default() += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .map(|(r, _)| f64::from(r) / 10.0)
        .unwrap_or(f64::NAN)
}

fn render(result: &GridResult) {
    let mut rows = Vec::new();
    for bench in result.benches() {
        let default_uf = modal_uf(result.cell(bench, "Default").expect("default cell"));
        let o = result.cell(bench, "Cuttlefish").expect("cuttlefish cell");
        let (cf_frac, uf_frac) = (o.resolved_cf, o.resolved_uf);
        let mut first = true;
        for r in o.report.iter().filter(|r| r.is_frequent()) {
            rows.push(vec![
                if first {
                    o.spec.bench.clone()
                } else {
                    String::new()
                },
                if first {
                    format!("{:.0}% / {:.0}%", cf_frac * 100.0, uf_frac * 100.0)
                } else {
                    String::new()
                },
                format!("{} ({:.0}%)", r.label, r.share * 100.0),
                r.cf_ghz().map(|f| format!("{f:.1}")).unwrap_or("-".into()),
                r.uf_ghz().map(|f| format!("{f:.1}")).unwrap_or("-".into()),
                "2.3".into(),
                format!("{default_uf:.1}"),
            ]);
            first = false;
        }
        if first {
            rows.push(vec![
                o.spec.bench.clone(),
                format!("{:.0}% / {:.0}%", cf_frac * 100.0, uf_frac * 100.0),
                "(no frequent range)".into(),
                "-".into(),
                "-".into(),
                "2.3".into(),
                format!("{default_uf:.1}"),
            ]);
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "resolved CF/UF",
                "frequent TIPI range",
                "CFopt",
                "UFopt",
                "Def CF",
                "Def UF",
            ],
            &rows
        )
    );

    render_oracle_gap(result);
}

/// The §5 headline as a table: per benchmark, energy savings of the
/// online search and of the static oracle relative to Default, and
/// the gap between them (positive = the online search used more energy
/// than the statically-known optimum; the paper's claim is that this
/// gap is small).
fn render_oracle_gap(result: &GridResult) {
    let mut rows = Vec::new();
    for bench in result.benches() {
        let (Some(default), Some(cuttlefish), Some(oracle)) = (
            result.cell(bench, "Default"),
            result.cell(bench, "Cuttlefish"),
            result.cell(bench, "Oracle"),
        ) else {
            continue;
        };
        rows.push(vec![
            bench.to_string(),
            format!("{:+.1}%", saving_pct(default.joules, cuttlefish.joules)),
            format!("{:+.1}%", saving_pct(default.joules, oracle.joules)),
            format!("{:+.1}%", (cuttlefish.joules / oracle.joules - 1.0) * 100.0),
            format!(
                "{:+.1}%",
                (cuttlefish.seconds / oracle.seconds - 1.0) * 100.0
            ),
        ]);
    }
    if rows.is_empty() {
        return;
    }
    println!("Cuttlefish vs Oracle (paper §5: online search ≈ static oracle):");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "Cuttlefish energy-sav",
                "Oracle energy-sav",
                "energy gap",
                "time gap",
            ],
            &rows
        )
    );
}
