//! Figure 2 — TIPI and JPI timelines.
//!
//! Reproduces both panels of the paper's Figure 2: for each of the six
//! headline benchmarks run at maximum frequencies, the per-`Tinv` TIPI
//! and JPI series over the execution timeline. Output is a CSV-like
//! series (downsampled for readability) plus the correlation statistic
//! the paper's analysis rests on ("for each benchmark, JPI increases
//! with the increase in TIPI").
//!
//! Usage: `cargo run --release -p bench --bin fig2 [--csv]`

use bench::{run, Setup, TracePoint};
use cuttlefish::Config;
use workloads::{openmp_suite, ProgModel};

/// Pearson correlation between TIPI and JPI series.
fn correlation(points: &[TracePoint]) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.tipi).sum::<f64>() / n;
    let my = points.iter().map(|p| p.jpi).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for p in points {
        let dx = p.tipi - mx;
        let dy = p.jpi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let scale = bench::harness_scale();
    eprintln!("fig2: timelines at max frequencies, scale {:.2}", scale.0);

    // The paper plots UTS, SOR-irt, Heat-irt, MiniFE, HPCCG, AMG.
    let wanted = ["UTS", "SOR-irt", "Heat-irt", "MiniFE", "HPCCG", "AMG"];
    let suite = openmp_suite(scale);

    for name in wanted {
        let bench_def = suite
            .iter()
            .find(|b| b.name == name)
            .expect("known benchmark");
        let mut trace = Vec::new();
        let _ = run(
            bench_def,
            Setup::Default,
            ProgModel::OpenMp,
            Config::default(),
            Some(&mut trace),
        );
        if csv {
            println!("# {name}: t_s,tipi,jpi_nJ");
            for p in &trace {
                println!("{:.3},{:.5},{:.4}", p.t_s, p.tipi, p.jpi * 1e9);
            }
            continue;
        }
        let r = correlation(&trace);
        println!(
            "== {name}: {} samples, corr(TIPI, JPI) = {r:+.3}",
            trace.len()
        );
        // Downsample to ~16 display rows.
        let step = (trace.len() / 16).max(1);
        for p in trace.iter().step_by(step) {
            let bar = "#".repeat((p.tipi * 400.0).min(60.0) as usize);
            println!(
                "  t={:6.2}s  TIPI {:.4}  JPI {:6.3} nJ  |{bar}",
                p.t_s,
                p.tipi,
                p.jpi * 1e9
            );
        }
    }
}
