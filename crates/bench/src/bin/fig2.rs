//! Figure 2 — TIPI and JPI timelines.
//!
//! Reproduces both panels of the paper's Figure 2: for each of the six
//! headline benchmarks run at maximum frequencies, the per-`Tinv` TIPI
//! and JPI series over the execution timeline. Output is a CSV-like
//! series (downsampled for readability) plus the correlation statistic
//! the paper's analysis rests on ("for each benchmark, JPI increases
//! with the increase in TIPI").
//!
//! Usage: `cargo run --release -p bench --bin fig2 --
//!         [--csv] [--smoke] [--shards N] [--json PATH]
//!         [--scenario FILE] [--list]`

use bench::cli::GridArgs;
use bench::grid::{AxisSet, GridResult, GridSetup, GridSpec};
use bench::{Setup, TracePoint};

const USAGE: &str = "fig2 [--csv] [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

/// Pearson correlation between TIPI and JPI series.
fn correlation(points: &[TracePoint]) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.tipi).sum::<f64>() / n;
    let my = points.iter().map(|p| p.jpi).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for p in points {
        let dx = p.tipi - mx;
        let dy = p.jpi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("fig2", args.scale());
    // The paper plots UTS, SOR-irt, Heat-irt, MiniFE, HPCCG, AMG.
    let benchmarks = if args.smoke {
        vec!["UTS".into(), "Heat-irt".into()]
    } else {
        ["UTS", "SOR-irt", "Heat-irt", "MiniFE", "HPCCG", "AMG"]
            .map(String::from)
            .to_vec()
    };
    spec.push(AxisSet::new(
        benchmarks,
        vec![GridSetup::new("Default", Setup::Default).with_trace()],
    ));
    spec
}

fn main() {
    let mut args = GridArgs::parse_with(USAGE, &["--csv"]);
    let csv = args.take_flag("--csv");
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "fig2: timelines at max frequencies, scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result, csv);
}

fn render(result: &GridResult, csv: bool) {
    for cell in &result.cells {
        let name = &cell.spec.bench;
        let trace = &cell.trace;
        if csv {
            println!("# {name}: t_s,tipi,jpi_nJ");
            for p in trace {
                println!("{:.3},{:.5},{:.4}", p.t_s, p.tipi, p.jpi * 1e9);
            }
            continue;
        }
        let r = correlation(trace);
        println!(
            "== {name}: {} samples, corr(TIPI, JPI) = {r:+.3}",
            trace.len()
        );
        // Downsample to ~16 display rows.
        let step = (trace.len() / 16).max(1);
        for p in trace.iter().step_by(step) {
            let bar = "#".repeat((p.tipi * 400.0).min(60.0) as usize);
            println!(
                "  t={:6.2}s  TIPI {:.4}  JPI {:6.3} nJ  |{bar}",
                p.t_s,
                p.tipi,
                p.jpi * 1e9
            );
        }
    }
}
