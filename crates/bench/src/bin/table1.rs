//! Table 1 — benchmark characterization.
//!
//! Runs every OpenMP benchmark under the Default setup and reports the
//! columns of the paper's Table 1: execution time, observed TIPI range,
//! number of distinct TIPI slabs, and number of frequent slabs (>10 %
//! of `Tinv` samples).
//!
//! Usage: `cargo run --release -p bench --bin table1 --
//!         [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]`

use bench::cli::GridArgs;
use bench::grid::{AxisSet, GridResult, GridSetup, GridSpec};
use bench::{render_table, Setup};
use std::collections::BTreeMap;
use workloads::cache::slab_of;
use workloads::{openmp_suite, Scale};

const USAGE: &str = "table1 [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("table1", args.scale());
    let benchmarks = if args.smoke {
        vec!["UTS".into(), "SOR-ws".into(), "Heat-ws".into()]
    } else {
        spec.full_suite()
    };
    spec.push(AxisSet::new(
        benchmarks,
        vec![GridSetup::new("Default", Setup::Default).with_trace()],
    ));
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "table1: OpenMP suite at scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result);
}

fn render(result: &GridResult) {
    // Paper-reported columns come from the suite definitions, keyed by
    // benchmark name (they are not measurements, so the artifact does
    // not carry them).
    let suite = openmp_suite(Scale(result.scale));

    let mut rows = Vec::new();
    for o in &result.cells {
        let def = suite
            .iter()
            .find(|b| b.name == o.spec.bench)
            .expect("suite benchmark");
        let mut slabs: BTreeMap<u32, u64> = BTreeMap::new();
        for p in &o.trace {
            *slabs.entry(slab_of(p.tipi)).or_default() += 1;
        }
        let total: u64 = slabs.values().sum();
        let frequent = slabs
            .values()
            .filter(|&&n| n as f64 > total as f64 * 0.10)
            .count();
        let tipi_lo = o.trace.iter().map(|p| p.tipi).fold(f64::INFINITY, f64::min);
        let tipi_hi = o.trace.iter().map(|p| p.tipi).fold(0.0, f64::max);
        rows.push(vec![
            o.spec.bench.clone(),
            def.style.suffix().to_string(),
            format!("{:.1}", o.seconds),
            format!("{:.1}", def.paper_time_s * result.scale),
            format!("{tipi_lo:.3}-{tipi_hi:.3}"),
            format!(
                "{:.3}-{:.3}",
                def.paper_tipi_range.0, def.paper_tipi_range.1
            ),
            slabs.len().to_string(),
            frequent.to_string(),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "style",
                "time(s)",
                "paper(s)",
                "TIPI range",
                "paper range",
                "slabs",
                "frequent",
            ],
            &rows
        )
    );
}
