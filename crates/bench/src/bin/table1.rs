//! Table 1 — benchmark characterization.
//!
//! Runs every OpenMP benchmark under the Default setup and reports the
//! columns of the paper's Table 1: execution time, observed TIPI range,
//! number of distinct TIPI slabs, and number of frequent slabs (>10 %
//! of `Tinv` samples).
//!
//! Usage: `cargo run --release -p bench --bin table1`

use bench::{render_table, run, Setup};
use cuttlefish::Config;
use std::collections::BTreeMap;
use workloads::cache::slab_of;
use workloads::{openmp_suite, ProgModel};

fn main() {
    let scale = bench::harness_scale();
    eprintln!("table1: OpenMP suite at scale {:.2}", scale.0);

    let mut rows = Vec::new();
    for bench_def in &openmp_suite(scale) {
        let mut trace = Vec::new();
        let o = run(
            bench_def,
            Setup::Default,
            ProgModel::OpenMp,
            Config::default(),
            Some(&mut trace),
        );
        let mut slabs: BTreeMap<u32, u64> = BTreeMap::new();
        for p in &trace {
            *slabs.entry(slab_of(p.tipi)).or_default() += 1;
        }
        let total: u64 = slabs.values().sum();
        let frequent = slabs
            .values()
            .filter(|&&n| n as f64 > total as f64 * 0.10)
            .count();
        let tipi_lo = trace.iter().map(|p| p.tipi).fold(f64::INFINITY, f64::min);
        let tipi_hi = trace.iter().map(|p| p.tipi).fold(0.0, f64::max);
        rows.push(vec![
            o.bench.clone(),
            bench_def.style.suffix().to_string(),
            format!("{:.1}", o.seconds),
            format!("{:.1}", bench_def.paper_time_s * scale.0),
            format!("{tipi_lo:.3}-{tipi_hi:.3}"),
            format!(
                "{:.3}-{:.3}",
                bench_def.paper_tipi_range.0, bench_def.paper_tipi_range.1
            ),
            slabs.len().to_string(),
            frequent.to_string(),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "style",
                "time(s)",
                "paper(s)",
                "TIPI range",
                "paper range",
                "slabs",
                "frequent",
            ],
            &rows
        )
    );
}
