//! Figure 3 — JPI of frequent TIPI ranges at fixed frequencies.
//!
//! Reproduces the motivating analysis of §3.2:
//!
//! * panel (a): uncore fixed at max (3.0 GHz), each benchmark run at
//!   core frequencies min/mid/max (1.2 / 1.8 / 2.3 GHz);
//! * panel (b): core fixed at max (2.3 GHz), uncore at min/mid/max
//!   (1.2 / 2.1 / 3.0 GHz).
//!
//! For each run, the average JPI of the frequently occurring TIPI
//! ranges (>10 % of samples) is reported. The paper's reading: for
//! compute-bound benchmarks JPI falls with CF and rises with UF;
//! memory-bound benchmarks behave exactly opposite, and even for them
//! max uncore is not optimal.
//!
//! Usage: `cargo run --release -p bench --bin fig3`

use bench::{render_table, run, Setup, TracePoint};
use cuttlefish::Config;
use simproc::freq::Freq;
use std::collections::BTreeMap;
use workloads::cache::slab_of;
use workloads::{openmp_suite, Benchmark, ProgModel};

/// Run at pinned frequencies (the `Pinned` controller through the
/// shared harness), returning the Tinv trace.
fn run_pinned(bench: &Benchmark, cf: Freq, uf: Freq) -> Vec<TracePoint> {
    let mut points = Vec::new();
    run(
        bench,
        Setup::Pinned(cf, uf),
        ProgModel::OpenMp,
        Config::default(),
        Some(&mut points),
    );
    points
}

/// Mean JPI over the frequent slabs of a trace, as (label, jpi) pairs.
fn frequent_jpi(points: &[TracePoint]) -> Vec<(String, f64)> {
    let mut by_slab: BTreeMap<u32, (u64, f64)> = BTreeMap::new();
    for p in points {
        let e = by_slab.entry(slab_of(p.tipi)).or_default();
        e.0 += 1;
        e.1 += p.jpi;
    }
    let total: u64 = by_slab.values().map(|v| v.0).sum();
    by_slab
        .into_iter()
        .filter(|(_, (n, _))| *n as f64 > total as f64 * 0.10)
        .map(|(slab, (n, sum))| {
            let lo = slab as f64 * 0.004;
            (format!("{:.3}-{:.3}", lo, lo + 0.004), sum / n as f64)
        })
        .collect()
}

fn main() {
    let scale = bench::harness_scale();
    eprintln!("fig3: fixed-frequency JPI sweeps at scale {:.2}", scale.0);

    let wanted = ["UTS", "SOR-irt", "Heat-irt", "MiniFE", "HPCCG", "AMG"];
    let suite = openmp_suite(scale);

    let cf_points = [Freq(12), Freq(18), Freq(23)];
    let uf_points = [Freq(12), Freq(21), Freq(30)];

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for name in wanted {
        let bench_def = suite.iter().find(|b| b.name == name).expect("known");
        // Panel (a): UF = max, CF sweep.
        let jpis_a: Vec<Vec<(String, f64)>> = cf_points
            .iter()
            .map(|&cf| frequent_jpi(&run_pinned(bench_def, cf, Freq(30))))
            .collect();
        for (label, _) in &jpis_a[2] {
            let cells: Vec<String> = jpis_a
                .iter()
                .map(|j| {
                    j.iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, v)| format!("{:.3}", v * 1e9))
                        .unwrap_or("-".into())
                })
                .collect();
            rows_a.push(vec![
                name.to_string(),
                label.clone(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
        // Panel (b): CF = max, UF sweep.
        let jpis_b: Vec<Vec<(String, f64)>> = uf_points
            .iter()
            .map(|&uf| frequent_jpi(&run_pinned(bench_def, Freq(23), uf)))
            .collect();
        for (label, _) in &jpis_b[2] {
            let cells: Vec<String> = jpis_b
                .iter()
                .map(|j| {
                    j.iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, v)| format!("{:.3}", v * 1e9))
                        .unwrap_or("-".into())
                })
                .collect();
            rows_b.push(vec![
                name.to_string(),
                label.clone(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }

    println!("Panel (a): UF = 3.0 GHz, JPI (nJ/instr) at CF = 1.2 / 1.8 / 2.3 GHz");
    println!(
        "{}",
        render_table(
            &["benchmark", "TIPI range", "CF=1.2", "CF=1.8", "CF=2.3"],
            &rows_a
        )
    );
    println!("Panel (b): CF = 2.3 GHz, JPI (nJ/instr) at UF = 1.2 / 2.1 / 3.0 GHz");
    println!(
        "{}",
        render_table(
            &["benchmark", "TIPI range", "UF=1.2", "UF=2.1", "UF=3.0"],
            &rows_b
        )
    );
}
