//! Figure 3 — JPI of frequent TIPI ranges at fixed frequencies.
//!
//! Reproduces the motivating analysis of §3.2:
//!
//! * panel (a): uncore fixed at max (3.0 GHz), each benchmark run at
//!   core frequencies min/mid/max (1.2 / 1.8 / 2.3 GHz);
//! * panel (b): core fixed at max (2.3 GHz), uncore at min/mid/max
//!   (1.2 / 2.1 / 3.0 GHz).
//!
//! For each run, the average JPI of the frequently occurring TIPI
//! ranges (>10 % of samples) is reported. The paper's reading: for
//! compute-bound benchmarks JPI falls with CF and rises with UF;
//! memory-bound benchmarks behave exactly opposite, and even for them
//! max uncore is not optimal.
//!
//! Usage: `cargo run --release -p bench --bin fig3 --
//!         [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]`

use bench::cli::GridArgs;
use bench::grid::{AxisSet, CellResult, GridResult, GridSetup, GridSpec};
use bench::{render_table, Setup};
use simproc::freq::Freq;
use std::collections::BTreeMap;
use workloads::cache::slab_of;

const USAGE: &str = "fig3 [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

/// Mean JPI over the frequent slabs of a cell's trace, as
/// (label, jpi) pairs.
fn frequent_jpi(cell: &CellResult) -> Vec<(String, f64)> {
    let mut by_slab: BTreeMap<u32, (u64, f64)> = BTreeMap::new();
    for p in &cell.trace {
        let e = by_slab.entry(slab_of(p.tipi)).or_default();
        e.0 += 1;
        e.1 += p.jpi;
    }
    let total: u64 = by_slab.values().map(|v| v.0).sum();
    by_slab
        .into_iter()
        .filter(|(_, (n, _))| *n as f64 > total as f64 * 0.10)
        .map(|(slab, (n, sum))| {
            let lo = slab as f64 * 0.004;
            (format!("{:.3}-{:.3}", lo, lo + 0.004), sum / n as f64)
        })
        .collect()
}

/// Panel (a) sweep: core frequency at min/mid/max, uncore at max.
const CF_POINTS: [Freq; 3] = [Freq(12), Freq(18), Freq(23)];
/// Panel (b) sweep: uncore frequency at min/mid/max, core at max.
const UF_POINTS: [Freq; 3] = [Freq(12), Freq(21), Freq(30)];

/// Setup-axis label of one panel-(a) cell (shared by the grid
/// declaration and the render lookups).
fn cf_label(cf: Freq) -> String {
    format!("a:CF={:.1}", cf.ghz())
}

/// Setup-axis label of one panel-(b) cell.
fn uf_label(uf: Freq) -> String {
    format!("b:UF={:.1}", uf.ghz())
}

/// The two fixed-frequency sweeps as one setup axis: panel (a) sweeps
/// CF at UF = max, panel (b) sweeps UF at CF = max.
fn sweep_setups() -> Vec<GridSetup> {
    let mut setups = Vec::new();
    for cf in CF_POINTS {
        setups.push(GridSetup::new(cf_label(cf), Setup::Pinned(cf, Freq(30))));
    }
    for uf in UF_POINTS {
        setups.push(GridSetup::new(uf_label(uf), Setup::Pinned(Freq(23), uf)));
    }
    setups.into_iter().map(GridSetup::with_trace).collect()
}

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("fig3", args.scale());
    let benchmarks = if args.smoke {
        vec!["UTS".into(), "Heat-irt".into()]
    } else {
        ["UTS", "SOR-irt", "Heat-irt", "MiniFE", "HPCCG", "AMG"]
            .map(String::from)
            .to_vec()
    };
    spec.push(AxisSet::new(benchmarks, sweep_setups()));
    spec
}

/// One panel's rows: the frequent-range JPIs at the three sweep points,
/// keyed on the ranges observed at the max-frequency run.
fn panel_rows(result: &GridResult, bench: &str, labels: [String; 3], rows: &mut Vec<Vec<String>>) {
    let jpis: Vec<Vec<(String, f64)>> = labels
        .iter()
        .map(|l| frequent_jpi(result.cell(bench, l).expect("sweep cell")))
        .collect();
    for (label, _) in &jpis[2] {
        let cells: Vec<String> = jpis
            .iter()
            .map(|j| {
                j.iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| format!("{:.3}", v * 1e9))
                    .unwrap_or("-".into())
            })
            .collect();
        rows.push(vec![
            bench.to_string(),
            label.clone(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "fig3: fixed-frequency JPI sweeps at scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result);
}

fn render(result: &GridResult) {
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for bench in result.benches() {
        panel_rows(result, bench, CF_POINTS.map(cf_label), &mut rows_a);
        panel_rows(result, bench, UF_POINTS.map(uf_label), &mut rows_b);
    }

    println!("Panel (a): UF = 3.0 GHz, JPI (nJ/instr) at CF = 1.2 / 1.8 / 2.3 GHz");
    println!(
        "{}",
        render_table(
            &["benchmark", "TIPI range", "CF=1.2", "CF=1.8", "CF=2.3"],
            &rows_a
        )
    );
    println!("Panel (b): CF = 2.3 GHz, JPI (nJ/instr) at UF = 1.2 / 2.1 / 3.0 GHz");
    println!(
        "{}",
        render_table(
            &["benchmark", "TIPI range", "UF=1.2", "UF=2.1", "UF=3.0"],
            &rows_b
        )
    );
}
