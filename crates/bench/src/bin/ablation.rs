//! Ablation studies of the Cuttlefish design choices (DESIGN.md).
//!
//! 1. **§4.4/§4.5 optimizations** — neighbour bound inheritance and
//!    mid-exploration revalidation on/off, measured on AMG (the
//!    benchmark with the most TIPI ranges, where the optimizations
//!    matter most) and on the full suite geomean. This part is the
//!    scenario grid (`--json` exports it).
//! 2. **DVFS vs DDCM** at matched slowdown — the related-work actuator
//!    comparison on a synthetic compute-bound kernel.
//! 3. **§4.3 exploration strategy** — linear descent in steps of two
//!    vs the modified binary search the paper argues against: probe
//!    counts on synthetic JPI curves.
//!
//! Usage: `cargo run --release -p bench --bin ablation --
//!         [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]`

use bench::cli::GridArgs;
use bench::grid::{
    compare_to_baseline, geomean_by_setup, AxisSet, GridResult, GridSetup, GridSpec,
};
use bench::{render_table, Setup};
use cuttlefish::explore::Exploration;
use cuttlefish::{Config, PidGains, Policy};

const USAGE: &str = "ablation [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

fn config_variant(inherit: bool, reval: bool) -> Config {
    Config {
        neighbor_inheritance: inherit,
        revalidation: reval,
        ..Config::default()
    }
}

/// The §4.4/§4.5 on/off variants, as (label, inherit, reval).
const VARIANTS: [(&str, bool, bool); 4] = [
    ("full (paper)", true, true),
    ("no §4.5 revalidation", true, false),
    ("no §4.4 inheritance", false, true),
    ("neither", false, false),
];

/// Gain variants of the PID uncore tracker, as (label, gains): the
/// default loop, a stiff low-headroom loop, and a sluggish one —
/// sensitivity of the feedback alternative to Algorithm 3.
fn pid_variants() -> Vec<(&'static str, PidGains)> {
    vec![
        ("PID default", PidGains::default()),
        (
            "PID stiff (sp=0.95)",
            PidGains {
                kp: 16.0,
                ki: 0.8,
                setpoint: 0.95,
                ..PidGains::default()
            },
        ),
        (
            "PID sluggish (kp=1)",
            PidGains {
                kp: 1.0,
                ki: 0.05,
                ..PidGains::default()
            },
        ),
    ]
}

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("ablation", args.scale());
    let mut setups = vec![GridSetup::new("Default", Setup::Default)];
    for (label, inherit, reval) in VARIANTS {
        setups.push(
            GridSetup::new(label, Setup::Cuttlefish(Policy::Both))
                .with_config(config_variant(inherit, reval)),
        );
    }
    let benchmarks = if args.smoke {
        // Heat-ws has enough distinct ranges to exercise inheritance.
        vec!["SOR-irt".into(), "Heat-ws".into()]
    } else {
        spec.full_suite()
    };
    spec.push(AxisSet::new(benchmarks, setups));
    // PID-gain sensitivity on the memory-bound work-sharing kernel
    // (its own axis-set, appended so the historical cells keep their
    // artifact positions; shares the Heat-ws Default baseline above).
    spec.push(AxisSet::new(
        vec!["Heat-ws".into()],
        pid_variants()
            .into_iter()
            .map(|(label, gains)| GridSetup::new(label, Setup::PidUncore(gains)))
            .collect(),
    ));
    spec
}

/// Probes needed by the step-of-two linear descent on a synthetic
/// V-shaped JPI curve with minimum at `min_at` (12-level domain).
fn linear_probes(min_at: usize) -> usize {
    let curve = |l: usize| (l as f64 - min_at as f64).abs() + 1.0;
    let mut e = Exploration::new(0, 11, 12, 1);
    let mut probed = std::collections::BTreeSet::new();
    for _ in 0..100 {
        let adv = e.advance();
        if e.opt().is_some() {
            break;
        }
        probed.insert(adv.next);
        e.record(adv.next, curve(adv.next));
    }
    probed.len()
}

/// Probes needed by the paper's §4.3 strawman: a binary search that
/// must measure JPI at mid−1, mid, mid+1 to learn the slope direction
/// at each split (JPI curves are V-shaped, not monotone, so a plain
/// binary search does not apply).
fn binary_probes(min_at: usize) -> usize {
    let curve = |l: i64| (l as f64 - min_at as f64).abs() + 1.0;
    let mut lo = 0i64;
    let mut hi = 11i64;
    let mut probed = std::collections::BTreeSet::new();
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        for m in [mid - 1, mid, mid + 1] {
            if (0..=11).contains(&m) {
                probed.insert(m);
            }
        }
        let left = curve((mid - 1).max(0));
        let right = curve((mid + 1).min(11));
        if left < right {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    probed.insert(lo);
    probed.insert(hi);
    probed.len()
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "ablation: scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);

    render_part1(&result);
    render_pid_gains(&result);
    render_dvfs_vs_ddcm();
    render_probe_counts();
}

// ---- Part 1b: PID uncore-loop gain sensitivity ----------------------
fn render_pid_gains(result: &GridResult) {
    let comparisons = compare_to_baseline(result, "Default");
    let mut rows = Vec::new();
    for (label, gains) in pid_variants() {
        let Some(c) = comparisons
            .iter()
            .find(|c| c.bench == "Heat-ws" && c.label == label)
        else {
            continue;
        };
        rows.push(vec![
            label.to_string(),
            format!("kp={} ki={} sp={}", gains.kp, gains.ki, gains.setpoint),
            format!("{:+.1}%", c.energy_saving_pct),
            format!("{:+.1}%", c.time_degradation_pct),
        ]);
    }
    if rows.is_empty() {
        return;
    }
    println!("PID uncore-loop gains on Heat-ws (vs Default):");
    println!(
        "{}",
        render_table(&["variant", "gains", "energy savings", "slowdown"], &rows)
    );
}

// ---- Part 1: §4.4/§4.5 on/off over the suite ------------------------
fn render_part1(result: &GridResult) {
    let geomeans = geomean_by_setup(&compare_to_baseline(result, "Default"));
    let mut rows = Vec::new();
    for (label, _, _) in VARIANTS {
        let (_, energy, slowdown, _) = geomeans
            .iter()
            .find(|(l, ..)| l == label)
            .expect("variant setup present");
        let amg_resolved = result
            .cell("AMG", label)
            .map(|o| (o.resolved_cf, o.resolved_uf));
        rows.push(vec![
            label.to_string(),
            format!("{energy:.1}%"),
            format!("{slowdown:.1}%"),
            amg_resolved
                .map(|(cf, uf)| format!("{:.0}% / {:.0}%", cf * 100.0, uf * 100.0))
                .unwrap_or("-".into()),
        ]);
    }
    println!("§4.4/§4.5 ablation (suite geomeans; AMG = 60-range stress case):");
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "energy savings",
                "slowdown",
                "AMG resolved CF/UF"
            ],
            &rows
        )
    );
}

// ---- Part 2: DVFS vs DDCM at matched slowdown -----------------------
// (The related-work comparison: duty-cycle modulation gates the clock
// at full voltage, so dynamic energy per instruction does not drop —
// DVFS wins at equal performance.)
fn render_dvfs_vs_ddcm() {
    use simproc::engine::{Chunk, SimProcessor, Workload};
    use simproc::freq::{Freq, HASWELL_2650V3};
    use simproc::perf::CostProfile;
    struct N(usize, Chunk);
    impl Workload for N {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            if self.0 == 0 {
                None
            } else {
                self.0 -= 1;
                Some(self.1.clone())
            }
        }
        fn is_done(&self) -> bool {
            self.0 == 0
        }
    }
    let chunk = Chunk::new(2_000_000, 1_600, 400).with_profile(CostProfile::new(0.9, 4.0));
    let run = |cf: Option<Freq>, duty: Option<u32>| {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        if let Some(f) = cf {
            p.set_core_freq(f);
        }
        if let Some(d) = duty {
            p.set_duty_all(d);
        }
        let mut wl = N(4000, chunk.clone());
        let secs = p.run(&mut wl, |_| {});
        (secs, p.total_energy_joules())
    };
    let base = run(None, None);
    let dvfs = run(Some(Freq(12)), None);
    let ddcm = run(None, Some(8)); // 2.3·8/16 ≈ 1.15 GHz effective
    let mut rows = Vec::new();
    for (label, (t, e)) in [
        ("full speed", base),
        ("DVFS 1.2 GHz", dvfs),
        ("DDCM 8/16", ddcm),
    ] {
        rows.push(vec![
            label.to_string(),
            format!("{t:.2}s"),
            format!("{e:.0}J"),
            format!("{:+.1}%", (1.0 - e / base.1) * 100.0),
        ]);
    }
    println!("DVFS vs DDCM on a compute-bound kernel (equal ~2x slowdown):");
    println!(
        "{}",
        render_table(&["actuator", "time", "energy", "vs full speed"], &rows)
    );
}

// ---- Part 3: linear-by-two vs modified binary search ----------------
fn render_probe_counts() {
    let mut rows = Vec::new();
    for min_at in [0usize, 3, 6, 9, 11] {
        rows.push(vec![
            format!("minimum at level {min_at}"),
            linear_probes(min_at).to_string(),
            binary_probes(min_at).to_string(),
        ]);
    }
    println!("§4.3 exploration strategy: probed levels on a 12-level domain");
    println!("(paper: worst case 6 linear vs 8 binary):");
    println!(
        "{}",
        render_table(&["JPI curve", "linear-by-two", "modified binary"], &rows)
    );
}
