//! CI tool: validate grid artifacts and emit the aggregate
//! `BENCH_smoke.json` trajectory point.
//!
//! Reads the per-bin `GridResult` JSON files the "bench smoke" CI
//! stage produced, re-parses each through the typed decoder (so a bin
//! emitting a malformed or schema-drifted artifact fails CI), and
//! writes one aggregate summary: per grid, the cell count plus the
//! headline deterministic metrics worth tracking over time (virtual
//! seconds, joules, and — where the grid carries a Default baseline
//! and a Cuttlefish setup — the geomean energy saving).
//!
//! When a `<artifact>.timing` sidecar (written by the bins'
//! `--json` path) sits next to an input, its per-bin wall-clock and
//! stepping counters are folded into a top-level `meta.timing`
//! section. `meta` is machine- and run-dependent by nature, so the
//! trajectory drift gate (`bench_diff --exact`) ignores it; only the
//! `grids` section carries gated content.
//!
//! `--require-fast-forward GRID=MIN` (repeatable) additionally gates
//! on the virtual-clock layer itself: the named grid's timing sidecar
//! must be present and report a stepped-vs-total fast-forward ratio of
//! at least MIN. CI uses this to keep the analytic idle/busy advances
//! engaged — a regression that silently falls back to per-quantum
//! stepping still produces bit-identical artifacts, so only the
//! counters can catch it.
//!
//! Sidecars produced by a store-backed run additionally carry a
//! `cache` section (result-store hits/misses); it is folded into a
//! top-level `meta.cache` and echoed as a per-grid cache-hit line.
//! `--require-hit-rate GRID=MIN` (repeatable, MIN a fraction in
//! `[0, 1]`) gates on it — the warm-cache CI stage demands
//! `GRID=1` from every grid of a warm re-run. Like all of `meta`,
//! cache stats never enter the drift-gated `grids` section.
//!
//! Usage: `grid_aggregate --out BENCH_smoke.json
//!         [--require-fast-forward GRID=MIN]...
//!         [--require-hit-rate GRID=MIN]... <artifact.json>...`
//!
//! This is a pipeline tool, not one of the figure/table bins; it runs
//! no simulations.

use bench::geomean_saving;
use bench::grid::GridResult;
use bench::json::Json;
use bench::saving_pct;

fn main() {
    let mut out_path = None;
    let mut inputs = Vec::new();
    let mut required_ff: Vec<(String, f64)> = Vec::new();
    let mut required_hits: Vec<(String, f64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }))
            }
            "--require-fast-forward" | "--require-hit-rate" => {
                let spec = args.next().unwrap_or_default();
                let parsed = spec
                    .split_once('=')
                    .and_then(|(g, m)| m.parse::<f64>().ok().map(|m| (g.to_string(), m)));
                match parsed {
                    Some(req) if arg == "--require-fast-forward" => required_ff.push(req),
                    Some(req) => required_hits.push(req),
                    None => {
                        eprintln!("error: {arg} needs GRID=MIN, got `{spec}`");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "grid_aggregate --out <aggregate.json> \
                     [--require-fast-forward GRID=MIN]... \
                     [--require-hit-rate GRID=MIN]... <artifact.json>..."
                );
                std::process::exit(0);
            }
            _ => inputs.push(arg),
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        eprintln!("error: --out is required");
        std::process::exit(2);
    });
    if inputs.is_empty() {
        eprintln!("error: no artifacts given");
        std::process::exit(2);
    }
    inputs.sort();

    let mut grids = Vec::new();
    let mut timings = Vec::new();
    let mut caches = Vec::new();
    for path in &inputs {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        });
        let result = GridResult::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not a valid GridResult artifact: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "validated {path}: grid `{}`, {} cells",
            result.grid,
            result.cells.len()
        );
        grids.push(summarize(&result));
        if let Some((t, cache)) = read_timing_sidecar(path) {
            if let Some(cache) = cache {
                print_cache_line(&cache);
                caches.push(cache);
            }
            timings.push(t);
        }
    }

    let mut fields = vec![
        (
            "schema".to_string(),
            Json::Str("cuttlefish/bench-smoke/v1".into()),
        ),
        ("grids".to_string(), Json::Arr(grids)),
    ];
    if !timings.is_empty() {
        // Run-dependent metadata: excluded from the drift gate.
        let mut meta = vec![("timing".to_string(), Json::Arr(timings.clone()))];
        if !caches.is_empty() {
            meta.push(("cache".to_string(), Json::Arr(caches.clone())));
        }
        fields.push(("meta".to_string(), Json::Obj(meta)));
    }
    let aggregate = Json::Obj(fields);
    if let Err(e) = std::fs::write(&out_path, aggregate.to_pretty()) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote aggregate of {} grids to {out_path}", inputs.len());

    check_fast_forward(&required_ff, &timings);
    check_hit_rate(&required_hits, &caches);
}

/// The per-grid cache-hit line: how much of the grid the result store
/// replayed instead of recomputing.
fn print_cache_line(cache: &Json) {
    let num = |k: &str| cache.get(k).and_then(|v| v.as_f64().ok()).unwrap_or(0.0);
    let grid = cache
        .get("grid")
        .and_then(|g| g.as_str().ok())
        .unwrap_or("?");
    eprintln!(
        "cache: {grid} {}/{} hits ({:.0}%)",
        num("hits"),
        num("hits") + num("misses"),
        num("hit_rate") * 100.0
    );
}

/// Enforce `--require-hit-rate` against the folded `meta.cache`
/// entries; exits nonzero when a named grid ran without a store or
/// below its floor. The warm-cache CI stage is the caller that pins
/// every grid at 1.
fn check_hit_rate(required: &[(String, f64)], caches: &[Json]) {
    let mut failed = false;
    for (grid, min) in required {
        let rate = caches
            .iter()
            .find(|c| {
                c.get("grid")
                    .and_then(|g| g.as_str().ok())
                    .is_some_and(|g| g == grid)
            })
            .and_then(|c| c.get("hit_rate"))
            .and_then(|v| v.as_f64().ok());
        match rate {
            Some(v) if v >= *min => {
                eprintln!(
                    "hit-rate gate: {grid} {:.0}% >= {:.0}%",
                    v * 100.0,
                    min * 100.0
                );
            }
            Some(v) => {
                eprintln!(
                    "error: hit-rate gate: {grid} hit only {:.0}% of its cells \
                     (floor {:.0}%) — the result store missed where it must not",
                    v * 100.0,
                    min * 100.0
                );
                failed = true;
            }
            None => {
                eprintln!("error: hit-rate gate: no cache stats for grid `{grid}`");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Enforce `--require-fast-forward` against the folded timing entries;
/// exits nonzero on a missing sidecar or a ratio below the floor. Runs
/// after the aggregate is written so the artifact is still available
/// for inspection when the gate trips.
fn check_fast_forward(required: &[(String, f64)], timings: &[Json]) {
    let mut failed = false;
    for (grid, min) in required {
        let entry = timings.iter().find(|t| {
            t.get("grid")
                .and_then(|g| g.as_str().ok())
                .is_some_and(|g| g == grid)
        });
        let ff = entry.and_then(|t| match t.get("fast_forward") {
            Some(Json::Num(v)) => Some(*v),
            _ => None,
        });
        match ff {
            Some(v) if v >= *min => {
                eprintln!("fast-forward gate: {grid} {v:.2}x >= {min}x");
            }
            Some(v) => {
                eprintln!(
                    "error: fast-forward gate: {grid} reached only {v:.2}x \
                     (floor {min}x) — the virtual-clock advances disengaged"
                );
                failed = true;
            }
            None => {
                eprintln!("error: fast-forward gate: no timing sidecar for grid `{grid}`");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Pick up `<artifact>.timing` if the bin wrote one: re-emit the
/// per-bin wall-clock and stepping counters (and the fast-forward
/// ratio the virtual-clock engine achieved) for `meta.timing`, plus —
/// when the run went through the result store — its cache stats for
/// `meta.cache`, tagged with the grid name.
fn read_timing_sidecar(artifact_path: &str) -> Option<(Json, Option<Json>)> {
    let text = std::fs::read_to_string(format!("{artifact_path}.timing")).ok()?;
    let j = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {artifact_path}.timing is unreadable: {e}");
            std::process::exit(1);
        }
    };
    let schema = j.field("schema").and_then(Json::as_str).unwrap_or_default();
    if schema != bench::grid::TIMING_SCHEMA {
        eprintln!(
            "error: {artifact_path}.timing: unsupported timing schema `{schema}` \
             (expected `{}`)",
            bench::grid::TIMING_SCHEMA
        );
        std::process::exit(1);
    }
    let field = |k: &str| {
        j.field(k).cloned().unwrap_or_else(|e| {
            eprintln!("error: {artifact_path}.timing: {e}");
            std::process::exit(1);
        })
    };
    let cache = j.get("cache").map(|c| {
        Json::Obj(vec![
            ("grid".into(), field("grid")),
            (
                "hits".into(),
                c.get("hits").cloned().unwrap_or(Json::Num(0.0)),
            ),
            (
                "misses".into(),
                c.get("misses").cloned().unwrap_or(Json::Num(0.0)),
            ),
            (
                "hit_rate".into(),
                c.get("hit_rate").cloned().unwrap_or(Json::Num(0.0)),
            ),
        ])
    });
    Some((
        Json::Obj(vec![
            ("grid".into(), field("grid")),
            ("wall_ms".into(), field("wall_ms")),
            ("stepped_quanta".into(), field("stepped_quanta")),
            ("idle_advanced_quanta".into(), field("idle_advanced_quanta")),
            ("busy_advanced_quanta".into(), field("busy_advanced_quanta")),
            ("total_quanta".into(), field("total_quanta")),
            ("fast_forward".into(), field("fast_forward")),
        ]),
        cache,
    ))
}

/// One trajectory line per grid: deterministic paper metrics only (no
/// wall-clock — the artifact must be diffable across machines).
fn summarize(result: &GridResult) -> Json {
    let seconds: f64 = result.cells.iter().map(|c| c.seconds).sum();
    let joules: f64 = result.cells.iter().map(|c| c.joules).sum();

    // Geomean Cuttlefish-vs-Default energy saving, where both exist.
    let mut savings = Vec::new();
    for bench in result.benches() {
        if let (Some(base), Some(tuned)) = (
            result.cell(bench, "Default"),
            result.cell(bench, "Cuttlefish"),
        ) {
            savings.push(saving_pct(base.joules, tuned.joules));
        }
    }
    let saving = if savings.is_empty() {
        Json::Null
    } else {
        Json::Num(geomean_saving(&savings))
    };

    Json::Obj(vec![
        ("grid".into(), Json::Str(result.grid.clone())),
        ("scale".into(), Json::Num(result.scale)),
        ("cells".into(), Json::Num(result.cells.len() as f64)),
        ("virtual_seconds".into(), Json::Num(seconds)),
        ("joules".into(), Json::Num(joules)),
        ("geomean_energy_saving_pct".into(), saving),
    ])
}
