//! Frequency-residency / exploration-cost analysis.
//!
//! For each benchmark under Cuttlefish: the share of execution time
//! spent at the final optimal operating point versus exploring, and
//! the top operating points by residency. This quantifies the §4
//! claim that the runtime optimizations make exploration cheap — the
//! run should spend the overwhelming majority of its time at the
//! optimum despite starting with no prior information.
//!
//! Usage: `cargo run --release -p bench --bin residency`

use bench::render_table;
use cuttlefish::controller::NodePolicy;
use cuttlefish::Config;
use simproc::freq::HASWELL_2650V3;
use simproc::SimProcessor;
use workloads::{openmp_suite, ProgModel};

fn main() {
    let scale = bench::harness_scale();
    eprintln!("residency: scale {:.2}", scale.0);

    let mut rows = Vec::new();
    for bench_def in &openmp_suite(scale) {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut controller = NodePolicy::Cuttlefish(Config::default()).build(&mut proc);
        let mut wl = bench_def.instantiate(ProgModel::OpenMp, proc.n_cores(), 0xC0FFEE);
        while !proc.workload_drained(wl.as_mut()) {
            proc.step(wl.as_mut());
            controller.on_quantum(&mut proc);
        }
        let total_ns: u64 = proc.frequency_residency().values().sum();
        let mut pairs: Vec<((u32, u32), u64)> = proc
            .frequency_residency()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        pairs.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        let (top, top_ns) = pairs[0];
        let distinct = pairs.len();
        let top3: f64 = pairs.iter().take(3).map(|&(_, v)| v as f64).sum::<f64>() / total_ns as f64;
        rows.push(vec![
            bench_def.name.clone(),
            format!("{:.1}/{:.1}", top.0 as f64 / 10.0, top.1 as f64 / 10.0),
            format!("{:.1}%", top_ns as f64 / total_ns as f64 * 100.0),
            format!("{:.1}%", top3 * 100.0),
            distinct.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "dominant CF/UF",
                "time there",
                "top-3 points",
                "distinct points",
            ],
            &rows
        )
    );
    println!("\n('time there' ≈ 1 − exploration+warm-up share; the paper's");
    println!("optimizations exist to push it toward 100% even for AMG's ~60 ranges)");
}
