//! Frequency-residency / exploration-cost analysis.
//!
//! For each benchmark under Cuttlefish: the share of execution time
//! spent at the final optimal operating point versus exploring, and
//! the top operating points by residency. This quantifies the §4
//! claim that the runtime optimizations make exploration cheap — the
//! run should spend the overwhelming majority of its time at the
//! optimum despite starting with no prior information.
//!
//! Usage: `cargo run --release -p bench --bin residency --
//!         [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]`

use bench::cli::GridArgs;
use bench::grid::{straggler_spec, AxisSet, Fleet, GridResult, GridSetup, GridSpec};
use bench::{render_table, Setup};
use cuttlefish::Policy;
use simproc::freq::HASWELL_2650V3;

const USAGE: &str = "residency [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("residency", args.scale());
    let cuttlefish = || {
        vec![GridSetup::new(
            "Cuttlefish",
            Setup::Cuttlefish(Policy::Both),
        )]
    };
    if args.smoke {
        spec.push(AxisSet::new(
            vec!["UTS".into(), "Heat-irt".into(), "MiniFE".into()],
            cuttlefish(),
        ));
        // The §4.6 straggler shape with slow *hardware*, expressed as a
        // heterogeneous fleet-axis entry: three paper nodes plus one
        // de-rated node running a bulk-synchronous Heat decomposition.
        // Every superstep the fast nodes idle to the straggler's
        // barrier — the path the virtual-clock engine fast-forwards;
        // each node's own daemon still tunes its own package.
        let mut machines = vec![HASWELL_2650V3.clone(); 3];
        machines.push(straggler_spec());
        spec.push(
            AxisSet::new(
                vec!["Heat-ws".into()],
                vec![GridSetup::new(
                    "Cuttlefish-straggler",
                    Setup::Cuttlefish(Policy::Both),
                )],
            )
            .with_fleets(vec![Fleet::hetero(machines).with_bsp(96, 240.0e6)]),
        );
        // A 256-node uniform fleet strong-scaling the same Heat
        // decomposition: at this width each node's compute share is a
        // sliver of the superstep, so the timeline is dominated by
        // barrier and exchange windows — the shape the discrete-event
        // scheduler exists for. `ci.sh` holds this grid to a >=5x
        // fast-forward floor via `grid_aggregate --require-fast-forward`.
        spec.push(
            AxisSet::new(
                vec!["Heat-ws".into()],
                vec![GridSetup::new(
                    "Cuttlefish-fleet256",
                    Setup::Cuttlefish(Policy::Both),
                )],
            )
            .with_fleets(vec![Fleet::uniform(256).with_bsp(8, 240.0e6)]),
        );
    } else {
        let full = spec.full_suite();
        spec.push(AxisSet::new(full, cuttlefish()));
    }
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "residency: scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result);
}

fn render(result: &GridResult) {
    let mut rows = Vec::new();
    for o in &result.cells {
        let total_ns: u64 = o.residency.iter().map(|r| r.ns).sum();
        let mut pairs = o.residency.clone();
        pairs.sort_by_key(|r| std::cmp::Reverse(r.ns));
        let top = &pairs[0];
        let distinct = pairs.len();
        let top3: f64 = pairs.iter().take(3).map(|r| r.ns as f64).sum::<f64>() / total_ns as f64;
        rows.push(vec![
            o.spec.bench.clone(),
            format!("{:.1}/{:.1}", top.cf as f64 / 10.0, top.uf as f64 / 10.0),
            format!("{:.1}%", top.ns as f64 / total_ns as f64 * 100.0),
            format!("{:.1}%", top3 * 100.0),
            distinct.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "dominant CF/UF",
                "time there",
                "top-3 points",
                "distinct points",
            ],
            &rows
        )
    );
    println!("\n('time there' ≈ 1 − exploration+warm-up share; the paper's");
    println!("optimizations exist to push it toward 100% even for AMG's ~60 ranges)");
}
