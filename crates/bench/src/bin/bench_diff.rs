//! Trajectory diff: compare two `BENCH_smoke.json` aggregate points —
//! or two `GridResult` artifacts — with per-metric tolerance bands,
//! exiting nonzero on out-of-band drift.
//!
//! Two modes share one comparison core:
//!
//! * default (tolerance) mode — per grid, `cells` and `scale` must
//!   match exactly, `virtual_seconds` and `joules` may drift within
//!   `--rel` percent, and the geomean energy saving within
//!   `--abs-saving` percentage points. The informational CI stage runs
//!   this against the committed baseline so a reviewer sees *how far*
//!   a change moved the trajectory, not just that it moved.
//! * `--exact` — the byte-level drift gate: the `grids` sections must
//!   serialize identically. The run-dependent `meta` section
//!   (wall-clock, stepping counters) is ignored in both modes — that
//!   is what makes it safe to record timing in the committed artifact.
//!
//! When both inputs are `cuttlefish/grid-result/v1` artifacts (a bin's
//! `--json` output, including the one-cell `--scenario` artifacts) the
//! same modes apply at cell granularity: `--exact` gates on the whole
//! canonical serialization — the scenario-file CI stage uses this to
//! pin "a committed cell reproduces bit for bit from JSON alone" —
//! and tolerance mode bands each cell's seconds/joules.
//!
//! A third mode serves the fuzzing workflow's divergence triage:
//! `--governor-gap` takes two `GridResult` artifacts produced by
//! *different governors on the same scenario* (e.g. two one-cell
//! `--scenario` runs, or a fuzz reproducer run twice) and prints the
//! per-metric gap — seconds, joules, EDP, JPI — instead of treating
//! the differing cell identity as drift. Cell identity must match
//! modulo the governor fields (label, setup, config, oracle table);
//! anything else is a usage error, because then the gap would compare
//! different experiments, not different governors.
//!
//! Usage: `bench_diff [--exact | --governor-gap] [--rel PCT]
//!         [--abs-saving PT] <baseline.json> <candidate.json>`
//!
//! Exit codes: 0 in-band, 1 out-of-band drift, 2 usage/IO error
//! (`--governor-gap` is informational: 0 unless the inputs are not
//! the same scenario).

use bench::grid::{CellResult, GridResult};
use bench::json::{FromJson, Json, ToJson};
use bench::Setup;
use cuttlefish::Config;

struct Tolerance {
    exact: bool,
    /// Relative band for virtual_seconds and joules, percent.
    rel_pct: f64,
    /// Absolute band for the geomean saving, percentage points.
    abs_saving_pt: f64,
}

fn main() {
    let mut tol = Tolerance {
        exact: false,
        rel_pct: 1.0,
        abs_saving_pt: 1.0,
    };
    let mut paths = Vec::new();
    let mut governor_gap = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exact" => tol.exact = true,
            "--governor-gap" => governor_gap = true,
            "--rel" => tol.rel_pct = num_arg(&mut args, "--rel"),
            "--abs-saving" => tol.abs_saving_pt = num_arg(&mut args, "--abs-saving"),
            "--help" | "-h" => {
                println!(
                    "bench_diff [--exact | --governor-gap] [--rel PCT] [--abs-saving PT] \
                     <baseline.json> <candidate.json>"
                );
                std::process::exit(0);
            }
            other if other.starts_with("--") => usage_err(&format!("unknown flag `{other}`")),
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        usage_err("expected exactly two aggregate files");
    }
    let base = load(&paths[0]);
    let cand = load(&paths[1]);

    if schema_of(&base) != schema_of(&cand) {
        eprintln!(
            "error: schema mismatch: {} is `{}`, {} is `{}`",
            paths[0],
            schema_of(&base),
            paths[1],
            schema_of(&cand)
        );
        std::process::exit(2);
    }
    if governor_gap {
        if schema_of(&base) != bench::grid::SCHEMA {
            usage_err("--governor-gap needs two grid-result artifacts");
        }
        let parse = |j: &Json, path: &str| {
            GridResult::from_json(j).unwrap_or_else(|e| {
                eprintln!("error: {path}: invalid grid-result artifact: {e}");
                std::process::exit(2);
            })
        };
        if diff_governor_gap(&parse(&base, &paths[0]), &parse(&cand, &paths[1])) {
            std::process::exit(2);
        }
        return;
    }
    let drifted = if schema_of(&base) == bench::grid::SCHEMA {
        diff_grid_results(&base, &cand, &tol)
    } else {
        let d = diff(&base, &cand, &tol);
        diff_timing_info(&base, &cand);
        diff_cache_info(&base, &cand);
        d
    };
    if drifted {
        eprintln!(
            "bench_diff: trajectory drifted out of band ({} vs {})",
            paths[0], paths[1]
        );
        std::process::exit(1);
    }
    eprintln!("bench_diff: {} and {} are in-band", paths[0], paths[1]);
}

fn num_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> f64 {
    args.next()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v >= 0.0)
        .unwrap_or_else(|| usage_err(&format!("{flag} needs a non-negative number")))
}

fn usage_err(msg: &str) -> ! {
    eprintln!("error: {msg} (see bench_diff --help)");
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let j = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    let schema = j.field("schema").and_then(Json::as_str).unwrap_or_default();
    match schema {
        "cuttlefish/bench-smoke/v1" | bench::grid::SCHEMA => j,
        _ => {
            eprintln!("error: {path}: unsupported schema `{schema}`");
            std::process::exit(2);
        }
    }
}

fn schema_of(j: &Json) -> &str {
    j.field("schema").and_then(Json::as_str).unwrap_or_default()
}

/// Compare two `GridResult` artifacts; returns true on out-of-band
/// drift. Exact mode gates on the canonical re-serialization (parsing
/// through the typed decoder first, so formatting-preserving edits
/// cannot hide behind byte noise); tolerance mode bands each cell.
fn diff_grid_results(base: &Json, cand: &Json, tol: &Tolerance) -> bool {
    let parse = |j: &Json| {
        GridResult::from_json(j).unwrap_or_else(|e| {
            eprintln!("error: invalid grid-result artifact: {e}");
            std::process::exit(2);
        })
    };
    let (base, cand) = (parse(base), parse(cand));
    if tol.exact {
        if base.to_json().to_pretty() == cand.to_json().to_pretty() {
            eprintln!(
                "exact: grid `{}` byte-identical ({} cells)",
                base.grid,
                base.cells.len()
            );
            return false;
        }
        eprintln!("exact: grid-result artifacts differ");
    }
    let mut drifted = tol.exact;
    if base.cells.len() != cand.cells.len() {
        eprintln!(
            "  cell count {} → {} (must match)",
            base.cells.len(),
            cand.cells.len()
        );
        return true;
    }
    for (b, c) in base.cells.iter().zip(&cand.cells) {
        let name = format!("{}/{}", b.spec.bench, b.spec.label);
        if b.spec != c.spec {
            eprintln!("  {name}: cell identity changed");
            drifted = true;
            continue;
        }
        let mut parts = Vec::new();
        for (key, bv, cv) in [
            ("seconds", b.seconds, c.seconds),
            ("joules", b.joules, c.joules),
        ] {
            let rel = if bv == 0.0 {
                if cv == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                ((cv - bv) / bv).abs() * 100.0
            };
            if rel > tol.rel_pct {
                parts.push(format!(
                    "{key} {:+.3}% (band ±{}%)",
                    (cv - bv) / bv * 100.0,
                    tol.rel_pct
                ));
            }
        }
        if parts.is_empty() {
            eprintln!("  {name}: in-band");
        } else {
            eprintln!("  {name}: {}", parts.join(", "));
            drifted = true;
        }
    }
    drifted
}

/// A cell spec with the governor identity neutralized: what must be
/// equal between two artifacts for a governor gap to be meaningful.
fn sans_governor(cell: &CellResult) -> bench::grid::CellSpec {
    let mut spec = cell.spec.clone();
    spec.label = String::new();
    spec.setup = Setup::Default;
    spec.config = Config::default();
    spec.oracle = None;
    spec
}

/// Cross-governor diff of two artifacts over the *same* scenario:
/// pairs cells by index and prints the per-metric gap (candidate
/// relative to baseline). Returns true — a usage error — when the
/// inputs are not the same scenario modulo governor.
fn diff_governor_gap(base: &GridResult, cand: &GridResult) -> bool {
    if base.cells.len() != cand.cells.len() || base.cells.is_empty() {
        eprintln!(
            "error: --governor-gap needs matching non-empty cell lists \
             ({} vs {} cells)",
            base.cells.len(),
            cand.cells.len()
        );
        return true;
    }
    for (b, c) in base.cells.iter().zip(&cand.cells) {
        if sans_governor(b) != sans_governor(c) {
            eprintln!(
                "error: {}/{} and {}/{} are not the same scenario modulo \
                 governor — a gap between them would compare experiments, \
                 not governors",
                b.spec.bench, b.spec.label, c.spec.bench, c.spec.label
            );
            return true;
        }
        let pct = |bv: f64, cv: f64| {
            if bv == 0.0 {
                f64::NAN
            } else {
                (cv - bv) / bv * 100.0
            }
        };
        println!(
            "governor gap: {} vs {} on {} ({} node{}, rep {})",
            b.spec.label,
            c.spec.label,
            b.spec.bench,
            b.spec.nodes,
            if b.spec.nodes == 1 { "" } else { "s" },
            b.spec.rep
        );
        for (key, bv, cv) in [
            ("seconds", b.seconds, c.seconds),
            ("joules", b.joules, c.joules),
            ("edp", b.edp(), c.edp()),
            ("jpi", b.jpi(), c.jpi()),
        ] {
            println!("  {key:>8}: {bv:.6e} -> {cv:.6e} ({:+.2}%)", pct(bv, cv));
        }
    }
    false
}

/// Compare the gated (`grids`) sections; returns true on out-of-band
/// drift. Prints one line per compared grid either way.
fn diff(base: &Json, cand: &Json, tol: &Tolerance) -> bool {
    let (base_grids, cand_grids) = match (grids(base), grids(cand)) {
        (Some(b), Some(c)) => (b, c),
        _ => {
            eprintln!("error: aggregate without a `grids` array");
            std::process::exit(2);
        }
    };
    if tol.exact {
        // Byte-level gate on the canonical serialization of `grids`
        // (insertion order and number formatting are deterministic).
        let b = Json::Arr(base_grids.to_vec()).to_pretty();
        let c = Json::Arr(cand_grids.to_vec()).to_pretty();
        if b == c {
            eprintln!("exact: {} grids byte-identical", base_grids.len());
            return false;
        }
        eprintln!("exact: grids sections differ");
    }

    let mut drifted = tol.exact; // in exact mode only identity passes
    let name = |g: &Json| {
        g.field("grid")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let cand_names: Vec<String> = cand_grids.iter().map(&name).collect();
    for g in base_grids {
        if !cand_names.contains(&name(g)) {
            eprintln!("  {}: removed", name(g));
            drifted = true;
        }
    }
    for g in cand_grids {
        let gname = name(g);
        let Some(b) = base_grids.iter().find(|b| name(b) == gname) else {
            eprintln!("  {gname}: new grid (no baseline)");
            drifted = true;
            continue;
        };
        drifted |= diff_grid(&gname, b, g, tol);
    }
    drifted
}

fn grids(j: &Json) -> Option<&[Json]> {
    j.get("grids").and_then(|g| g.as_arr().ok())
}

/// Informational `meta.timing` comparison — never affects the exit
/// code. Wall-clock and stepping counters are machine- and
/// run-dependent by design (which is why `meta` sits outside both
/// gates), but the *shape* of the counters is worth a glance in CI
/// logs: a stepping-counter regression — the analytic idle/busy
/// advances silently disengaging — changes no artifact bytes, so this
/// side-by-side is the only diff that shows it.
fn diff_timing_info(base: &Json, cand: &Json) {
    fn timing(j: &Json) -> &[Json] {
        j.get("meta")
            .and_then(|m| m.get("timing"))
            .and_then(|t| t.as_arr().ok())
            .unwrap_or(&[])
    }
    let (bt, ct) = (timing(base), timing(cand));
    if bt.is_empty() && ct.is_empty() {
        return;
    }
    eprintln!("timing (informational, not gated):");
    let name = |g: &Json| {
        g.get("grid")
            .and_then(|s| s.as_str().ok())
            .unwrap_or("?")
            .to_string()
    };
    for c in ct {
        let gname = name(c);
        let counters = |g: &Json| {
            (
                num(g, "stepped_quanta").unwrap_or(f64::NAN),
                num(g, "idle_advanced_quanta").unwrap_or(f64::NAN),
                num(g, "busy_advanced_quanta").unwrap_or(f64::NAN),
                num(g, "fast_forward").unwrap_or(f64::NAN),
            )
        };
        let (cs, ci, cb, cf) = counters(c);
        match bt.iter().find(|b| name(b) == gname) {
            Some(b) => {
                let (bs, bi, bb, bf) = counters(b);
                eprintln!(
                    "  {gname}: stepped {bs}→{cs}, idle-adv {bi}→{ci}, \
                     busy-adv {bb}→{cb}, fast-forward {bf:.2}x→{cf:.2}x"
                );
            }
            None => eprintln!(
                "  {gname}: stepped {cs}, idle-adv {ci}, busy-adv {cb}, \
                 fast-forward {cf:.2}x (no baseline timing)"
            ),
        }
    }
}

/// Informational `meta.cache` comparison — never affects the exit
/// code (the `--require-hit-rate` gate in `grid_aggregate` is the
/// enforcing consumer). Result-store traffic is run-dependent like the
/// timing, but the side-by-side shows at a glance whether a trajectory
/// point came from a warm or cold run.
fn diff_cache_info(base: &Json, cand: &Json) {
    fn cache(j: &Json) -> &[Json] {
        j.get("meta")
            .and_then(|m| m.get("cache"))
            .and_then(|t| t.as_arr().ok())
            .unwrap_or(&[])
    }
    let (bc, cc) = (cache(base), cache(cand));
    if bc.is_empty() && cc.is_empty() {
        return;
    }
    eprintln!("result-store cache (informational, not gated):");
    let name = |g: &Json| {
        g.get("grid")
            .and_then(|s| s.as_str().ok())
            .unwrap_or("?")
            .to_string()
    };
    let stats = |g: &Json| {
        (
            num(g, "hits").unwrap_or(f64::NAN),
            num(g, "misses").unwrap_or(f64::NAN),
            num(g, "hit_rate").unwrap_or(f64::NAN) * 100.0,
        )
    };
    for c in cc {
        let gname = name(c);
        let (ch, cm, cr) = stats(c);
        match bc.iter().find(|b| name(b) == gname) {
            Some(b) => {
                let (bh, bm, br) = stats(b);
                eprintln!(
                    "  {gname}: hits {bh}→{ch}, misses {bm}→{cm}, \
                     hit-rate {br:.0}%→{cr:.0}%"
                );
            }
            None => eprintln!(
                "  {gname}: hits {ch}, misses {cm}, hit-rate {cr:.0}% (no baseline cache stats)"
            ),
        }
    }
    for b in bc {
        let gname = name(b);
        if !cc.iter().any(|c| name(c) == gname) {
            eprintln!("  {gname}: candidate ran without a store");
        }
    }
}

fn num(g: &Json, key: &str) -> Option<f64> {
    match g.get(key) {
        Some(Json::Num(v)) => Some(*v),
        _ => None,
    }
}

fn diff_grid(gname: &str, base: &Json, cand: &Json, tol: &Tolerance) -> bool {
    let mut out_of_band = false;
    let mut parts = Vec::new();

    for key in ["cells", "scale"] {
        let (b, c) = (num(base, key), num(cand, key));
        if b != c {
            parts.push(format!(
                "{key} {}→{} (must match)",
                fmt(b.unwrap_or(f64::NAN)),
                fmt(c.unwrap_or(f64::NAN))
            ));
            out_of_band = true;
        }
    }
    for key in ["virtual_seconds", "joules"] {
        if let (Some(b), Some(c)) = (num(base, key), num(cand, key)) {
            let rel = if b == 0.0 {
                if c == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                ((c - b) / b).abs() * 100.0
            };
            if rel > tol.rel_pct {
                parts.push(format!(
                    "{key} {:+.3}% (band ±{}%)",
                    (c - b) / b * 100.0,
                    tol.rel_pct
                ));
                out_of_band = true;
            }
        }
    }
    let (bs, cs) = (
        num(base, "geomean_energy_saving_pct"),
        num(cand, "geomean_energy_saving_pct"),
    );
    match (bs, cs) {
        (Some(b), Some(c)) if (c - b).abs() > tol.abs_saving_pt => {
            parts.push(format!(
                "saving {:+.2}pt (band ±{}pt)",
                c - b,
                tol.abs_saving_pt
            ));
            out_of_band = true;
        }
        (Some(_), None) | (None, Some(_)) => {
            parts.push("saving appeared/disappeared".to_string());
            out_of_band = true;
        }
        _ => {}
    }

    if parts.is_empty() {
        eprintln!("  {gname}: in-band");
    } else {
        eprintln!("  {gname}: {}", parts.join(", "));
    }
    out_of_band
}

fn fmt(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(name: &str, cells: f64, secs: f64, joules: f64, saving: Option<f64>) -> Json {
        Json::Obj(vec![
            ("grid".into(), Json::Str(name.into())),
            ("scale".into(), Json::Num(0.05)),
            ("cells".into(), Json::Num(cells)),
            ("virtual_seconds".into(), Json::Num(secs)),
            ("joules".into(), Json::Num(joules)),
            (
                "geomean_energy_saving_pct".into(),
                saving.map_or(Json::Null, Json::Num),
            ),
        ])
    }

    fn aggregate(grids: Vec<Json>) -> Json {
        Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("cuttlefish/bench-smoke/v1".into()),
            ),
            ("grids".into(), Json::Arr(grids)),
        ])
    }

    fn tol() -> Tolerance {
        Tolerance {
            exact: false,
            rel_pct: 1.0,
            abs_saving_pt: 1.0,
        }
    }

    #[test]
    fn identical_points_are_in_band() {
        let a = aggregate(vec![grid("fig10", 12.0, 43.2, 3234.0, Some(-2.8))]);
        assert!(!diff(&a, &a, &tol()));
        assert!(!diff(
            &a,
            &a,
            &Tolerance {
                exact: true,
                ..tol()
            }
        ));
    }

    #[test]
    fn small_drift_is_in_band_large_is_not() {
        let a = aggregate(vec![grid("fig10", 12.0, 100.0, 1000.0, Some(10.0))]);
        let close = aggregate(vec![grid("fig10", 12.0, 100.5, 1004.0, Some(10.5))]);
        assert!(!diff(&a, &close, &tol()));
        let far = aggregate(vec![grid("fig10", 12.0, 103.0, 1000.0, Some(10.0))]);
        assert!(diff(&a, &far, &tol()));
        let saving_jump = aggregate(vec![grid("fig10", 12.0, 100.0, 1000.0, Some(12.0))]);
        assert!(diff(&a, &saving_jump, &tol()));
    }

    #[test]
    fn cell_count_changes_always_drift() {
        let a = aggregate(vec![grid("fig10", 12.0, 100.0, 1000.0, None)]);
        let b = aggregate(vec![grid("fig10", 14.0, 100.0, 1000.0, None)]);
        assert!(diff(&a, &b, &tol()));
    }

    #[test]
    fn added_and_removed_grids_drift() {
        let a = aggregate(vec![grid("fig10", 12.0, 100.0, 1000.0, None)]);
        let b = aggregate(vec![
            grid("fig10", 12.0, 100.0, 1000.0, None),
            grid("fig12", 1.0, 1.0, 1.0, None),
        ]);
        assert!(diff(&a, &b, &tol()));
        assert!(diff(&b, &a, &tol()));
    }

    #[test]
    fn exact_mode_rejects_any_numeric_drift() {
        let a = aggregate(vec![grid("fig10", 12.0, 100.0, 1000.0, None)]);
        let b = aggregate(vec![grid("fig10", 12.0, 100.0000001, 1000.0, None)]);
        assert!(diff(
            &a,
            &b,
            &Tolerance {
                exact: true,
                ..tol()
            }
        ));
        assert!(!diff(&a, &b, &tol()), "but it is inside the 1% band");
    }

    fn gap_cell(label: &str, setup: Setup, seconds: f64, joules: f64) -> CellResult {
        CellResult {
            spec: bench::grid::CellSpec {
                bench: "Heat-ws".into(),
                model: workloads::ProgModel::OpenMp,
                label: label.into(),
                setup,
                config: Config::default(),
                nodes: 1,
                rep: 0,
                trace: false,
                machines: None,
                bsp: None,
                oracle: None,
                stepping: cluster::SteppingMode::default(),
            },
            seconds,
            joules,
            instructions: 1.0e9,
            resolved_cf: 0.0,
            resolved_uf: 0.0,
            report: vec![],
            residency: vec![],
            node_joules: vec![joules],
            barrier_wait_s: 0.0,
            trace: vec![],
        }
    }

    fn gap_grid(cell: CellResult) -> GridResult {
        GridResult {
            grid: "scenario:test".into(),
            scale: 0.05,
            machine: "test".into(),
            cells: vec![cell],
        }
    }

    #[test]
    fn governor_gap_accepts_same_scenario_different_governor() {
        use simproc::freq::Freq;
        let a = gap_grid(gap_cell("Default", Setup::Default, 10.0, 1000.0));
        let b = gap_grid(gap_cell(
            "Pinned",
            Setup::Pinned(Freq(14), Freq(24)),
            11.0,
            900.0,
        ));
        assert!(!diff_governor_gap(&a, &b), "gap mode must accept this pair");
    }

    #[test]
    fn governor_gap_rejects_different_scenarios() {
        let a = gap_grid(gap_cell("Default", Setup::Default, 10.0, 1000.0));
        let mut other = gap_cell("Default", Setup::Default, 10.0, 1000.0);
        other.spec.bench = "UTS".into();
        assert!(diff_governor_gap(&a, &gap_grid(other)), "different bench");
        let mut reps = gap_cell("Default", Setup::Default, 10.0, 1000.0);
        reps.spec.rep = 1;
        assert!(diff_governor_gap(&a, &gap_grid(reps)), "different rep");
        let empty = GridResult {
            grid: "scenario:test".into(),
            scale: 0.05,
            machine: "test".into(),
            cells: vec![],
        };
        assert!(diff_governor_gap(&empty, &empty), "empty cell lists");
    }

    #[test]
    fn meta_section_is_ignored() {
        let g = vec![grid("fig10", 12.0, 100.0, 1000.0, None)];
        let a = aggregate(g.clone());
        let mut with_meta = aggregate(g);
        if let Json::Obj(fields) = &mut with_meta {
            fields.push((
                "meta".into(),
                Json::Obj(vec![("timing".into(), Json::Arr(vec![]))]),
            ));
        }
        assert!(!diff(
            &a,
            &with_meta,
            &Tolerance {
                exact: true,
                ..tol()
            }
        ));
    }
}
