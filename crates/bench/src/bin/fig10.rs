//! Figure 10 — the headline evaluation (OpenMP benchmarks).
//!
//! Reproduces the three panels of the paper's Figure 10: for every
//! OpenMP benchmark and each Cuttlefish policy, energy savings,
//! execution-time degradation, and EDP savings relative to the Default
//! execution (performance governor + firmware Auto uncore), plus the
//! geometric means the abstract quotes (19.6 % / 3.6 % / 16.5 % for
//! Cuttlefish at full scale).
//!
//! Usage: `cargo run --release -p bench --bin fig10`
//! (`CUTTLEFISH_SCALE` scales run length; 1.0 = paper-length runs).

use bench::{geomean_saving, render_table, run, saving_pct, RunOutcome, Setup};
use cuttlefish::Config;
use workloads::{openmp_suite, ProgModel};

fn main() {
    let scale = bench::harness_scale();
    eprintln!("fig10: OpenMP suite at scale {:.2}", scale.0);

    let suite = openmp_suite(scale);
    let mut rows = Vec::new();
    let mut by_setup: std::collections::BTreeMap<&str, Vec<(f64, f64, f64)>> = Default::default();

    for bench_def in &suite {
        let base = run(
            bench_def,
            Setup::Default,
            ProgModel::OpenMp,
            Config::default(),
            None,
        );
        for setup in [
            Setup::Cuttlefish(cuttlefish::Policy::Both),
            Setup::Cuttlefish(cuttlefish::Policy::CoreOnly),
            Setup::Cuttlefish(cuttlefish::Policy::UncoreOnly),
        ] {
            let o: RunOutcome = run(bench_def, setup, ProgModel::OpenMp, Config::default(), None);
            let e_sav = saving_pct(base.joules, o.joules);
            let slow = (o.seconds / base.seconds - 1.0) * 100.0;
            let edp_sav = saving_pct(base.edp(), o.edp());
            by_setup
                .entry(o.setup)
                .or_default()
                .push((e_sav, slow, edp_sav));
            rows.push(vec![
                o.bench.clone(),
                o.setup.to_string(),
                format!("{e_sav:+.1}%"),
                format!("{slow:+.1}%"),
                format!("{edp_sav:+.1}%"),
                format!("{:.1}", base.seconds),
                format!("{:.1}", o.seconds),
                format!("{:.0}", base.joules),
                format!("{:.0}", o.joules),
            ]);
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "setup",
                "energy-sav",
                "time-deg",
                "EDP-sav",
                "t_def(s)",
                "t(s)",
                "E_def(J)",
                "E(J)",
            ],
            &rows
        )
    );

    println!("Geometric means over the suite (paper: Cuttlefish 19.6% / 3.6% / 16.5%):");
    for (setup, triples) in &by_setup {
        let e: Vec<f64> = triples.iter().map(|t| t.0).collect();
        let s: Vec<f64> = triples.iter().map(|t| -t.1).collect(); // slowdown = negative saving
        let d: Vec<f64> = triples.iter().map(|t| t.2).collect();
        println!(
            "  {:>17}: energy {:+5.1}%  slowdown {:+5.1}%  EDP {:+5.1}%",
            setup,
            geomean_saving(&e),
            -geomean_saving(&s),
            geomean_saving(&d),
        );
    }
}
