//! Figure 10 — the headline evaluation (OpenMP benchmarks).
//!
//! Reproduces the three panels of the paper's Figure 10: for every
//! OpenMP benchmark and each Cuttlefish policy, energy savings,
//! execution-time degradation, and EDP savings relative to the Default
//! execution (performance governor + firmware Auto uncore), plus the
//! geometric means the abstract quotes (19.6 % / 3.6 % / 16.5 % for
//! Cuttlefish at full scale).
//!
//! Usage: `cargo run --release -p bench --bin fig10 --
//!         [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]`
//! (`CUTTLEFISH_SCALE` scales run length; 1.0 = paper-length runs.)

use bench::cli::GridArgs;
use bench::grid::{
    compare_to_baseline, geomean_by_setup, paper_setups, straggler_spec, AxisSet, Fleet,
    GridResult, GridSetup, GridSpec,
};
use bench::{render_table, Setup};
use cuttlefish::{PidGains, Policy};
use simproc::freq::HASWELL_2650V3;

const USAGE: &str = "fig10 [--smoke] [--shards N] [--json PATH] [--scenario FILE] [--list]\n      [--store PATH] [--no-store]";

fn spec(args: &GridArgs) -> GridSpec {
    let mut spec = GridSpec::new("fig10", args.scale());
    if args.smoke {
        spec.push(AxisSet::new(
            vec!["UTS".into(), "SOR-ws".into(), "Heat-irt".into()],
            paper_setups(),
        ));
        // Two MPI+X-style cells: the same benchmark replicated over two
        // nodes with per-node controllers, synchronizing at the final
        // barrier (§4.6). Labeled apart from the single-node axis so
        // the panel comparisons stay single-node-vs-single-node.
        spec.push(
            AxisSet::new(
                vec!["UTS".into()],
                vec![
                    GridSetup::new("Default-2node", Setup::Default),
                    GridSetup::new("Cuttlefish-2node", Setup::Cuttlefish(Policy::Both)),
                ],
            )
            .with_fleets(vec![Fleet::uniform(2)]),
        );
        // Strong-scaled bulk-synchronous cells: Heat-ws sliced into 96
        // supersteps over four nodes, each superstep ending in a
        // barrier plus a 100 ms collective window (1.2 GB at the α–β
        // defaults). Wall-clock here is dominated by barrier/exchange
        // idling — the §4.6 regime the virtual-clock engine
        // fast-forwards (no single-node baseline: these cells exist
        // for the cluster shape, not the Figure 10 panels).
        spec.push(
            AxisSet::new(
                vec!["Heat-ws".into()],
                vec![
                    GridSetup::new("Default-mpi", Setup::Default),
                    GridSetup::new("Cuttlefish-mpi", Setup::Cuttlefish(Policy::Both)),
                ],
            )
            .with_fleets(vec![Fleet::uniform(4).with_bsp(96, 1.2e9)]),
        );
        // The open policy axis: the ondemand/schedutil-style governor on
        // the memory-bound headline benchmark, sharing the single-node
        // Default baseline — its rows land next to Cuttlefish's in the
        // panel comparison below.
        spec.push(AxisSet::new(
            vec!["Heat-irt".into()],
            vec![GridSetup::new("Ondemand", Setup::Ondemand)],
        ));
        // A mixed fleet as a plain axis entry (no hand-built cells):
        // three paper nodes plus one de-rated straggler strong-scaling
        // Heat-ws — the §4.6 "one slow node" shape.
        let mut machines = vec![HASWELL_2650V3.clone(); 3];
        machines.push(straggler_spec());
        spec.push(
            AxisSet::new(
                vec!["Heat-ws".into()],
                vec![GridSetup::new(
                    "Cuttlefish-mixed",
                    Setup::Cuttlefish(Policy::Both),
                )],
            )
            .with_fleets(vec![Fleet::hetero(machines).with_bsp(96, 1.2e9)]),
        );
        // The paper's central claim, end to end: the static oracle
        // (its Table 2 operating points derived from a traced Default
        // run of this very cell) and the PID feedback alternative on
        // the memory-bound headline benchmark, sharing the single-node
        // Default baseline — their rows land next to Cuttlefish's and
        // Ondemand's in the panel comparison, making "online search ≈
        // static oracle" a number this binary prints.
        spec.push(AxisSet::new(
            vec!["Heat-irt".into()],
            vec![
                GridSetup::new("Oracle", Setup::Oracle),
                GridSetup::new("PidUncore", Setup::PidUncore(PidGains::default())),
            ],
        ));
    } else {
        let full = spec.full_suite();
        spec.push(AxisSet::new(full, paper_setups()));
    }
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    eprintln!(
        "fig10: OpenMP suite at scale {:.2}, {} cells on {} shards",
        spec.scale,
        spec.cells().len(),
        args.shards
    );
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result);
}

fn render(result: &GridResult) {
    let comparisons = compare_to_baseline(result, "Default");
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.bench.clone(),
                c.label.clone(),
                format!("{:+.1}%", c.energy_saving_pct),
                format!("{:+.1}%", c.time_degradation_pct),
                format!("{:+.1}%", c.edp_saving_pct),
                format!("{:.1}", c.base_seconds),
                format!("{:.1}", c.seconds),
                format!("{:.0}", c.base_joules),
                format!("{:.0}", c.joules),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "setup",
                "energy-sav",
                "time-deg",
                "EDP-sav",
                "t_def(s)",
                "t(s)",
                "E_def(J)",
                "E(J)",
            ],
            &rows
        )
    );

    println!("Geometric means over the suite (paper: Cuttlefish 19.6% / 3.6% / 16.5%):");
    for (setup, energy, slowdown, edp) in geomean_by_setup(&comparisons) {
        println!(
            "  {setup:>17}: energy {energy:+5.1}%  slowdown {slowdown:+5.1}%  EDP {edp:+5.1}%"
        );
    }
}
