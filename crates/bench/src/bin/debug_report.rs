//! Debug utility: full per-slab report for one benchmark.
//! Usage: `debug_report <bench-name> [scale]`

use bench::{run, Setup};
use cuttlefish::{Config, Policy};
use workloads::{openmp_suite, ProgModel, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("SOR-ws");
    let scale = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .map(Scale)
        .unwrap_or(Scale(0.3));
    let suite = openmp_suite(scale);
    let b = suite
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let o = run(
        b,
        Setup::Cuttlefish(Policy::Both),
        ProgModel::OpenMp,
        Config::default(),
        None,
    );
    println!(
        "{name}: {:.2}s {:.0}J, resolved {:?}",
        o.seconds, o.joules, o.resolved
    );
    for r in &o.report {
        println!(
            "  {:>13} {:6.2}% cf={:?} uf={:?} n={}",
            r.label,
            r.share * 100.0,
            r.cf_opt.map(|f| f.ghz()),
            r.uf_opt.map(|f| f.ghz()),
            r.occurrences
        );
    }
}
