//! Debug utility: full per-slab report for one benchmark.
//!
//! Usage: `cargo run --release -p bench --bin debug_report --
//!         [<bench-name>] [<scale>] [--smoke] [--shards N] [--json PATH]
//!         [--scenario FILE] [--list]`
//!
//! Defaults to `SOR-ws` at scale 0.3; `--smoke` pins the CI smoke
//! scale instead of the positional one.

use bench::cli::GridArgs;
use bench::grid::{AxisSet, GridResult, GridSetup, GridSpec};
use bench::Setup;
use cuttlefish::Policy;

const USAGE: &str = "debug_report [<bench-name>] [<scale>] [--smoke] [--shards N] [--json PATH] \
                     [--scenario FILE] [--list] [--store PATH] [--no-store]";

fn spec(args: &GridArgs) -> GridSpec {
    let name = args
        .positionals()
        .first()
        .map(String::as_str)
        .unwrap_or("SOR-ws");
    let scale = if args.smoke {
        args.scale()
    } else {
        args.positionals()
            .get(1)
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.3)
    };
    let mut spec = GridSpec::new("debug_report", scale);
    spec.push(AxisSet::new(
        vec![name.to_string()],
        vec![GridSetup::new(
            "Cuttlefish",
            Setup::Cuttlefish(Policy::Both),
        )],
    ));
    spec
}

fn main() {
    let args = GridArgs::parse(USAGE);
    let spec = spec(&args);
    if args.handle_scenario_or_list(&spec) {
        return;
    }
    let (result, timing) = args.run_grid(&spec);
    args.finish_timed(&result, &timing);
    render(&result);
}

fn render(result: &GridResult) {
    for o in &result.cells {
        println!(
            "{}: {:.2}s {:.0}J, resolved ({}, {})",
            o.spec.bench, o.seconds, o.joules, o.resolved_cf, o.resolved_uf
        );
        for r in &o.report {
            println!(
                "  {:>13} {:6.2}% cf={:?} uf={:?} n={}",
                r.label,
                r.share * 100.0,
                r.cf_ghz(),
                r.uf_ghz(),
                r.occurrences
            );
        }
    }
}
