//! Deterministic scenario fuzzing and differential six-governor
//! testing — the coverage story for "as many scenarios as you can
//! imagine" (ROADMAP), built from three parts:
//!
//! * **Generator** ([`generate`]): a seeded, index-addressed map from
//!   `(campaign seed, case index)` to a *valid* [`Scenario`] —
//!   synthetic phase patterns with adversarial cadences jittered
//!   around quantum- and `Tinv`-multiples, Table 1 benchmarks at tiny
//!   scales, mixed/straggler fleets, degenerate machines, all three
//!   topologies, both stepping modes. Case `i` depends only on
//!   `(seed, i)`, never on execution order, so campaigns are
//!   bit-identical across runs and shard counts.
//! * **Differential executor** ([`run_case`]): runs one scenario under
//!   every requested governor plus a static pin sweep over the
//!   fleet's frequency domains, then asserts the machine-checkable
//!   invariant catalogue (docs/FUZZING.md): no panics, finite
//!   positive measurements, energy inside the pin-sweep envelope,
//!   bounded slowdown versus the slowest pin, lockstep ≡ event-driven
//!   bit-identity, per-quantum ≡ event-driven bit-identity, and
//!   bit-identical replay from the re-serialized scenario JSON.
//! * **Shrinker** ([`shrink`]): deterministic greedy minimization of a
//!   failing scenario — drop nodes, simplify phases, shrink budgets —
//!   re-checking the caller's predicate at every step. The fixpoint
//!   is the `scenarios/regression-*.json` a fix pins forever (the
//!   `fuzz_regressions` suite replays every committed file).
//!
//! The differential idea is the paper's own claim turned into an
//! oracle: the online search must stay inside the static pin-sweep
//! envelope and near the oracle replay, on *every* reachable
//! scenario, not just the hand-written grids.

use crate::grid::straggler_spec;
use crate::json::{Json, ToJson};
use crate::scenario::{obj, Scenario, ScenarioOutcome, Topology};
use crate::HARNESS_SEED;
use cluster::SteppingMode;
use cuttlefish::controller::{NodePolicy, OracleEntry, OracleTable};
use cuttlefish::tipi::TipiSlab;
use cuttlefish::{Config, PidGains};
use simproc::freq::{Freq, FreqDomain, MachineSpec, HASWELL_2650V3, HYPOTHETICAL7};
use simproc::SimProcessor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use workloads::{ChunkPhase, ProgModel, SyntheticSpec, WorkloadSpec};

/// Report schema identifier (bump on breaking changes).
pub const SCHEMA: &str = "cuttlefish/fuzz-campaign/v1";

/// The six shipped governor names, in canonical campaign order.
pub const GOVERNOR_NAMES: [&str; 6] = [
    "default",
    "cuttlefish",
    "pinned",
    "ondemand",
    "oracle",
    "pid-uncore",
];

/// Small deterministic PRNG (PCG-ish LCG), the same recipe as the
/// engine and busy-equivalence suites, so failures reproduce from
/// their `(campaign seed, index)` pair alone.
pub struct Lcg(pub u64);

impl Lcg {
    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    /// Uniform draw in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.next_u64() % 100 < pct
    }
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

/// Instruction counts whose compute time sits a hair's breadth around
/// `k` quanta at a nominal 2.3 GHz / CPI 0.9 — the cadences most
/// likely to expose an off-by-one in a fast-forward runway bound
/// (`k = 20` is exactly one `Tinv` at the paper's 1 ms quantum).
fn boundary_instr(rng: &mut Lcg, k: u64) -> u64 {
    let per_quantum = 2_555_555u64;
    let jitter = rng.range(0, 2_000) as i64 - 1_000;
    (per_quantum * k).saturating_add_signed(jitter)
}

/// One machine draw: mostly the paper Haswell, sometimes the 7-level
/// hypothetical, the de-rated straggler, or a degenerate machine
/// (1–2 cores, narrow or single-point frequency domains). All share
/// the paper's 1 ms quantum, as cluster validation requires.
fn gen_machine(rng: &mut Lcg) -> MachineSpec {
    match rng.next_u64() % 8 {
        0..=3 => HASWELL_2650V3.clone(),
        4..=5 => HYPOTHETICAL7.clone(),
        6 => straggler_spec(),
        _ => {
            let n_cores = rng.range(1, 2) as usize;
            let cf_lo = rng.range(10, 20) as u32;
            let cf_hi = cf_lo + rng.range(0, 3) as u32;
            let uf_lo = rng.range(10, 24) as u32;
            let uf_hi = uf_lo + rng.range(0, 4) as u32;
            MachineSpec {
                name: format!("degenerate-{n_cores}c-core{cf_lo}-{cf_hi}-uncore{uf_lo}-{uf_hi}"),
                n_cores,
                core: FreqDomain::new(Freq(cf_lo), Freq(cf_hi)),
                uncore: FreqDomain::new(Freq(uf_lo), Freq(uf_hi)),
                quantum_ns: HASWELL_2650V3.quantum_ns,
            }
        }
    }
}

/// A synthetic phase pattern: 1–4 phases mixing sub-quantum churn,
/// quantum-boundary cadences, and `Tinv`-boundary cadences, each
/// either memory-ish (high MLP, heavy misses) or compute-ish.
fn gen_synthetic(rng: &mut Lcg, endless: bool) -> SyntheticSpec {
    let n_phases = rng.range(1, 4) as usize;
    let mut phases = Vec::new();
    for _ in 0..n_phases {
        let memoryish = rng.next_u64().is_multiple_of(2);
        let instructions = match rng.next_u64() % 3 {
            0 => rng.range(100_000, 2_000_000),
            1 => {
                let k = rng.range(1, 5);
                boundary_instr(rng, k)
            }
            _ => boundary_instr(rng, 20),
        };
        let (misses_local, misses_remote, cpi, mlp) = if memoryish {
            (56_000, 8_000, 0.55, 12.0)
        } else {
            (rng.range(0, 2_000), 0, 0.9, 4.0)
        };
        phases.push(ChunkPhase {
            chunks: rng.range(1, 6),
            instructions,
            misses_local,
            misses_remote,
            cpi,
            mlp,
        });
    }
    SyntheticSpec {
        phases,
        total_chunks: if endless {
            None
        } else {
            Some(rng.range(30, 150))
        },
    }
}

/// Table 1 benchmarks cheap enough to fuzz (tiny scales); the BSP
/// topology is restricted to the work-sharing subset its validation
/// demands.
const FUZZ_BENCHES: [&str; 4] = ["UTS", "SOR-ws", "Heat-ws", "HPCCG"];
const FUZZ_WS_BENCHES: [&str; 3] = ["SOR-ws", "Heat-ws", "HPCCG"];

fn gen_bench(rng: &mut Lcg, ws_only: bool) -> WorkloadSpec {
    let name = if ws_only {
        FUZZ_WS_BENCHES[(rng.next_u64() % FUZZ_WS_BENCHES.len() as u64) as usize]
    } else {
        FUZZ_BENCHES[(rng.next_u64() % FUZZ_BENCHES.len() as u64) as usize]
    };
    let model = if name.ends_with("-ws") || rng.chance(70) {
        ProgModel::OpenMp
    } else {
        ProgModel::HClib
    };
    WorkloadSpec::Bench {
        name: name.to_string(),
        model,
        scale: rng.range(10, 20) as f64 / 1000.0,
    }
}

/// Workload seed: mostly harness repetition seeds (store-addressable),
/// sometimes an arbitrary seed below 2^53 — those cases double as
/// coverage for the grid path's submit-time refusal diagnostics.
fn gen_seed(rng: &mut Lcg) -> u64 {
    match rng.next_u64() % 8 {
        0..=5 => HARNESS_SEED ^ ((rng.next_u64() % 4) << 32),
        6 => HARNESS_SEED,
        _ => rng.range(1, 1 << 40),
    }
}

/// Deterministically generate case `index` of campaign `campaign_seed`.
///
/// The returned scenario always passes [`Scenario::validate`] and
/// round-trips byte-identically through the JSON codec (both enforced
/// by the generator-validity suite). Each node's policy is
/// [`NodePolicy::Default`] — the differential executor substitutes
/// every governor under test.
pub fn generate(campaign_seed: u64, index: u64) -> Scenario {
    let mut rng = Lcg(campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Warm the LCG so structurally similar seeds decorrelate.
    rng.next_u64();
    rng.next_u64();

    let label = format!("fuzz-{index}");
    let topo = rng.next_u64() % 8;
    if topo <= 3 {
        // Single node: the only topology allowing traces, duration
        // caps, and endless streams (capped).
        let machine = gen_machine(&mut rng);
        let mut duration_s = None;
        let workload = if rng.chance(80) {
            let endless = rng.chance(20);
            let spec = gen_synthetic(&mut rng, endless);
            if endless || rng.chance(10) {
                duration_s = Some(rng.range(2, 8) as f64 / 10.0);
            }
            WorkloadSpec::Synthetic(spec)
        } else {
            gen_bench(&mut rng, false)
        };
        let trace = rng.chance(15);
        Scenario {
            label,
            workload,
            nodes: vec![(machine, NodePolicy::Default)],
            topology: Topology::SingleNode,
            seed: gen_seed(&mut rng),
            duration_s,
            trace,
            stepping: SteppingMode::default(),
        }
    } else if topo <= 5 {
        // Replicated: 2–3 independent (possibly mixed) nodes meeting
        // at one final barrier. Streams must be bounded.
        let n = rng.range(2, 3) as usize;
        let nodes = (0..n)
            .map(|_| (gen_machine(&mut rng), NodePolicy::Default))
            .collect();
        let workload = if rng.chance(80) {
            WorkloadSpec::Synthetic(gen_synthetic(&mut rng, false))
        } else {
            gen_bench(&mut rng, false)
        };
        Scenario {
            label,
            workload,
            nodes,
            topology: Topology::Replicated,
            seed: gen_seed(&mut rng),
            duration_s: None,
            trace: false,
            stepping: gen_stepping(&mut rng),
        }
    } else {
        // BSP strong scaling: 2–4 nodes, a handful of supersteps,
        // optional exchange bytes, optional synthetic-only weights.
        let n = rng.range(2, 4) as usize;
        let nodes: Vec<_> = (0..n)
            .map(|_| (gen_machine(&mut rng), NodePolicy::Default))
            .collect();
        let supersteps = rng.range(2, 6) as u32;
        let comm_bytes = match rng.next_u64() % 3 {
            0 => 0.0,
            _ => rng.range(1, 32) as f64 * 1.0e6,
        };
        let (workload, weights) = if rng.chance(80) {
            let endless = rng.chance(25);
            let spec = gen_synthetic(&mut rng, endless);
            let weights = if rng.chance(30) {
                (0..n).map(|_| rng.range(1, 3) as u32).collect()
            } else {
                vec![]
            };
            (WorkloadSpec::Synthetic(spec), weights)
        } else {
            (gen_bench(&mut rng, true), vec![])
        };
        Scenario {
            label,
            workload,
            nodes,
            topology: Topology::Bsp {
                supersteps,
                comm_bytes,
                weights,
            },
            seed: gen_seed(&mut rng),
            duration_s: None,
            trace: false,
            stepping: gen_stepping(&mut rng),
        }
    }
}

fn gen_stepping(rng: &mut Lcg) -> SteppingMode {
    if rng.chance(25) {
        SteppingMode::Lockstep
    } else {
        SteppingMode::default()
    }
}

// ---------------------------------------------------------------------------
// Fingerprints and execution
// ---------------------------------------------------------------------------

/// Bit-level fingerprint of one run: the mode-invariant observation
/// surface the cluster equivalence suite gates on (seconds, joules,
/// instructions, total virtual quanta, operating-point residency).
/// The stepped/idle/busy *split* is deliberately excluded — the
/// stepping modes differ there by design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFingerprint {
    /// `f64::to_bits` of virtual wall seconds.
    pub seconds_bits: u64,
    /// `f64::to_bits` of total joules.
    pub joules_bits: u64,
    /// `f64::to_bits` of instructions retired.
    pub instructions_bits: u64,
    /// Total virtual quanta elapsed (summed over nodes).
    pub total_quanta: u64,
    /// FNV-1a digest over the ascending residency map.
    pub residency_digest: u64,
}

impl RunFingerprint {
    /// Wall seconds as a float.
    pub fn seconds(&self) -> f64 {
        f64::from_bits(self.seconds_bits)
    }

    /// Joules as a float.
    pub fn joules(&self) -> f64 {
        f64::from_bits(self.joules_bits)
    }

    /// Instructions as a float.
    pub fn instructions(&self) -> f64 {
        f64::from_bits(self.instructions_bits)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn residency_digest<'a, I: Iterator<Item = (&'a (u32, u32), &'a u64)>>(iter: I) -> u64 {
    let mut h = FNV_OFFSET;
    for (&(cf, uf), &ns) in iter {
        h = fnv_mix(h, cf as u64);
        h = fnv_mix(h, uf as u64);
        h = fnv_mix(h, ns);
    }
    h
}

/// Fingerprint a finished scenario outcome.
pub fn fingerprint(outcome: &ScenarioOutcome) -> RunFingerprint {
    match outcome {
        ScenarioOutcome::Single(r) => RunFingerprint {
            seconds_bits: r.seconds.to_bits(),
            joules_bits: r.joules.to_bits(),
            instructions_bits: r.instructions.to_bits(),
            total_quanta: r.total_quanta,
            residency_digest: residency_digest(r.residency.iter().map(|(k, v)| (k, v))),
        },
        ScenarioOutcome::Cluster(c) => RunFingerprint {
            seconds_bits: c.outcome.seconds.to_bits(),
            joules_bits: c.outcome.joules.to_bits(),
            instructions_bits: c.outcome.instructions.to_bits(),
            total_quanta: c.outcome.total_quanta,
            residency_digest: residency_digest(c.residency.iter()),
        },
    }
}

/// Fingerprint a single-node processor after manual driving — the
/// per-quantum reference twin and the broken-controller tests share
/// this so the comparison surface is identical on both sides.
pub fn proc_fingerprint(proc: &SimProcessor, start_t: u64, start_e: f64) -> RunFingerprint {
    RunFingerprint {
        seconds_bits: (((proc.now_ns() - start_t) as f64) * 1e-9).to_bits(),
        joules_bits: (proc.total_energy_joules() - start_e).to_bits(),
        instructions_bits: proc.total_instructions().to_bits(),
        total_quanta: proc.total_quanta(),
        residency_digest: residency_digest(proc.frequency_residency().iter()),
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run a scenario to completion, converting any panic in the engine,
/// workload, or controller into an `Err` (the no-panic oracle).
pub fn execute(scenario: &Scenario) -> Result<RunFingerprint, String> {
    let s = scenario.clone();
    catch_unwind(AssertUnwindSafe(move || fingerprint(&s.run()))).map_err(panic_text)
}

/// Per-quantum reference twin for bounded single-node scenarios: the
/// plain `step`/`on_quantum` loop with no fast-forwards, which the
/// event-driven path must match bit for bit.
pub fn stepped_fingerprint(scenario: &Scenario) -> Result<RunFingerprint, String> {
    let s = scenario.clone();
    catch_unwind(AssertUnwindSafe(move || {
        let (mut proc, mut wl, mut ctrl) = s.build_single_node();
        let start_e = proc.total_energy_joules();
        let start_t = proc.now_ns();
        while !proc.workload_drained(wl.as_mut()) {
            proc.step(wl.as_mut());
            ctrl.on_quantum(&mut proc);
        }
        proc_fingerprint(&proc, start_t, start_e)
    }))
    .map_err(panic_text)
}

/// The scenario with every node's policy replaced and the label reset
/// — how the differential executor derives governor variants from one
/// generated base.
pub fn with_policy(base: &Scenario, policy: &NodePolicy, label: &str) -> Scenario {
    let mut s = base.clone();
    s.label = label.to_string();
    for node in &mut s.nodes {
        node.1 = policy.clone();
    }
    s
}

fn with_stepping(base: &Scenario, stepping: SteppingMode) -> Scenario {
    let mut s = base.clone();
    s.stepping = stepping;
    s
}

// ---------------------------------------------------------------------------
// Governors
// ---------------------------------------------------------------------------

/// The canonical differential instance of a governor by name (the
/// same six instances the equivalence suites pin): `Pinned` at the
/// paper's 1.4/2.4 GHz point and `Oracle` with the two-slab
/// memory/compute table — both clamped per node to each machine's
/// domain by the engine, so one instance serves heterogeneous fleets.
pub fn governor_policy(name: &str) -> Option<NodePolicy> {
    match name {
        "default" => Some(NodePolicy::Default),
        "cuttlefish" => Some(NodePolicy::Cuttlefish(Config::default())),
        "pinned" => Some(NodePolicy::Pinned {
            cf: Freq(14),
            uf: Freq(24),
        }),
        "ondemand" => Some(NodePolicy::Ondemand),
        "oracle" => Some(NodePolicy::Oracle(OracleTable {
            slab_width: 0.004,
            tinv_ns: 20_000_000,
            entries: vec![
                OracleEntry {
                    slab: TipiSlab(0),
                    cf: Freq(23),
                    uf: Freq(12),
                },
                OracleEntry {
                    slab: TipiSlab(16),
                    cf: Freq(12),
                    uf: Freq(22),
                },
            ],
        })),
        "pid-uncore" => Some(NodePolicy::PidUncore {
            config: Config::default(),
            gains: PidGains::default(),
        }),
        _ => None,
    }
}

/// All six governor names as owned strings (campaign default).
pub fn all_governors() -> Vec<String> {
    GOVERNOR_NAMES.iter().map(|s| s.to_string()).collect()
}

/// Parse a `--governors` comma list, validating every name.
pub fn parse_governors(arg: &str) -> Result<Vec<String>, String> {
    let names: Vec<String> = arg
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return Err("empty governor list".into());
    }
    for n in &names {
        if governor_policy(n).is_none() {
            return Err(format!(
                "unknown governor `{n}` (known: {})",
                GOVERNOR_NAMES.join(", ")
            ));
        }
    }
    Ok(names)
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

/// One invariant violation: which oracle fired, under which governor
/// variant, and the human-readable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Invariant identifier (see docs/FUZZING.md catalogue).
    pub invariant: &'static str,
    /// Governor variant (or `pin-cf-uf` / `-` for non-governor runs).
    pub governor: String,
    /// Evidence.
    pub detail: String,
}

/// Invariant tolerances. The envelope and slowdown bands are relative
/// headroom on top of measured pin-sweep extremes: the pin grid
/// samples 3×3 points of a discrete 2-D frequency space, so a
/// governor settling between grid points can legitimately sit
/// slightly outside the sampled extremes.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Relative headroom below the pin-sweep energy minimum.
    pub envelope_below: f64,
    /// Relative headroom above the pin-sweep energy maximum.
    pub envelope_above: f64,
    /// Relative headroom above the slowest bound for the slowdown
    /// check.
    pub slowdown_headroom: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            envelope_below: 0.15,
            envelope_above: 0.10,
            slowdown_headroom: 0.10,
        }
    }
}

/// The static pin-sweep envelope: energy and time extremes over a
/// 3×3 grid of pinned operating points spanning the fleet's combined
/// frequency domains.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The pinned points swept (deci-GHz, deduped).
    pub points: Vec<(u32, u32)>,
    /// Minimum joules over the sweep.
    pub min_joules: f64,
    /// Maximum joules over the sweep.
    pub max_joules: f64,
    /// Minimum seconds over the sweep.
    pub min_seconds: f64,
    /// Maximum seconds over the sweep.
    pub max_seconds: f64,
}

/// The 3×3 pin grid spanning the fleet: `{lo, mid, hi}` per domain,
/// where `lo`/`hi` are the min/max over every node's domain (each
/// node clamps to its own hardware, so shared points are valid on
/// mixed fleets). Deduped, ascending.
pub fn fleet_pin_grid(scenario: &Scenario) -> Vec<(u32, u32)> {
    let cf_lo = scenario
        .nodes
        .iter()
        .map(|(m, _)| m.core.min().0)
        .min()
        .unwrap_or(12);
    let cf_hi = scenario
        .nodes
        .iter()
        .map(|(m, _)| m.core.max().0)
        .max()
        .unwrap_or(23);
    let uf_lo = scenario
        .nodes
        .iter()
        .map(|(m, _)| m.uncore.min().0)
        .min()
        .unwrap_or(12);
    let uf_hi = scenario
        .nodes
        .iter()
        .map(|(m, _)| m.uncore.max().0)
        .max()
        .unwrap_or(30);
    let axis = |lo: u32, hi: u32| {
        let mut v = vec![lo, (lo + hi) / 2, hi];
        v.dedup();
        v
    };
    let mut points = Vec::new();
    for &cf in &axis(cf_lo, cf_hi) {
        for &uf in &axis(uf_lo, uf_hi) {
            if !points.contains(&(cf, uf)) {
                points.push((cf, uf));
            }
        }
    }
    points
}

/// Run the pin sweep and build the envelope. Each pin that panics is
/// reported as a violation; the envelope is only produced when every
/// pin completes (a partial envelope would under-approximate).
pub fn pin_envelope(scenario: &Scenario) -> (Option<Envelope>, Vec<Violation>) {
    let points = fleet_pin_grid(scenario);
    let mut violations = Vec::new();
    let mut runs = Vec::new();
    for &(cf, uf) in &points {
        let pin = with_policy(
            scenario,
            &NodePolicy::Pinned {
                cf: Freq(cf),
                uf: Freq(uf),
            },
            &format!("pin-{cf}-{uf}"),
        );
        match execute(&pin) {
            Ok(fp) => runs.push(fp),
            Err(e) => violations.push(Violation {
                invariant: "panic",
                governor: format!("pin-{cf}-{uf}"),
                detail: e,
            }),
        }
    }
    if runs.len() != points.len() {
        return (None, violations);
    }
    let fold = |f: fn(f64, f64) -> f64, init: f64, get: fn(&RunFingerprint) -> f64| {
        runs.iter().map(get).fold(init, f)
    };
    let env = Envelope {
        points,
        min_joules: fold(f64::min, f64::INFINITY, RunFingerprint::joules),
        max_joules: fold(f64::max, f64::NEG_INFINITY, RunFingerprint::joules),
        min_seconds: fold(f64::min, f64::INFINITY, RunFingerprint::seconds),
        max_seconds: fold(f64::max, f64::NEG_INFINITY, RunFingerprint::seconds),
    };
    (Some(env), violations)
}

/// Finiteness oracle: seconds/joules/instructions must be finite,
/// time strictly positive, energy and instructions non-negative.
pub fn check_finite(governor: &str, fp: &RunFingerprint) -> Option<Violation> {
    let (s, j, i) = (fp.seconds(), fp.joules(), fp.instructions());
    if !s.is_finite() || !j.is_finite() || !i.is_finite() {
        return Some(Violation {
            invariant: "finite",
            governor: governor.to_string(),
            detail: format!("non-finite measurement: seconds {s}, joules {j}, instructions {i}"),
        });
    }
    if s <= 0.0 || j < 0.0 || i < 0.0 {
        return Some(Violation {
            invariant: "finite",
            governor: governor.to_string(),
            detail: format!("non-positive measurement: seconds {s}, joules {j}, instructions {i}"),
        });
    }
    None
}

/// Envelope oracle: a governor's energy must sit inside the pin-sweep
/// envelope (with tolerance) — no dynamic policy can beat every
/// static point by a wide margin, nor burn more than the worst pin.
pub fn check_envelope(
    governor: &str,
    fp: &RunFingerprint,
    env: &Envelope,
    tol: &Tolerances,
) -> Option<Violation> {
    let j = fp.joules();
    let lo = env.min_joules * (1.0 - tol.envelope_below);
    let hi = env.max_joules * (1.0 + tol.envelope_above);
    if j < lo || j > hi {
        return Some(Violation {
            invariant: "energy-envelope",
            governor: governor.to_string(),
            detail: format!(
                "joules {j:.6} outside pin-sweep envelope [{lo:.6}, {hi:.6}] \
                 (sweep min {:.6}, max {:.6})",
                env.min_joules, env.max_joules
            ),
        });
    }
    None
}

/// Slowdown oracle: no governor may run meaningfully slower than the
/// slowest static pin (frequency floors bound execution time in the
/// simulator), nor slower than `Default` would allow given that
/// bound.
pub fn check_slowdown(
    governor: &str,
    fp: &RunFingerprint,
    default_seconds: f64,
    env: Option<&Envelope>,
    tol: &Tolerances,
) -> Option<Violation> {
    let base = match env {
        Some(e) => e.max_seconds.max(default_seconds),
        // Without an envelope the only anchor is Default; allow a
        // loose multiple (lowest-pin vs highest-pin spreads stay well
        // under this in the model).
        None => default_seconds * 4.0,
    };
    let bound = base * (1.0 + tol.slowdown_headroom);
    let s = fp.seconds();
    if s > bound {
        return Some(Violation {
            invariant: "slowdown",
            governor: governor.to_string(),
            detail: format!(
                "seconds {s:.6} exceeds bound {bound:.6} (default {default_seconds:.6})"
            ),
        });
    }
    None
}

// ---------------------------------------------------------------------------
// Differential executor
// ---------------------------------------------------------------------------

/// One governor's completed run within a case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GovernorRun {
    /// Governor name.
    pub governor: String,
    /// Fingerprint of the run.
    pub fp: RunFingerprint,
}

/// The full differential record of one fuzz case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Case index within the campaign.
    pub index: u64,
    /// The generated base scenario (policies all `Default`).
    pub scenario: Scenario,
    /// The pin-sweep envelope (absent if a pin panicked).
    pub envelope: Option<Envelope>,
    /// Completed governor runs.
    pub runs: Vec<GovernorRun>,
    /// Invariant violations, in detection order.
    pub violations: Vec<Violation>,
}

impl CaseOutcome {
    /// True when every invariant held.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Whether the per-quantum stepped twin applies: bounded single-node
/// scenarios only (the duration-cap loop has its own budgeted
/// stepping, and cluster scenarios are covered by the lockstep twin).
fn stepped_twin_applies(s: &Scenario) -> bool {
    s.nodes.len() == 1 && s.duration_s.is_none() && matches!(s.topology, Topology::SingleNode)
}

/// Run one scenario differentially under `governors` and assert the
/// invariant catalogue. The stepping-equivalence and replay oracles
/// rotate through the governor list by case index (one governor per
/// case each), bounding per-case cost while the campaign still covers
/// every `(oracle, governor)` pair.
pub fn run_case(
    index: u64,
    scenario: &Scenario,
    governors: &[String],
    tol: &Tolerances,
) -> CaseOutcome {
    let mut violations = Vec::new();

    // Codec oracle: the base scenario must survive serialize → parse
    // → re-serialize byte-identically.
    let json = scenario.to_json_string();
    match Scenario::from_json_str(&json) {
        Ok(parsed) => {
            if parsed != *scenario || parsed.to_json_string() != json {
                violations.push(Violation {
                    invariant: "codec",
                    governor: "-".to_string(),
                    detail: "scenario JSON round-trip is not the identity".to_string(),
                });
            }
        }
        Err(e) => violations.push(Violation {
            invariant: "codec",
            governor: "-".to_string(),
            detail: format!("serialized scenario failed to parse: {e}"),
        }),
    }

    // Static envelope.
    let (envelope, pin_violations) = pin_envelope(scenario);
    violations.extend(pin_violations);

    // Governor runs.
    let rotor = if governors.is_empty() {
        usize::MAX
    } else {
        (index % governors.len() as u64) as usize
    };
    let mut runs: Vec<GovernorRun> = Vec::new();
    for (g_idx, name) in governors.iter().enumerate() {
        let policy = governor_policy(name)
            .unwrap_or_else(|| panic!("unknown governor `{name}` reached run_case"));
        let variant = with_policy(scenario, &policy, name);
        let fp = match execute(&variant) {
            Ok(fp) => fp,
            Err(e) => {
                violations.push(Violation {
                    invariant: "panic",
                    governor: name.clone(),
                    detail: e,
                });
                continue;
            }
        };
        if let Some(v) = check_finite(name, &fp) {
            violations.push(v);
        }
        if let Some(env) = &envelope {
            if let Some(v) = check_envelope(name, &fp, env, tol) {
                violations.push(v);
            }
        }

        // Stepping-equivalence oracle (rotating governor): clusters
        // compare lockstep vs event-driven; bounded single-node cases
        // compare the plain per-quantum loop vs the event-driven one.
        if g_idx == rotor {
            if variant.nodes.len() > 1 {
                let other = match variant.stepping {
                    SteppingMode::Lockstep => SteppingMode::EventDriven,
                    _ => SteppingMode::Lockstep,
                };
                match execute(&with_stepping(&variant, other)) {
                    Ok(twin) if twin != fp => violations.push(Violation {
                        invariant: "stepping-equivalence",
                        governor: name.clone(),
                        detail: format!(
                            "lockstep and event-driven runs diverge: \
                             {fp:?} vs {twin:?}"
                        ),
                    }),
                    Ok(_) => {}
                    Err(e) => violations.push(Violation {
                        invariant: "panic",
                        governor: format!("{name} (stepping twin)"),
                        detail: e,
                    }),
                }
            } else if stepped_twin_applies(&variant) {
                match stepped_fingerprint(&variant) {
                    Ok(twin) if twin != fp => violations.push(Violation {
                        invariant: "stepping-equivalence",
                        governor: name.clone(),
                        detail: format!(
                            "per-quantum and event-driven runs diverge: \
                             {fp:?} vs {twin:?}"
                        ),
                    }),
                    Ok(_) => {}
                    Err(e) => violations.push(Violation {
                        invariant: "panic",
                        governor: format!("{name} (stepped twin)"),
                        detail: e,
                    }),
                }
            }

            // Replay oracle (same rotation): parse the re-serialized
            // variant and re-run — bits must match.
            match Scenario::from_json_str(&variant.to_json_string()) {
                Ok(replayed) => match execute(&replayed) {
                    Ok(fp2) if fp2 != fp => violations.push(Violation {
                        invariant: "replay",
                        governor: name.clone(),
                        detail: format!(
                            "re-serialized scenario replays differently: \
                             {fp:?} vs {fp2:?}"
                        ),
                    }),
                    Ok(_) => {}
                    Err(e) => violations.push(Violation {
                        invariant: "panic",
                        governor: format!("{name} (replay)"),
                        detail: e,
                    }),
                },
                Err(e) => violations.push(Violation {
                    invariant: "codec",
                    governor: name.clone(),
                    detail: format!("governor variant failed to re-parse: {e}"),
                }),
            }
        }

        runs.push(GovernorRun {
            governor: name.clone(),
            fp,
        });
    }

    // Slowdown oracle needs the Default anchor.
    if let Some(default_run) = runs.iter().find(|r| r.governor == "default") {
        let default_seconds = default_run.fp.seconds();
        for run in &runs {
            if run.governor == "default" {
                continue;
            }
            if let Some(v) = check_slowdown(
                &run.governor,
                &run.fp,
                default_seconds,
                envelope.as_ref(),
                tol,
            ) {
                violations.push(v);
            }
        }
    }

    CaseOutcome {
        index,
        scenario: scenario.clone(),
        envelope,
        runs,
        violations,
    }
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seed (`--seed`).
    pub seed: u64,
    /// Number of cases to generate (`--cases`).
    pub cases: u64,
    /// Governors under test (`--governors`).
    pub governors: Vec<String>,
    /// Worker threads (`--shards`) — affects wall-clock only, never
    /// the report bytes.
    pub shards: usize,
    /// Invariant tolerances.
    pub tol: Tolerances,
}

/// A finished campaign: every case outcome in index order.
#[derive(Debug)]
pub struct Campaign {
    /// The configuration that produced it.
    pub config: CampaignConfig,
    /// Case outcomes, index order.
    pub outcomes: Vec<CaseOutcome>,
}

impl Campaign {
    /// Total violation count across all cases.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Deterministic JSON campaign report (identical bytes for any
    /// shard count; no timestamps or wall-clock content).
    pub fn to_json(&self) -> Json {
        let cases: Vec<Json> = self.outcomes.iter().map(case_json).collect();
        obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("seed", Json::Num(self.config.seed as f64)),
            ("cases", Json::Num(self.config.cases as f64)),
            (
                "governors",
                Json::Arr(
                    self.config
                        .governors
                        .iter()
                        .map(|g| Json::Str(g.clone()))
                        .collect(),
                ),
            ),
            ("violations", Json::Num(self.violation_count() as f64)),
            ("results", Json::Arr(cases)),
        ])
    }

    /// Pretty-printed report.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }
}

/// The JSON emitter asserts finiteness; a NaN that slipped through a
/// violation record must still be reportable.
fn num_or_str(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Str(format!("{v}"))
    }
}

fn case_json(case: &CaseOutcome) -> Json {
    let s = &case.scenario;
    let topology = match &s.topology {
        Topology::SingleNode => "single-node",
        Topology::Replicated => "replicated",
        Topology::Bsp { .. } => "bsp",
    };
    let stepping = match s.stepping {
        SteppingMode::Lockstep => "lockstep",
        SteppingMode::EventDriven => "event-driven",
    };
    let runs: Vec<Json> = case
        .runs
        .iter()
        .map(|r| {
            obj(vec![
                ("governor", Json::Str(r.governor.clone())),
                ("seconds", num_or_str(r.fp.seconds())),
                ("joules", num_or_str(r.fp.joules())),
                ("instructions", num_or_str(r.fp.instructions())),
                ("total_quanta", Json::Num(r.fp.total_quanta as f64)),
            ])
        })
        .collect();
    let violations: Vec<Json> = case
        .violations
        .iter()
        .map(|v| {
            obj(vec![
                ("invariant", Json::Str(v.invariant.to_string())),
                ("governor", Json::Str(v.governor.clone())),
                ("detail", Json::Str(v.detail.clone())),
            ])
        })
        .collect();
    let mut fields = vec![
        ("index", Json::Num(case.index as f64)),
        ("label", Json::Str(s.label.clone())),
        ("workload", Json::Str(s.workload.name())),
        ("topology", Json::Str(topology.to_string())),
        ("nodes", Json::Num(s.nodes.len() as f64)),
        ("stepping", Json::Str(stepping.to_string())),
        ("scenario_seed", Json::Num(s.seed as f64)),
        ("runs", Json::Arr(runs)),
        ("violations", Json::Arr(violations)),
    ];
    // Embed the full scenario only for violating cases — that is the
    // reproducer a triager needs, and clean cases stay compact.
    if !case.violations.is_empty() {
        fields.push(("scenario", s.to_json()));
    }
    obj(fields)
}

/// Run a campaign across `config.shards` worker threads. Case `i` is
/// fully determined by `(seed, i)` and results are reassembled in
/// index order, so the outcome vector — and therefore the report —
/// is bit-identical for any shard count.
pub fn run_campaign(config: &CampaignConfig) -> Campaign {
    let scenarios: Vec<Scenario> = (0..config.cases)
        .map(|i| generate(config.seed, i))
        .collect();
    let queue = crossbeam::deque::Injector::new();
    for i in 0..scenarios.len() {
        queue.push(i);
    }
    let shards = config.shards.max(1);
    let done: std::sync::Mutex<Vec<(usize, CaseOutcome)>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..shards {
            scope.spawn(|| loop {
                match queue.steal() {
                    crossbeam::deque::Steal::Success(i) => {
                        let outcome =
                            run_case(i as u64, &scenarios[i], &config.governors, &config.tol);
                        done.lock().unwrap().push((i, outcome));
                    }
                    crossbeam::deque::Steal::Empty => break,
                    crossbeam::deque::Steal::Retry => {}
                }
            });
        }
    });
    let mut slots: Vec<Option<CaseOutcome>> = (0..scenarios.len()).map(|_| None).collect();
    for (i, outcome) in done.into_inner().unwrap() {
        slots[i] = Some(outcome);
    }
    Campaign {
        config: config.clone(),
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every queued case completes"))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// All one-step simplifications of a scenario, in fixed priority
/// order (structure before magnitude), pre-filtered to valid
/// scenarios. Deterministic: no randomness, no clocks.
pub fn shrink_candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = Vec::new();
    let mut push = |c: Scenario| {
        if c != *s && c.validate().is_ok() && !out.contains(&c) {
            out.push(c);
        }
    };

    // Drop one node at a time.
    if s.nodes.len() > 1 {
        for i in 0..s.nodes.len() {
            let mut c = s.clone();
            c.nodes.remove(i);
            if let Topology::Bsp { weights, .. } = &mut c.topology {
                if !weights.is_empty() {
                    weights.remove(i);
                }
            }
            push(c);
        }
    }
    // Simplify topology: weights off, BSP → Replicated, one-node
    // cluster → SingleNode.
    if let Topology::Bsp { weights, .. } = &s.topology {
        if !weights.is_empty() {
            let mut c = s.clone();
            if let Topology::Bsp { weights, .. } = &mut c.topology {
                weights.clear();
            }
            push(c);
        }
        let mut c = s.clone();
        c.topology = Topology::Replicated;
        push(c);
    }
    if s.nodes.len() == 1 && !matches!(s.topology, Topology::SingleNode) {
        let mut c = s.clone();
        c.topology = Topology::SingleNode;
        push(c);
    }
    // Non-default stepping back to default.
    if s.stepping != SteppingMode::default() {
        let mut c = s.clone();
        c.stepping = SteppingMode::default();
        push(c);
    }
    // Trace off, duration off or halved, seed canonical.
    if s.trace {
        let mut c = s.clone();
        c.trace = false;
        push(c);
    }
    if let Some(d) = s.duration_s {
        let mut c = s.clone();
        c.duration_s = None;
        push(c);
        if d > 0.05 {
            let mut c = s.clone();
            c.duration_s = Some(d / 2.0);
            push(c);
        }
    }
    if s.seed != HARNESS_SEED {
        let mut c = s.clone();
        c.seed = HARNESS_SEED;
        push(c);
    }
    // BSP magnitude shrinks.
    if let Topology::Bsp {
        supersteps,
        comm_bytes,
        ..
    } = &s.topology
    {
        if *supersteps > 1 {
            let mut c = s.clone();
            if let Topology::Bsp { supersteps, .. } = &mut c.topology {
                *supersteps /= 2;
                *supersteps = (*supersteps).max(1);
            }
            push(c);
        }
        if *comm_bytes > 0.0 {
            let mut c = s.clone();
            if let Topology::Bsp { comm_bytes, .. } = &mut c.topology {
                *comm_bytes = 0.0;
            }
            push(c);
        }
    }
    // Workload shrinks.
    match &s.workload {
        WorkloadSpec::Synthetic(spec) => {
            if spec.phases.len() > 1 {
                for i in 0..spec.phases.len() {
                    let mut c = s.clone();
                    if let WorkloadSpec::Synthetic(spec) = &mut c.workload {
                        spec.phases.remove(i);
                    }
                    push(c);
                }
            }
            if let Some(t) = spec.total_chunks {
                if t > 1 {
                    let mut c = s.clone();
                    if let WorkloadSpec::Synthetic(spec) = &mut c.workload {
                        spec.total_chunks = Some((t / 2).max(1));
                    }
                    push(c);
                }
            }
            for i in 0..spec.phases.len() {
                let p = &spec.phases[i];
                if p.instructions > 1_000 {
                    let mut c = s.clone();
                    if let WorkloadSpec::Synthetic(spec) = &mut c.workload {
                        spec.phases[i].instructions /= 2;
                    }
                    push(c);
                }
                if p.chunks > 1 {
                    let mut c = s.clone();
                    if let WorkloadSpec::Synthetic(spec) = &mut c.workload {
                        spec.phases[i].chunks /= 2;
                    }
                    push(c);
                }
                if p.misses_local > 0 || p.misses_remote > 0 {
                    let mut c = s.clone();
                    if let WorkloadSpec::Synthetic(spec) = &mut c.workload {
                        spec.phases[i].misses_local /= 2;
                        spec.phases[i].misses_remote /= 2;
                    }
                    push(c);
                }
            }
        }
        WorkloadSpec::Bench { scale, .. } => {
            if *scale > 0.002 {
                let mut c = s.clone();
                if let WorkloadSpec::Bench { scale, .. } = &mut c.workload {
                    *scale /= 2.0;
                }
                push(c);
            }
        }
    }
    out
}

/// Greedily shrink `scenario` while `still_failing` keeps returning
/// true, taking the first accepted candidate each round (first-
/// improvement), to a fixpoint where no single-step candidate still
/// fails. Deterministic for a deterministic predicate. The step cap
/// is a runaway backstop, far above any real shrink sequence.
pub fn shrink(scenario: &Scenario, still_failing: &mut dyn FnMut(&Scenario) -> bool) -> Scenario {
    let mut current = scenario.clone();
    for _ in 0..500 {
        let Some(next) = shrink_candidates(&current)
            .into_iter()
            .find(|c| still_failing(c))
        else {
            break;
        };
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn finite_oracle_fires_on_nan_joules() {
        let fp = RunFingerprint {
            seconds_bits: 1.0f64.to_bits(),
            joules_bits: f64::NAN.to_bits(),
            instructions_bits: 1.0f64.to_bits(),
            total_quanta: 1,
            residency_digest: 0,
        };
        let v = check_finite("broken", &fp).expect("NaN joules must fire");
        assert_eq!(v.invariant, "finite");
        assert!(v.detail.contains("NaN"), "{}", v.detail);
    }

    #[test]
    fn finite_oracle_fires_on_infinite_seconds_and_negative_energy() {
        let mut fp = RunFingerprint {
            seconds_bits: f64::INFINITY.to_bits(),
            joules_bits: 1.0f64.to_bits(),
            instructions_bits: 1.0f64.to_bits(),
            total_quanta: 1,
            residency_digest: 0,
        };
        assert!(check_finite("broken", &fp).is_some());
        fp.seconds_bits = 1.0f64.to_bits();
        fp.joules_bits = (-1.0f64).to_bits();
        assert!(check_finite("broken", &fp).is_some());
        fp.joules_bits = 1.0f64.to_bits();
        assert!(check_finite("ok", &fp).is_none());
    }

    #[test]
    fn envelope_oracle_fires_outside_the_band() {
        let env = Envelope {
            points: vec![(12, 12)],
            min_joules: 100.0,
            max_joules: 200.0,
            min_seconds: 1.0,
            max_seconds: 2.0,
        };
        let tol = Tolerances::default();
        let fp = |j: f64| RunFingerprint {
            seconds_bits: 1.0f64.to_bits(),
            joules_bits: j.to_bits(),
            instructions_bits: 1.0f64.to_bits(),
            total_quanta: 1,
            residency_digest: 0,
        };
        assert!(check_envelope("g", &fp(50.0), &env, &tol).is_some());
        assert!(check_envelope("g", &fp(500.0), &env, &tol).is_some());
        assert!(check_envelope("g", &fp(150.0), &env, &tol).is_none());
        // Tolerance edges are inside the band.
        assert!(check_envelope("g", &fp(100.0 * 0.86), &env, &tol).is_none());
        assert!(check_envelope("g", &fp(200.0 * 1.09), &env, &tol).is_none());
    }

    #[test]
    fn slowdown_oracle_fires_past_the_bound() {
        let env = Envelope {
            points: vec![(12, 12)],
            min_joules: 1.0,
            max_joules: 2.0,
            min_seconds: 1.0,
            max_seconds: 3.0,
        };
        let tol = Tolerances::default();
        let fp = |s: f64| RunFingerprint {
            seconds_bits: s.to_bits(),
            joules_bits: 1.0f64.to_bits(),
            instructions_bits: 1.0f64.to_bits(),
            total_quanta: 1,
            residency_digest: 0,
        };
        // Bound is max(env.max_seconds, default) * 1.10 = 3.3.
        assert!(check_slowdown("g", &fp(10.0), 1.0, Some(&env), &tol).is_some());
        assert!(check_slowdown("g", &fp(3.2), 1.0, Some(&env), &tol).is_none());
        // Without an envelope, the Default anchor with the loose
        // multiple applies: 1.0 * 4.0 * 1.10 = 4.4.
        assert!(check_slowdown("g", &fp(5.0), 1.0, None, &tol).is_some());
        assert!(check_slowdown("g", &fp(4.0), 1.0, None, &tol).is_none());
    }

    #[test]
    fn governor_names_all_resolve() {
        for name in GOVERNOR_NAMES {
            assert!(governor_policy(name).is_some(), "{name}");
        }
        assert!(governor_policy("nonsense").is_none());
        assert_eq!(parse_governors("default, oracle").unwrap().len(), 2);
        assert!(parse_governors("default,bogus").is_err());
        assert!(parse_governors("").is_err());
    }

    #[test]
    fn pin_grid_spans_the_fleet_and_dedupes() {
        let s = generate(0xC0FFEE, 0);
        let grid = fleet_pin_grid(&s);
        assert!(!grid.is_empty() && grid.len() <= 9);
        let unique: std::collections::BTreeSet<_> = grid.iter().collect();
        assert_eq!(unique.len(), grid.len(), "pin grid must dedupe");
    }

    #[test]
    fn num_or_str_guards_the_emitter() {
        assert_eq!(num_or_str(1.5), Json::Num(1.5));
        assert_eq!(num_or_str(f64::NAN), Json::Str("NaN".to_string()));
        assert_eq!(num_or_str(f64::INFINITY), Json::Str("inf".to_string()));
    }
}
