//! Build-time code-version fingerprint for the content-addressed
//! result store (`bench::store`).
//!
//! The store's cache key is `H(cell identity ‖ code version)`: any
//! source change that could move a deterministic result must change
//! the code version, or stale entries would replay as fresh results.
//! Release numbers are far too coarse (every PR changes behaviour) and
//! git metadata is unavailable to a plain `cargo build`, so the
//! fingerprint is a digest of the workspace sources themselves: every
//! `*.rs` and `Cargo.toml` under `crates/` and `shims/`, plus the root
//! manifest and lockfile, hashed with the same FNV-1a the store uses
//! at runtime. Conservative by design — a comment edit invalidates the
//! store — because recomputing a cell is cheap and replaying a wrong
//! one is not.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Collect every fingerprinted file under `dir` (recursively):
/// `*.rs` sources and `Cargo.toml` manifests.
fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target/` never lives under crates/ or shims/, but guard
            // anyway: derived artifacts must not feed the fingerprint.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            || path.file_name().is_some_and(|n| n == "Cargo.toml")
        {
            out.push(path);
        }
    }
}

fn main() {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap());
    let root = manifest.ancestors().nth(2).unwrap().to_path_buf();

    let mut files = Vec::new();
    for tree in ["crates", "shims"] {
        collect(&root.join(tree), &mut files);
    }
    for extra in ["Cargo.toml", "Cargo.lock"] {
        let path = root.join(extra);
        if path.is_file() {
            files.push(path);
        }
    }

    // Deterministic order: sort by the workspace-relative path, and
    // hash that path alongside the contents so renames invalidate too.
    files.sort();
    let mut hash = FNV_OFFSET;
    let mut buf = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        hash = fnv1a_update(hash, rel.to_string_lossy().as_bytes());
        hash = fnv1a_update(hash, &[0]);
        buf.clear();
        if let Ok(mut f) = fs::File::open(path) {
            let _ = f.read_to_end(&mut buf);
        }
        hash = fnv1a_update(hash, &buf);
        hash = fnv1a_update(hash, &[0]);
        println!("cargo:rerun-if-changed={}", path.display());
    }
    // New/removed files change the sorted list only once cargo reruns
    // us; watching the directories makes additions trigger that rerun.
    for tree in ["crates", "shims"] {
        println!("cargo:rerun-if-changed={}", root.join(tree).display());
    }

    println!("cargo:rustc-env=CUTTLEFISH_CODE_FINGERPRINT={hash:016x}");
}
