//! Scenario-grid integration tests: the shard-invariance contract the
//! CI artifacts depend on, the typed JSON round-trip, and the
//! heterogeneous / bulk-synchronous fleet-axis shapes.

use bench::grid::{straggler_spec, AxisSet, Fleet, GridResult, GridSetup, GridSpec};
use bench::json::{FromJson, Json, ToJson};
use bench::Setup;
use cuttlefish::Policy;
use simproc::freq::HASWELL_2650V3;

/// A small but representative grid: two benchmarks, a baseline and a
/// tuned setup (one traced), single-node and 2-node cluster cells.
fn tiny_spec() -> GridSpec {
    let mut spec = GridSpec::new("test-grid", 0.02);
    spec.push(
        AxisSet::new(
            vec!["UTS".into(), "SOR-irt".into()],
            vec![
                GridSetup::new("Default", Setup::Default).with_trace(),
                GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
            ],
        )
        .with_fleets(vec![Fleet::single(), Fleet::uniform(2)]),
    );
    spec
}

#[test]
fn shard_count_does_not_change_artifact_bytes() {
    let spec = tiny_spec();
    let serial = spec.run(1).to_json_string();
    let sharded = spec.run(8).to_json_string();
    assert_eq!(
        serial, sharded,
        "GridResult JSON must be byte-identical across shard counts"
    );
}

#[test]
fn grid_result_round_trips_through_json() {
    // Round-trip only needs one node count; keep the test fast but
    // include a rep > 0 so non-default seeds serialize too.
    let mut spec = GridSpec::new("test-grid", 0.02);
    spec.push(
        AxisSet::new(
            vec!["UTS".into(), "SOR-irt".into()],
            vec![
                GridSetup::new("Default", Setup::Default).with_trace(),
                GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
            ],
        )
        .with_reps(2),
    );
    let result = spec.run(4);

    let text = result.to_json_string();
    let parsed = GridResult::from_json_str(&text).expect("artifact parses back");
    assert_eq!(parsed, result, "typed round-trip must be lossless");
    assert_eq!(
        parsed.to_json_string(),
        text,
        "re-serialization must be byte-identical"
    );

    // Sanity: the artifact carries real measurements.
    assert_eq!(result.cells.len(), 2 * 2 * 2);
    for cell in &result.cells {
        assert!(cell.seconds > 0.0 && cell.joules > 0.0);
        assert_eq!(cell.node_joules.len(), cell.spec.nodes);
    }
    let traced = result.cell("UTS", "Default").unwrap();
    assert!(!traced.trace.is_empty(), "traced setup must carry a trace");
}

#[test]
fn cluster_cells_aggregate_per_node_measurements() {
    let mut spec = GridSpec::new("test-grid", 0.02);
    spec.push(
        AxisSet::new(
            vec!["UTS".into()],
            vec![GridSetup::new("Default", Setup::Default)],
        )
        .with_fleets(vec![Fleet::uniform(2)]),
    );
    let result = spec.run(2);
    let cell = &result.cells[0];
    assert_eq!(cell.spec.nodes, 2);
    assert_eq!(cell.node_joules.len(), 2);
    let sum: f64 = cell.node_joules.iter().sum();
    assert!((sum - cell.joules).abs() < 1e-9 * cell.joules.max(1.0));
    assert!(cell.trace.is_empty(), "cluster cells collect no trace");
    assert!(!cell.residency.is_empty());
}

/// A heterogeneous BSP fleet the uniform axes could not express before
/// the fleet axis existed: one paper node plus one straggler,
/// bulk-synchronous supersteps.
fn straggler_fleet() -> Fleet {
    Fleet::hetero(vec![HASWELL_2650V3.clone(), straggler_spec()]).with_bsp(8, 24.0e6)
}

#[test]
fn fleet_axes_enumerate_after_earlier_axis_sets() {
    let mut spec = tiny_spec();
    spec.push(
        AxisSet::new(
            vec!["Heat-ws".into()],
            vec![GridSetup::new(
                "Cuttlefish-straggler",
                Setup::Cuttlefish(Policy::Both),
            )],
        )
        .with_fleets(vec![straggler_fleet()]),
    );
    let cells = spec.cells();
    assert_eq!(cells.len(), 2 * 2 * 2 + 1);
    let last = cells.last().unwrap();
    assert_eq!(last.label, "Cuttlefish-straggler");
    assert_eq!(last.machines.as_ref().unwrap().len(), 2);
}

#[test]
fn heterogeneous_bsp_fleet_runs_and_round_trips() {
    let mut spec = GridSpec::new("hetero", 0.02);
    spec.push(AxisSet::new(
        vec!["Heat-ws".into()],
        vec![GridSetup::new("Default", Setup::Default)],
    ));
    spec.push(
        AxisSet::new(
            vec!["Heat-ws".into()],
            vec![GridSetup::new(
                "Cuttlefish-straggler",
                Setup::Cuttlefish(Policy::Both),
            )],
        )
        .with_fleets(vec![straggler_fleet()]),
    );
    let (result, timing) = spec.run_timed(2);
    assert_eq!(result.cells.len(), 2);
    assert_eq!(timing.cells.len(), 2);

    let hetero = &result.cells[1];
    assert_eq!(hetero.spec.nodes, 2);
    assert_eq!(hetero.node_joules.len(), 2);
    // The straggler (fewer, slower cores) forces the paper node to
    // wait at the superstep barriers.
    assert!(
        hetero.barrier_wait_s > 0.0,
        "straggler must create barrier wait"
    );
    // The fast-forwarded idle shows up as total >> stepped for the
    // heterogeneous cell.
    let t = timing.cells[1];
    assert!(
        t.total_quanta > t.stepped_quanta,
        "barrier idling must be fast-forwarded ({} vs {})",
        t.total_quanta,
        t.stepped_quanta
    );

    // machines + bsp survive the typed JSON round-trip, bytes included.
    let text = result.to_json_string();
    let parsed = GridResult::from_json_str(&text).expect("hetero artifact parses");
    assert_eq!(parsed, result);
    assert_eq!(parsed.to_json_string(), text);
}

#[test]
fn uniform_cells_serialize_without_hetero_keys() {
    // The machines/bsp keys must not leak into plain cells: their JSON
    // stays byte-compatible with pre-heterogeneity artifacts.
    let mut spec = GridSpec::new("test-grid", 0.02);
    spec.push(AxisSet::new(
        vec!["UTS".into()],
        vec![GridSetup::new("Default", Setup::Default)],
    ));
    let result = spec.run(1);
    let cell_json = result.cells[0].spec.to_json().to_pretty();
    assert!(!cell_json.contains("machines"));
    assert!(!cell_json.contains("bsp"));

    let mut hetero = GridSpec::new("h", 0.02);
    hetero.push(
        AxisSet::new(
            vec!["Heat-ws".into()],
            vec![GridSetup::new("S", Setup::Cuttlefish(Policy::Both))],
        )
        .with_fleets(vec![straggler_fleet()]),
    );
    let hetero_json = hetero.cells()[0].to_json().to_pretty();
    assert!(hetero_json.contains("machines"));
    assert!(hetero_json.contains("supersteps"));
}

#[test]
fn malformed_artifacts_are_rejected() {
    assert!(GridResult::from_json_str("not json").is_err());
    // Valid JSON, wrong schema tag.
    let wrong = Json::Obj(vec![
        ("schema".into(), Json::Str("something/else".into())),
        ("grid".into(), Json::Str("x".into())),
    ]);
    assert!(GridResult::from_json(&wrong).is_err());
    // Schema ok but cells malformed.
    let truncated = Json::Obj(vec![
        ("schema".into(), Json::Str(bench::grid::SCHEMA.into())),
        ("grid".into(), Json::Str("x".into())),
        ("scale".into(), Json::Num(1.0)),
        ("machine".into(), Json::Str("m".into())),
        ("cells".into(), Json::Arr(vec![Json::Obj(vec![])])),
    ]);
    assert!(GridResult::from_json(&truncated).is_err());
    let _ = truncated.to_pretty();
}
