//! Scenario-grid integration tests: the shard-invariance contract the
//! CI artifacts depend on, and the typed JSON round-trip.

use bench::grid::{GridResult, GridSetup, GridSpec};
use bench::json::{FromJson, Json};
use bench::Setup;
use cuttlefish::Policy;

/// A small but representative grid: two benchmarks, a baseline and a
/// tuned setup (one traced), single-node and 2-node cluster cells.
fn tiny_spec() -> GridSpec {
    let mut spec = GridSpec::new("test-grid", 0.02);
    spec.benchmarks = vec!["UTS".into(), "SOR-irt".into()];
    spec.setups = vec![
        GridSetup::new("Default", Setup::Default).with_trace(),
        GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
    ];
    spec.node_counts = vec![1, 2];
    spec
}

#[test]
fn shard_count_does_not_change_artifact_bytes() {
    let spec = tiny_spec();
    let serial = spec.run(1).to_json_string();
    let sharded = spec.run(8).to_json_string();
    assert_eq!(
        serial, sharded,
        "GridResult JSON must be byte-identical across shard counts"
    );
}

#[test]
fn grid_result_round_trips_through_json() {
    let mut spec = tiny_spec();
    // Round-trip only needs one node count; keep the test fast but
    // include a rep > 0 so non-default seeds serialize too.
    spec.node_counts = vec![1];
    spec.reps = 2;
    let result = spec.run(4);

    let text = result.to_json_string();
    let parsed = GridResult::from_json_str(&text).expect("artifact parses back");
    assert_eq!(parsed, result, "typed round-trip must be lossless");
    assert_eq!(
        parsed.to_json_string(),
        text,
        "re-serialization must be byte-identical"
    );

    // Sanity: the artifact carries real measurements.
    assert_eq!(result.cells.len(), 2 * 2 * 2);
    for cell in &result.cells {
        assert!(cell.seconds > 0.0 && cell.joules > 0.0);
        assert_eq!(cell.node_joules.len(), cell.spec.nodes);
    }
    let traced = result.cell("UTS", "Default").unwrap();
    assert!(!traced.trace.is_empty(), "traced setup must carry a trace");
}

#[test]
fn cluster_cells_aggregate_per_node_measurements() {
    let mut spec = tiny_spec();
    spec.benchmarks = vec!["UTS".into()];
    spec.node_counts = vec![2];
    spec.setups = vec![GridSetup::new("Default", Setup::Default)];
    let result = spec.run(2);
    let cell = &result.cells[0];
    assert_eq!(cell.spec.nodes, 2);
    assert_eq!(cell.node_joules.len(), 2);
    let sum: f64 = cell.node_joules.iter().sum();
    assert!((sum - cell.joules).abs() < 1e-9 * cell.joules.max(1.0));
    assert!(cell.trace.is_empty(), "cluster cells collect no trace");
    assert!(!cell.residency.is_empty());
}

#[test]
fn malformed_artifacts_are_rejected() {
    assert!(GridResult::from_json_str("not json").is_err());
    // Valid JSON, wrong schema tag.
    let wrong = Json::Obj(vec![
        ("schema".into(), Json::Str("something/else".into())),
        ("grid".into(), Json::Str("x".into())),
    ]);
    assert!(GridResult::from_json(&wrong).is_err());
    // Schema ok but cells malformed.
    let truncated = Json::Obj(vec![
        ("schema".into(), Json::Str(bench::grid::SCHEMA.into())),
        ("grid".into(), Json::Str("x".into())),
        ("scale".into(), Json::Num(1.0)),
        ("machine".into(), Json::Str("m".into())),
        ("cells".into(), Json::Arr(vec![Json::Obj(vec![])])),
    ]);
    assert!(GridResult::from_json(&truncated).is_err());
    let _ = truncated.to_pretty();
}
