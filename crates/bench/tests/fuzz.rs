//! Integration suite for the scenario-fuzz subsystem: generator
//! validity (every generated scenario is valid, codec-lossless, and
//! store-addressable or refused with the grid path's diagnostics),
//! campaign determinism across shard counts, oracle wiring through
//! `run_case`, a deliberately broken controller the stepping-
//! equivalence oracle must catch, and shrinker soundness/minimality.

use bench::fuzz::{
    all_governors, fingerprint, generate, proc_fingerprint, run_campaign, run_case, shrink,
    shrink_candidates, CampaignConfig, Tolerances,
};
use bench::grid::scenario_cell;
use bench::scenario::{Scenario, Topology};
use cluster::SteppingMode;
use cuttlefish::controller::{drive, FrequencyController};
use cuttlefish::daemon::NodeReport;
use simproc::freq::HASWELL_2650V3;
use simproc::SimProcessor;
use workloads::{ChunkPhase, SyntheticSpec, WorkloadSpec};

const SEED: u64 = 0xC0FFEE;

// ---------------------------------------------------------------------------
// Generator validity (satellite: every scenario valid + codec-lossless
// + store-addressable-or-refused)
// ---------------------------------------------------------------------------

#[test]
fn generated_scenarios_are_valid_and_codec_lossless() {
    for i in 0..300 {
        let s = generate(SEED, i);
        s.validate()
            .unwrap_or_else(|e| panic!("case {i} invalid: {e}\n{}", s.to_json_string()));
        let json = s.to_json_string();
        let parsed = Scenario::from_json_str(&json)
            .unwrap_or_else(|e| panic!("case {i} failed to parse: {e}"));
        assert_eq!(parsed, s, "case {i}: decoded scenario differs");
        assert_eq!(
            parsed.to_json_string(),
            json,
            "case {i}: re-serialization is not byte-identical"
        );
    }
}

#[test]
fn generated_scenarios_are_store_addressable_or_refused_with_diagnostics() {
    // The grid path refuses exactly the scenario shapes a
    // content-addressed artifact cannot carry; everything else must
    // map to a cell. Any other error message is a generator or
    // validation bug.
    let recognized = [
        "scenario seed is not a harness repetition seed",
        "synthetic workloads cannot be embedded in a grid artifact",
        "per-node policies cannot be embedded in a grid artifact",
        "BSP weights cannot be embedded in a grid artifact",
    ];
    let (mut cells, mut refusals) = (0, 0);
    for i in 0..300 {
        let s = generate(SEED, i);
        match scenario_cell(&s) {
            Ok(_) => cells += 1,
            Err(e) => {
                assert!(
                    recognized.iter().any(|r| e.starts_with(r)),
                    "case {i}: unrecognized refusal: {e}"
                );
                refusals += 1;
            }
        }
    }
    assert!(cells > 0, "some generated cases must be store-addressable");
    assert!(refusals > 0, "some cases must exercise the refusal path");
}

#[test]
fn generator_covers_the_space() {
    let mut single = 0;
    let mut replicated = 0;
    let mut bsp = 0;
    let mut lockstep = 0;
    let mut benches = 0;
    let mut endless = 0;
    let mut traced = 0;
    let mut capped = 0;
    let mut weighted = 0;
    let mut non_harness_seed = 0;
    let mut machines = std::collections::BTreeSet::new();
    for i in 0..400 {
        let s = generate(SEED, i);
        match &s.topology {
            Topology::SingleNode => single += 1,
            Topology::Replicated => replicated += 1,
            Topology::Bsp { weights, .. } => {
                bsp += 1;
                if !weights.is_empty() {
                    weighted += 1;
                }
            }
        }
        if s.stepping == SteppingMode::Lockstep {
            lockstep += 1;
        }
        match &s.workload {
            WorkloadSpec::Bench { .. } => benches += 1,
            WorkloadSpec::Synthetic(spec) => {
                if spec.total_chunks.is_none() {
                    endless += 1;
                }
            }
        }
        if s.trace {
            traced += 1;
        }
        if s.duration_s.is_some() {
            capped += 1;
        }
        let rep_seeds: Vec<u64> = (0..4).map(|r| bench::HARNESS_SEED ^ (r << 32)).collect();
        if !rep_seeds.contains(&s.seed) {
            non_harness_seed += 1;
        }
        for (m, _) in &s.nodes {
            machines.insert(m.name.clone());
        }
    }
    assert!(single > 0 && replicated > 0 && bsp > 0, "all topologies");
    assert!(lockstep > 0, "lockstep cases");
    assert!(benches > 0, "benchmark-backed cases");
    assert!(endless > 0, "endless streams");
    assert!(traced > 0, "traced cases");
    assert!(capped > 0, "duration-capped cases");
    assert!(weighted > 0, "weighted BSP cases");
    assert!(non_harness_seed > 0, "non-harness seeds");
    assert!(machines.len() >= 3, "machine variety: {machines:?}");
}

#[test]
fn generation_is_index_addressed() {
    // Case i depends only on (seed, i): generating out of order or in
    // isolation yields the same scenario — the property shard
    // invariance rests on.
    let forward: Vec<Scenario> = (0..20).map(|i| generate(SEED, i)).collect();
    let backward: Vec<Scenario> = (0..20).rev().map(|i| generate(SEED, i)).collect();
    for (i, s) in forward.iter().enumerate() {
        assert_eq!(*s, backward[19 - i], "case {i}");
    }
    assert_ne!(forward[0], generate(SEED + 1, 0), "seed must matter");
}

// ---------------------------------------------------------------------------
// Campaign determinism + clean fixed-seed run
// ---------------------------------------------------------------------------

#[test]
fn campaign_report_is_bit_identical_across_shard_counts() {
    let config = |shards| CampaignConfig {
        seed: SEED,
        cases: 6,
        governors: all_governors(),
        shards,
        tol: Tolerances::default(),
    };
    let a = run_campaign(&config(1));
    let b = run_campaign(&config(3));
    assert_eq!(a.violation_count(), 0, "fixed-seed campaign must be clean");
    assert_eq!(
        a.to_json_string(),
        b.to_json_string(),
        "report bytes must not depend on shard count"
    );
}

// ---------------------------------------------------------------------------
// Oracle wiring through run_case (satellite: invariant oracles fire)
// ---------------------------------------------------------------------------

#[test]
fn absurd_tolerances_make_the_envelope_and_slowdown_oracles_fire() {
    // Shrinking the envelope to 1% of the measured band and the
    // slowdown bound to ~0 must flag every governor — proving
    // run_case actually wires the oracles to real runs.
    let tol = Tolerances {
        envelope_below: -0.99,
        envelope_above: -0.99,
        slowdown_headroom: -0.999,
    };
    let s = generate(SEED, 0);
    assert!(matches!(s.topology, Topology::SingleNode));
    let out = run_case(0, &s, &all_governors(), &tol);
    assert!(
        out.violations
            .iter()
            .any(|v| v.invariant == "energy-envelope"),
        "envelope oracle must fire: {:?}",
        out.violations
    );
    assert!(
        out.violations.iter().any(|v| v.invariant == "slowdown"),
        "slowdown oracle must fire: {:?}",
        out.violations
    );
}

// ---------------------------------------------------------------------------
// Broken controller (satellite: a capacity-contract violation is
// exactly what the stepping-equivalence oracle detects)
// ---------------------------------------------------------------------------

/// A controller that toggles the core frequency every quantum but
/// *lies* about its busy fast-forward capacity, claiming an unbounded
/// runway. The event-driven loop then skips the toggles the
/// per-quantum reference performs — the observation streams diverge,
/// and the stepping-equivalence oracle must catch it.
struct OvercommitController;

impl FrequencyController for OvercommitController {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        let (lo, hi) = (proc.spec().core.min(), proc.spec().core.max());
        let next = if proc.core_freq() == lo { hi } else { lo };
        proc.set_core_freq(next);
    }

    fn report(&self) -> Vec<NodeReport> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "broken-overcommit"
    }

    fn busy_quanta_capacity(&self, _proc: &SimProcessor, _horizon: u64) -> u64 {
        // The lie: claim a schedule-proven runway (the Pinned-style
        // beyond-horizon grant) although on_quantum is anything but a
        // no-op over it.
        50
    }
}

#[test]
fn stepping_equivalence_oracle_catches_a_dishonest_capacity() {
    let spec = SyntheticSpec {
        phases: vec![ChunkPhase {
            chunks: 2,
            instructions: 6_000_000,
            misses_local: 56_000,
            misses_remote: 8_000,
            cpi: 0.55,
            mlp: 12.0,
        }],
        total_chunks: Some(40),
    };
    let run = |event: bool| {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = WorkloadSpec::Synthetic(spec.clone()).build(proc.spec().n_cores, SEED);
        let mut ctrl = OvercommitController;
        let (t0, e0) = (proc.now_ns(), proc.total_energy_joules());
        if event {
            drive(&mut proc, wl.as_mut(), &mut ctrl);
        } else {
            while !proc.workload_drained(wl.as_mut()) {
                proc.step(wl.as_mut());
                ctrl.on_quantum(&mut proc);
            }
        }
        proc_fingerprint(&proc, t0, e0)
    };
    let event = run(true);
    let stepped = run(false);
    assert_ne!(
        event, stepped,
        "an over-granted busy capacity must diverge from the per-quantum \
         reference — this inequality is what the stepping-equivalence \
         oracle asserts the absence of"
    );
    // Sanity: the honest shipped governors do NOT diverge on the same
    // workload (the oracle stays quiet where it should).
    let scenario = Scenario::synthetic(spec.clone())
        .label("honest-twin")
        .node(&HASWELL_2650V3, cuttlefish::controller::NodePolicy::Default)
        .seed(SEED)
        .build();
    let honest_event = fingerprint(&scenario.run());
    let honest_stepped = bench::fuzz::stepped_fingerprint(&scenario).unwrap();
    assert_eq!(
        honest_event, honest_stepped,
        "Default must be bit-identical"
    );
}

// ---------------------------------------------------------------------------
// Shrinker (satellite: output still fails, and is minimal-ish)
// ---------------------------------------------------------------------------

fn big_scenario() -> Scenario {
    // A deliberately baroque starting point: 4-node weighted BSP,
    // lockstep, three phases, non-harness seed.
    let s = generate(SEED, 7);
    let mut s = s;
    s.nodes = (0..4)
        .map(|_| {
            (
                HASWELL_2650V3.clone(),
                cuttlefish::controller::NodePolicy::Default,
            )
        })
        .collect();
    s.topology = Topology::Bsp {
        supersteps: 6,
        comm_bytes: 4.0e6,
        weights: vec![2, 1, 1, 1],
    };
    s.workload = WorkloadSpec::Synthetic(SyntheticSpec {
        phases: vec![
            ChunkPhase {
                chunks: 3,
                instructions: 51_111_100,
                misses_local: 56_000,
                misses_remote: 8_000,
                cpi: 0.55,
                mlp: 12.0,
            },
            ChunkPhase {
                chunks: 2,
                instructions: 2_555_000,
                misses_local: 1_000,
                misses_remote: 0,
                cpi: 0.9,
                mlp: 4.0,
            },
            ChunkPhase {
                chunks: 1,
                instructions: 400_000,
                misses_local: 0,
                misses_remote: 0,
                cpi: 0.9,
                mlp: 4.0,
            },
        ],
        total_chunks: Some(120),
    });
    s.stepping = SteppingMode::Lockstep;
    s.seed = 123_456_789;
    s.validate().unwrap();
    s
}

#[test]
fn shrinker_output_still_fails_and_is_minimal() {
    // Structural predicate: "at least 2 nodes". The shrinker must
    // keep it true at every accepted step, and at the fixpoint no
    // single candidate may still satisfy it (minimality) while every
    // magnitude floor has been ground down.
    let pred = |s: &Scenario| s.nodes.len() >= 2;
    let start = big_scenario();
    assert!(pred(&start));
    let shrunk = shrink(&start, &mut |s| pred(s));
    assert!(pred(&shrunk), "shrunk scenario must still fail");
    assert_eq!(shrunk.nodes.len(), 2, "node count ground to the floor");
    for c in shrink_candidates(&shrunk) {
        assert!(
            !pred(&c),
            "not minimal: a one-step candidate still fails: {}",
            c.to_json_string()
        );
    }
    // Deterministic: same input, same predicate, same output.
    let again = shrink(&start, &mut |s| pred(s));
    assert_eq!(shrunk, again);
    // And the simplifications actually landed.
    assert!(matches!(
        shrunk.topology,
        Topology::SingleNode | Topology::Replicated | Topology::Bsp { .. }
    ));
    assert_eq!(shrunk.stepping, SteppingMode::default());
    assert_eq!(shrunk.seed, bench::HARNESS_SEED);
}

#[test]
fn shrinker_with_a_real_run_case_predicate() {
    // Drive the shrinker with the executor itself as the predicate
    // (absurd tolerances make every case "fail"): the output must
    // still fail the same predicate — the exact workflow --shrink
    // runs on a real violation.
    let tol = Tolerances {
        envelope_below: -0.99,
        envelope_above: -0.99,
        slowdown_headroom: 0.10,
    };
    let governors = vec!["default".to_string(), "pinned".to_string()];
    let base = {
        // Small bounded single-node synthetic so the debug-mode runs
        // stay cheap.
        let mut s = generate(SEED, 0);
        assert!(matches!(s.topology, Topology::SingleNode));
        if let WorkloadSpec::Synthetic(spec) = &mut s.workload {
            spec.total_chunks = Some(24);
        }
        s
    };
    let mut failing = |s: &Scenario| !run_case(0, s, &governors, &tol).clean();
    assert!(failing(&base), "the predicate must fail on the base case");
    let shrunk = shrink(&base, &mut failing);
    assert!(
        failing(&shrunk),
        "shrunk output must still fail the original predicate"
    );
}

#[test]
fn shrink_candidates_are_valid_and_strictly_simpler() {
    let start = big_scenario();
    let candidates = shrink_candidates(&start);
    assert!(!candidates.is_empty());
    for c in &candidates {
        c.validate().expect("candidates must stay valid");
        assert_ne!(*c, start, "candidates must differ from the input");
    }
    // No duplicates (keeps the greedy walk deterministic and short).
    for (i, a) in candidates.iter().enumerate() {
        for b in &candidates[i + 1..] {
            assert_ne!(a, b, "duplicate shrink candidate");
        }
    }
}
