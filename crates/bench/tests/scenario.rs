//! Scenario-codec integration tests: property-based round-trips
//! through the JSON codec, rejection of malformed scenario files, and
//! the contract that a scenario file reproduces a grid cell bit for
//! bit.

use bench::grid::{run_scenario_timed, straggler_spec, AxisSet, Fleet, GridSetup, GridSpec};
use bench::scenario::{Scenario, Topology, SCENARIO_SCHEMA};
use bench::{Setup, HARNESS_SEED};
use cuttlefish::controller::{NodePolicy, OracleEntry, OracleTable, PidGains};
use cuttlefish::{Config, Policy, TipiSlab};
use proptest::collection;
use proptest::prelude::*;
use simproc::freq::{Freq, HASWELL_2650V3};
use workloads::{ChunkPhase, ProgModel, SyntheticSpec, WorkloadSpec};

/// Work-sharing benchmarks (the only ones a BSP topology accepts).
const WS_BENCHES: [&str; 5] = ["SOR-ws", "Heat-ws", "MiniFE", "HPCCG", "AMG"];
/// The full Table 1 suite.
const ALL_BENCHES: [&str; 10] = [
    "UTS", "SOR-irt", "SOR-rt", "SOR-ws", "Heat-irt", "Heat-rt", "Heat-ws", "MiniFE", "HPCCG",
    "AMG",
];

fn policy(pick: u32, tinv_ms: u64) -> NodePolicy {
    match pick % 6 {
        0 => NodePolicy::Default,
        1 => NodePolicy::Cuttlefish(Config::default().with_tinv_ms(tinv_ms).with_policy(
            if tinv_ms.is_multiple_of(2) {
                Policy::Both
            } else {
                Policy::CoreOnly
            },
        )),
        2 => NodePolicy::Pinned {
            cf: Freq(12 + (tinv_ms % 11) as u32),
            uf: Freq(12 + (tinv_ms % 18) as u32),
        },
        3 => NodePolicy::Ondemand,
        4 => NodePolicy::Oracle(OracleTable {
            slab_width: 0.004,
            tinv_ns: tinv_ms * 1_000_000,
            entries: vec![
                OracleEntry {
                    slab: TipiSlab(0),
                    cf: Freq(23),
                    uf: Freq(12 + (tinv_ms % 5) as u32),
                },
                OracleEntry {
                    slab: TipiSlab(1 + (tinv_ms % 40) as u32),
                    cf: Freq(12 + (tinv_ms % 11) as u32),
                    uf: Freq(22),
                },
            ],
        }),
        _ => NodePolicy::PidUncore {
            config: Config::default().with_tinv_ms(tinv_ms),
            gains: PidGains {
                kp: 0.5 * (tinv_ms % 16) as f64 + 0.5,
                ki: 0.05 * (tinv_ms % 8) as f64,
                kd: 0.25 * (tinv_ms % 3) as f64,
                setpoint: 0.5 + 0.1 * (tinv_ms % 5) as f64,
            },
        },
    }
}

/// Build a *valid* scenario from raw sampled integers: every
/// consistency rule (BSP needs work-sharing benchmarks, traces need a
/// single node, weights need synthetic workloads) is applied here, so
/// the property exercises the codec over the whole valid space.
#[allow(clippy::too_many_arguments)]
fn scenario_from(
    synthetic: bool,
    bench_idx: usize,
    hclib: bool,
    scale_step: u32,
    nodes_n: usize,
    policy_pick: u32,
    tinv_ms: u64,
    rep: u32,
    bsp: bool,
    supersteps: u32,
    comm_step: u32,
    trace: bool,
    weighted: bool,
    hetero: bool,
    phases: Vec<ChunkPhase>,
) -> Scenario {
    let workload = if synthetic {
        WorkloadSpec::Synthetic(SyntheticSpec {
            phases,
            total_chunks: Some(1000),
        })
    } else {
        let name = if bsp {
            WS_BENCHES[bench_idx % WS_BENCHES.len()]
        } else {
            ALL_BENCHES[bench_idx % ALL_BENCHES.len()]
        };
        WorkloadSpec::bench(
            name,
            if hclib {
                ProgModel::HClib
            } else {
                ProgModel::OpenMp
            },
            f64::from(scale_step) * 0.01,
        )
    };
    let mut builder = Scenario::workload(workload).label(format!("case-{policy_pick}"));
    for i in 0..nodes_n {
        let machine = if hetero && i == nodes_n - 1 {
            straggler_spec()
        } else {
            HASWELL_2650V3.clone()
        };
        builder = builder.node(&machine, policy(policy_pick, tinv_ms));
    }
    if bsp && nodes_n > 1 {
        if weighted && synthetic {
            builder = builder.bsp_weighted(
                supersteps,
                f64::from(comm_step) * 1.0e6,
                (0..nodes_n as u32).map(|i| i % 3 + 1).collect(),
            );
        } else {
            builder = builder.bsp(supersteps, f64::from(comm_step) * 1.0e6);
        }
    }
    if trace && nodes_n == 1 {
        builder = builder.trace();
    }
    builder.rep(rep).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scenario_json_round_trip_is_lossless(
        (synthetic_pick, bench_idx, hclib_pick, scale_step) in (0u32..2, 0usize..10, 0u32..2, 1u32..9),
        (nodes_n, policy_pick, tinv_ms, rep) in (1usize..5, 0u32..6, 1u64..80, 0u32..5),
        (bsp_pick, supersteps, comm_step, trace_pick) in (0u32..2, 1u32..16, 0u32..100, 0u32..2),
        (weighted_pick, hetero_pick) in (0u32..2, 0u32..2),
        phases in collection::vec(
            (1u64..5, 1u64..2_000_000, 0u64..60_000, 0u64..9_000, 1u32..12, 1u32..16).prop_map(
                |(chunks, instructions, misses_local, misses_remote, cpi_d, mlp)| ChunkPhase {
                    chunks,
                    instructions,
                    misses_local,
                    misses_remote,
                    cpi: f64::from(cpi_d) * 0.1,
                    mlp: f64::from(mlp),
                },
            ),
            1..4,
        ),
    ) {
        let scenario = scenario_from(
            synthetic_pick == 1,
            bench_idx,
            hclib_pick == 1,
            scale_step,
            nodes_n,
            policy_pick,
            tinv_ms,
            rep,
            bsp_pick == 1,
            supersteps,
            comm_step,
            trace_pick == 1,
            weighted_pick == 1,
            hetero_pick == 1,
            phases,
        );
        let text = scenario.to_json_string();
        let parsed = Scenario::from_json_str(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(&parsed, &scenario, "typed round-trip must be lossless");
        prop_assert_eq!(
            parsed.to_json_string(),
            text,
            "re-serialization must be byte-identical"
        );
    }
}

/// A minimal valid scenario document, as a mutable Json tree.
fn valid_doc() -> bench::json::Json {
    use bench::json::ToJson;
    Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
        .policy(NodePolicy::Default)
        .build()
        .to_json()
}

fn set_field(doc: &mut bench::json::Json, key: &str, value: bench::json::Json) {
    if let bench::json::Json::Obj(fields) = doc {
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
            return;
        }
        fields.push((key.to_string(), value));
    }
}

#[test]
fn malformed_scenario_files_are_rejected() {
    use bench::json::Json;

    // Not JSON at all.
    assert!(Scenario::from_json_str("not json").is_err());
    // Valid JSON, wrong schema tag.
    let mut doc = valid_doc();
    set_field(&mut doc, "schema", Json::Str("something/else".into()));
    assert!(Scenario::from_json_str(&doc.to_pretty()).is_err());
    // Missing required field.
    let doc = Json::Obj(vec![("schema".into(), Json::Str(SCENARIO_SCHEMA.into()))]);
    assert!(Scenario::from_json_str(&doc.to_pretty()).is_err());
    // Unknown policy kind.
    let text = valid_doc()
        .to_pretty()
        .replace("\"default\"", "\"turbo-nonsense\"");
    assert!(Scenario::from_json_str(&text).is_err());
    // Empty node list.
    let mut doc = valid_doc();
    set_field(&mut doc, "nodes", Json::Arr(vec![]));
    assert!(Scenario::from_json_str(&doc.to_pretty()).is_err());
    // Single-node topology with a 2-node fleet.
    let mut doc = valid_doc();
    if let Json::Obj(fields) = &mut doc {
        let nodes = fields
            .iter_mut()
            .find(|(k, _)| k == "nodes")
            .expect("nodes field");
        if let Json::Arr(items) = &mut nodes.1 {
            let dup = items[0].clone();
            items.push(dup);
        }
    }
    assert!(Scenario::from_json_str(&doc.to_pretty()).is_err());
    // Unknown benchmark name.
    let text = valid_doc().to_pretty().replace("\"UTS\"", "\"NoSuch\"");
    assert!(Scenario::from_json_str(&text).is_err());
    // Invalid machine (frequency domain containing 0).
    let text = valid_doc().to_pretty().replace("\"min\": 12", "\"min\": 0");
    assert!(Scenario::from_json_str(&text).is_err());
    // Trace on a cluster.
    let s = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
        .nodes(2, &HASWELL_2650V3, NodePolicy::Default)
        .build();
    let mut doc = {
        use bench::json::ToJson;
        s.to_json()
    };
    set_field(&mut doc, "trace", Json::Bool(true));
    assert!(Scenario::from_json_str(&doc.to_pretty()).is_err());
    // Negative duration.
    let mut doc = valid_doc();
    set_field(&mut doc, "duration_s", Json::Num(-1.0));
    assert!(Scenario::from_json_str(&doc.to_pretty()).is_err());
}

/// A valid scenario document under `policy`, as text.
fn doc_with_policy(policy: &NodePolicy) -> String {
    use bench::json::ToJson;
    let mut s = Scenario::bench("UTS", ProgModel::OpenMp, 0.05)
        .policy(NodePolicy::Default)
        .build();
    s.nodes[0].1 = policy.clone();
    s.to_json().to_pretty()
}

#[test]
fn malformed_oracle_and_pid_scenarios_are_rejected() {
    let table = OracleTable {
        slab_width: 0.004,
        tinv_ns: 20_000_000,
        entries: vec![OracleEntry {
            slab: TipiSlab(16),
            cf: Freq(12),
            uf: Freq(22),
        }],
    };
    // The valid forms parse.
    assert!(Scenario::from_json_str(&doc_with_policy(&NodePolicy::Oracle(table.clone()))).is_ok());
    assert!(
        Scenario::from_json_str(&doc_with_policy(&NodePolicy::PidUncore {
            config: Config::default(),
            gains: PidGains::default(),
        }))
        .is_ok()
    );
    // Empty oracle table.
    let empty = doc_with_policy(&NodePolicy::Oracle(table.clone()))
        .replace("\"entries\": [", "\"entries_unused\": [")
        .replace("\"table\": {", "\"table\": {\"entries\": [],");
    assert!(Scenario::from_json_str(&empty).is_err(), "empty table");
    // Out-of-order / duplicate slabs.
    let mut dup = table.clone();
    dup.entries.push(dup.entries[0]);
    assert!(
        Scenario::from_json_str(&doc_with_policy(&NodePolicy::Oracle(dup))).is_err(),
        "duplicate slabs"
    );
    // Zero slab width.
    let text = doc_with_policy(&NodePolicy::Oracle(table.clone())).replace("0.004", "0");
    assert!(Scenario::from_json_str(&text).is_err(), "zero slab width");
    // Missing table and table_file.
    let text = doc_with_policy(&NodePolicy::Oracle(table.clone())).replace("table", "tabel");
    assert!(Scenario::from_json_str(&text).is_err(), "no table at all");
    // A dangling table_file reference.
    let text = doc_with_policy(&NodePolicy::Oracle(table)).replace(
        "\"kind\": \"oracle\",",
        "\"kind\": \"oracle\", \"table_file\": \"/no/such/table.json\", \"unused\":",
    );
    assert!(
        Scenario::from_json_str(&text).is_err(),
        "dangling table_file"
    );
    // Setpoint outside (0, 1].
    let bad = doc_with_policy(&NodePolicy::PidUncore {
        config: Config::default(),
        gains: PidGains {
            setpoint: 0.625,
            ..PidGains::default()
        },
    })
    .replace("0.625", "1.5");
    assert!(Scenario::from_json_str(&bad).is_err(), "setpoint > 1");
    // Negative gain.
    let bad = doc_with_policy(&NodePolicy::PidUncore {
        config: Config::default(),
        gains: PidGains {
            kp: 0.625,
            ..PidGains::default()
        },
    })
    .replace("0.625", "-2");
    assert!(Scenario::from_json_str(&bad).is_err(), "negative gain");
}

/// A `table_file` reference loads the same table the inline form
/// carries, and re-serializes inline.
#[test]
fn oracle_table_file_reference_loads() {
    use bench::json::ToJson;
    let table = OracleTable {
        slab_width: 0.004,
        tinv_ns: 20_000_000,
        entries: vec![OracleEntry {
            slab: TipiSlab(16),
            cf: Freq(12),
            uf: Freq(22),
        }],
    };
    let dir = std::env::temp_dir().join("cuttlefish-oracle-table-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("table.json");
    std::fs::write(&path, table.to_json().to_pretty()).expect("write table");
    let by_ref = doc_with_policy(&NodePolicy::Oracle(table.clone())).replace(
        "\"table\": {",
        &format!(
            "\"table_file\": {}, \"unused\": {{",
            bench::json::Json::Str(path.display().to_string()).to_pretty()
        ),
    );
    let parsed = Scenario::from_json_str(&by_ref).expect("file-referenced table parses");
    assert_eq!(parsed.nodes[0].1, NodePolicy::Oracle(table));
    let reserialized = parsed.to_json_string();
    assert!(
        reserialized.contains("\"table\"") && !reserialized.contains("table_file"),
        "file references re-serialize inline"
    );
}

#[test]
fn scenario_axis_grid_is_shard_invariant() {
    // A grid whose cells exist only because of the scenario fleet axis:
    // heterogeneous straggler BSP next to uniform replicated cells.
    let mut spec = GridSpec::new("scenario-axis", 0.02);
    spec.push(
        AxisSet::new(
            vec!["Heat-ws".into()],
            vec![
                GridSetup::new("Default", Setup::Default),
                GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
            ],
        )
        .with_fleets(vec![
            Fleet::uniform(2),
            Fleet::hetero(vec![HASWELL_2650V3.clone(), straggler_spec()]).with_bsp(6, 24.0e6),
        ]),
    );
    let serial = spec.run(1).to_json_string();
    let sharded = spec.run(8).to_json_string();
    assert_eq!(
        serial, sharded,
        "scenario-axis grids must stay shard-invariant"
    );
}

#[test]
fn scenario_file_reproduces_grid_cell_bit_for_bit() {
    // The acceptance contract behind `--scenario`: a scenario document
    // describing a grid cell, parsed back from its own JSON, runs to
    // the identical artifact cell bytes.
    let mut spec = GridSpec::new("one-cell", 0.02);
    spec.push(AxisSet::new(
        vec!["UTS".into()],
        vec![GridSetup::new("Default", Setup::Default).with_trace()],
    ));
    let grid_cell_json = {
        use bench::json::ToJson;
        spec.run(1).cells[0].to_json().to_pretty()
    };

    let scenario = spec.cells()[0].scenario(&spec.machine, spec.scale);
    assert_eq!(scenario.seed, HARNESS_SEED);
    assert_eq!(scenario.topology, Topology::SingleNode);
    // Round-trip the scenario through its file format first: the rerun
    // must work from JSON alone.
    let reparsed = Scenario::from_json_str(&scenario.to_json_string()).expect("file parses");
    let (result, timing) = run_scenario_timed(&reparsed, None).expect("scenario runs");
    assert_eq!(result.cells.len(), 1);
    assert_eq!(timing.cells.len(), 1);
    let scenario_cell_json = {
        use bench::json::ToJson;
        result.cells[0].to_json().to_pretty()
    };
    assert_eq!(
        scenario_cell_json, grid_cell_json,
        "a scenario-file run must reproduce the grid cell bit for bit"
    );
}
