//! Result-store integration tests: the memoization contract the warm
//! CI stage depends on. A hit must reproduce the miss path's
//! `GridResult` byte for byte; any identity or code-version change
//! must miss; corrupt entries must be detected and recomputed; and
//! shard-invariance must survive mixed hit/miss grids under the LPT
//! dispatch order.

use bench::grid::{run_scenario_timed, AxisSet, GridSetup, GridSpec};
use bench::store::Store;
use bench::Setup;
use cuttlefish::Policy;
use std::path::PathBuf;

/// Fresh per-test store root (tests run in parallel; names must not
/// collide, and a stale root from a crashed run must not leak in).
fn test_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cuttlefish-store-test-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small grid with heterogeneous cell costs: two benchmarks under a
/// baseline and a tuned setup.
fn tiny_spec() -> GridSpec {
    let mut spec = GridSpec::new("store-test", 0.02);
    spec.push(AxisSet::new(
        vec!["UTS".into(), "SOR-irt".into()],
        vec![
            GridSetup::new("Default", Setup::Default),
            GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
        ],
    ));
    spec
}

/// The same grid restricted to one benchmark — a strict subset of
/// [`tiny_spec`]'s cells, for half-warming a store.
fn half_spec() -> GridSpec {
    let mut spec = GridSpec::new("store-test", 0.02);
    spec.push(AxisSet::new(
        vec!["UTS".into()],
        vec![
            GridSetup::new("Default", Setup::Default),
            GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
        ],
    ));
    spec
}

#[test]
fn warm_rerun_is_all_hits_and_bit_identical() {
    let store = Store::with_code_version(test_root("warm"), "cv-test");
    let spec = tiny_spec();

    let (cold, cold_t) = spec.run_timed_store(2, Some(&store));
    let cache = cold_t.cache.expect("store run reports cache stats");
    assert_eq!((cache.hits, cache.misses), (0, 4), "fresh store: all miss");
    assert!(cold_t.cells.iter().all(|c| !c.cached));

    let (warm, warm_t) = spec.run_timed_store(2, Some(&store));
    let cache = warm_t.cache.expect("cache stats");
    assert_eq!((cache.hits, cache.misses), (4, 0), "warm store: all hit");
    assert!((cache.hit_rate() - 1.0).abs() < 1e-12);
    assert!(warm_t.cells.iter().all(|c| c.cached));
    assert_eq!(
        warm.to_json_string(),
        cold.to_json_string(),
        "a hit must reproduce the miss path's artifact byte for byte"
    );
    // The stepping counters are deterministic virtual quantities: a
    // hit restores the committing run's values verbatim, so the
    // fast-forward CI floors stay honest on warm runs.
    for (c, w) in cold_t.cells.iter().zip(&warm_t.cells) {
        assert_eq!(c.stepped_quanta, w.stepped_quanta);
        assert_eq!(c.idle_advanced_quanta, w.idle_advanced_quanta);
        assert_eq!(c.busy_advanced_quanta, w.busy_advanced_quanta);
        assert_eq!(c.total_quanta, w.total_quanta);
    }
    // Every computed cell left a wall-clock hint for LPT dispatch.
    for cell in spec.cells() {
        let key = store.key(&cell.store_identity(&spec.machine, spec.scale));
        assert!(store.wall_hint(&key).is_some(), "hint for {}", cell.bench);
    }
    // Storeless runs report no cache section at all ("no store" and
    // "0% hits" are different facts).
    let (_, bare_t) = spec.run_timed_store(2, None);
    assert!(bare_t.cache.is_none());
}

#[test]
fn any_identity_byte_flip_changes_the_key() {
    let store = Store::with_code_version(test_root("keys"), "cv-test");
    let spec = tiny_spec();
    let cell = &spec.cells()[0];
    let identity = cell.store_identity(&spec.machine, spec.scale);
    let base = store.key(&identity);

    // Flipping any single identity byte moves both digests.
    for i in 0..identity.len() {
        let mut flipped = identity.clone();
        flipped[i] ^= 1;
        let k = store.key(&flipped);
        assert_ne!(k.key_hash, base.key_hash, "byte {i} did not move the key");
        assert_ne!(k.cell_hash, base.cell_hash);
    }
    // Structured changes move the key too: scale...
    assert_ne!(
        store
            .key(&cell.store_identity(&spec.machine, 0.03))
            .key_hash,
        base.key_hash
    );
    // ...and any cell field (here: the repetition index / seed).
    let mut rep1 = cell.clone();
    rep1.rep = 1;
    assert_ne!(
        store
            .key(&rep1.store_identity(&spec.machine, spec.scale))
            .key_hash,
        base.key_hash
    );
}

#[test]
fn code_version_flip_forces_misses_without_evicting() {
    let root = test_root("codever");
    let spec = half_spec();
    let v1 = Store::with_code_version(&root, "cv-one");
    let v2 = Store::with_code_version(&root, "cv-two");

    let (r1, t1) = spec.run_timed_store(2, Some(&v1));
    assert_eq!(t1.cache.unwrap().misses, 2);

    // A "code change": same identities, different fingerprint — every
    // cell misses and recomputes.
    let (r2, t2) = spec.run_timed_store(2, Some(&v2));
    let c2 = t2.cache.unwrap();
    assert_eq!((c2.hits, c2.misses), (0, 2), "new code version: all miss");
    assert_eq!(r1.to_json_string(), r2.to_json_string());

    // The old version's entries were not evicted: rolling back hits.
    let (_, t3) = spec.run_timed_store(2, Some(&v1));
    assert_eq!(t3.cache.unwrap().hits, 2);
}

#[test]
fn corrupt_entries_are_detected_and_recomputed() {
    let root = test_root("corrupt");
    let store = Store::with_code_version(&root, "cv-test");
    let spec = tiny_spec();
    let (cold, _) = spec.run_timed_store(2, Some(&store));
    let files = store.entry_files();
    assert_eq!(files.len(), 4);

    // Truncate one entry mid-JSON and flip a measured value inside
    // another (still valid JSON, so only the digest can catch it).
    let text = std::fs::read_to_string(&files[0]).unwrap();
    std::fs::write(&files[0], &text[..text.len() / 2]).unwrap();
    let text = std::fs::read_to_string(&files[1]).unwrap();
    let tampered = text.replacen("\"barrier_wait_s\": 0", "\"barrier_wait_s\": 7", 1);
    assert_ne!(tampered, text, "tamper target must exist");
    std::fs::write(&files[1], tampered).unwrap();

    // `verify` names both defects...
    let verdicts: Vec<bool> = files.iter().map(|f| store.verify_file(f).is_ok()).collect();
    assert_eq!(verdicts.iter().filter(|ok| !**ok).count(), 2);

    // ...and the grid run treats them as misses: recompute, identical
    // bytes, entries rewritten clean.
    let (warm, warm_t) = spec.run_timed_store(2, Some(&store));
    let cache = warm_t.cache.unwrap();
    assert_eq!((cache.hits, cache.misses), (2, 2));
    assert_eq!(warm.to_json_string(), cold.to_json_string());
    for file in &store.entry_files() {
        store.verify_file(file).expect("recommitted entries verify");
    }
}

#[test]
fn shard_invariance_holds_under_mixed_hits_and_lpt_order() {
    let spec = tiny_spec();
    // Two identically half-warmed stores (the UTS cells hit, the
    // SOR-irt cells miss and take the LPT-ordered queue)...
    let a = Store::with_code_version(test_root("shards-a"), "cv-test");
    let b = Store::with_code_version(test_root("shards-b"), "cv-test");
    half_spec().run_timed_store(2, Some(&a));
    half_spec().run_timed_store(2, Some(&b));

    // ...must produce byte-identical artifacts at any shard count.
    let (serial, st) = spec.run_timed_store(1, Some(&a));
    let (sharded, pt) = spec.run_timed_store(8, Some(&b));
    assert_eq!(st.cache.unwrap().hits, 2, "half-warm store must half-hit");
    assert_eq!(pt.cache.unwrap().hits, 2);
    assert_eq!(
        serial.to_json_string(),
        sharded.to_json_string(),
        "mixed hit/miss grids must stay shard-invariant"
    );
    // And match a plain storeless run of the same grid.
    let bare = spec.run(2);
    assert_eq!(bare.to_json_string(), serial.to_json_string());
}

#[test]
fn scenario_path_shares_the_grid_cells() {
    let root = test_root("scenario");
    let store = Store::with_code_version(&root, "cv-test");
    let spec = half_spec();
    spec.run_timed_store(2, Some(&store));

    // A scenario file describing a grid cell is the *same* cell to the
    // store: the --scenario path hits entries the grid committed.
    let cell = &spec.cells()[0];
    let scenario = cell.scenario(&spec.machine, spec.scale);
    let (result, timing) = run_scenario_timed(&scenario, Some(&store)).expect("runs");
    let cache = timing.cache.unwrap();
    assert_eq!((cache.hits, cache.misses), (1, 0));
    assert!(timing.cells[0].cached);
    assert_eq!(result.cells.len(), 1);
}

#[test]
fn entry_listing_is_sorted_ascending_by_key() {
    let store = Store::with_code_version(test_root("ls-sorted"), "cv-test");
    tiny_spec().run_timed_store(2, Some(&store));

    let files = store.entry_files();
    assert_eq!(files.len(), 4);
    let stems: Vec<String> = files
        .iter()
        .map(|p| p.file_stem().unwrap().to_str().unwrap().to_string())
        .collect();
    let mut sorted = stems.clone();
    sorted.sort();
    assert_eq!(stems, sorted, "entry_files must be ascending by key");
    // The sharding prefix is the key's own first two digits, so path
    // order *is* key order — the property `store ls` relies on.
    for (path, stem) in files.iter().zip(&stems) {
        let prefix = path
            .parent()
            .unwrap()
            .file_name()
            .unwrap()
            .to_str()
            .unwrap();
        assert_eq!(prefix, &stem[..2]);
        assert_eq!(store.verify_file(path).unwrap().key, *stem);
    }
}

#[test]
fn stats_reports_entries_versions_and_hint_coverage() {
    let root = test_root("stats");
    let v1 = Store::with_code_version(&root, "cv-one");
    let v2 = Store::with_code_version(&root, "cv-two");

    // Empty store: nothing to cover, coverage is vacuously full.
    let empty = v1.stats();
    assert_eq!((empty.entries, empty.corrupt, empty.bytes), (0, 0, 0));
    assert_eq!((empty.code_versions, empty.hints), (0, 0));
    assert!((empty.hint_coverage - 1.0).abs() < 1e-12);

    // 2 cells under cv-one + the same 2 of 4 under cv-two: 6 entries,
    // 2 code versions, 4 distinct identities, each hinted.
    half_spec().run_timed_store(2, Some(&v1));
    tiny_spec().run_timed_store(2, Some(&v2));
    let stats = v1.stats();
    assert_eq!(stats.entries, 6);
    assert_eq!(stats.corrupt, 0);
    assert_eq!(stats.code_versions, 2);
    assert_eq!(stats.hints, 4);
    assert!((stats.hint_coverage - 1.0).abs() < 1e-12);
    let total: u64 = v1
        .entry_files()
        .iter()
        .map(|f| std::fs::metadata(f).unwrap().len())
        .sum();
    assert_eq!(stats.bytes, total);

    // Truncating an entry reclassifies it as corrupt (its bytes still
    // count); dropping a hint file dents the coverage fraction.
    let files = v1.entry_files();
    let text = std::fs::read_to_string(&files[0]).unwrap();
    std::fs::write(&files[0], &text[..text.len() / 2]).unwrap();
    // Drop the hint of a cell that still decodes (the corrupt entry's
    // cell leaves the population, so its hint wouldn't dent coverage).
    let survivor = Store::describe(&files[1]).unwrap().cell;
    std::fs::remove_file(root.join("hints").join(format!("{survivor}.json"))).unwrap();
    let dented = v1.stats();
    assert_eq!(dented.entries + dented.corrupt, 6);
    assert_eq!(dented.corrupt, 1);
    assert_eq!(dented.hints, 3);
    assert!(dented.hint_coverage < 1.0);
}

#[test]
fn gc_sweeps_only_entries_of_other_code_versions() {
    let root = test_root("gc");
    let v1 = Store::with_code_version(&root, "cv-one");
    let v2 = Store::with_code_version(&root, "cv-two");
    half_spec().run_timed_store(2, Some(&v1));
    tiny_spec().run_timed_store(2, Some(&v2));
    assert_eq!(v1.entry_files().len(), 6);

    let report = v2.gc().expect("gc runs");
    assert_eq!((report.kept, report.removed), (4, 2));
    assert!(report.bytes_freed > 0);

    // v2's entries survived and still hit...
    let (_, t) = tiny_spec().run_timed_store(2, Some(&v2));
    assert_eq!(t.cache.unwrap().hits, 4);
    // ...and remove_prefix("") clears the rest.
    assert_eq!(v2.remove_prefix("").expect("rm"), 4);
    assert!(v2.entry_files().is_empty());
}
