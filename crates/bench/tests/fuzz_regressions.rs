//! Forever-replay of the committed fuzz regression corpus: every
//! `scenarios/regression-*.json` must parse, re-serialize to the
//! exact committed bytes, pass the full differential invariant
//! catalogue under all six governors, and reproduce bit-identically
//! run to run. A shrunk reproducer joins the corpus via the triage
//! workflow in docs/FUZZING.md; once here, it is pinned for good.

use bench::fuzz::{all_governors, execute, run_case, Tolerances};
use bench::grid::straggler_spec;
use bench::scenario::Scenario;
use bench::HARNESS_SEED;
use cluster::SteppingMode;
use cuttlefish::controller::NodePolicy;
use simproc::freq::HASWELL_2650V3;
use std::path::PathBuf;
use workloads::{ChunkPhase, SyntheticSpec};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn regression_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("regression-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

/// The seed corpus entry: a `Tinv`-cadence two-phase stream on a
/// mixed Haswell + straggler lockstep BSP fleet — the adversarial
/// shape most of the fast-forward regressions of PRs 3–7 shared,
/// pinned from development. (Real shrunk failures join it via the
/// triage workflow; regenerate with
/// `cargo test -p bench --test fuzz_regressions -- --ignored`.)
fn regression_0001() -> Scenario {
    Scenario::synthetic(SyntheticSpec {
        phases: vec![
            ChunkPhase {
                chunks: 1,
                instructions: 51_111_100,
                misses_local: 56_000,
                misses_remote: 8_000,
                cpi: 0.55,
                mlp: 12.0,
            },
            ChunkPhase {
                chunks: 1,
                instructions: 51_110_980,
                misses_local: 1_000,
                misses_remote: 0,
                cpi: 0.9,
                mlp: 4.0,
            },
        ],
        total_chunks: Some(40),
    })
    .label("regression-0001-tinv-lockstep-mixed-fleet")
    .node(&HASWELL_2650V3, NodePolicy::Default)
    .node(&straggler_spec(), NodePolicy::Default)
    .bsp(2, 1.0e6)
    .seed(HARNESS_SEED)
    .stepping(SteppingMode::Lockstep)
    .build()
}

#[test]
fn fuzz_regressions_replay_forever() {
    let files = regression_files();
    assert!(
        !files.is_empty(),
        "the committed corpus must contain at least the seed entry"
    );
    for path in files {
        let bytes = std::fs::read_to_string(&path).unwrap();
        let scenario =
            Scenario::from_json_str(&bytes).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            scenario.to_json_string(),
            bytes,
            "{}: committed bytes must be the canonical serialization",
            path.display()
        );
        let outcome = run_case(0, &scenario, &all_governors(), &Tolerances::default());
        assert!(
            outcome.clean(),
            "{}: regression must stay fixed, got {:?}",
            path.display(),
            outcome.violations
        );
        let a = execute(&scenario).unwrap();
        let b = execute(&scenario).unwrap();
        assert_eq!(a, b, "{}: replay must be bit-identical", path.display());
    }
}

#[test]
fn seed_corpus_entry_matches_its_generator() {
    // The committed file is exactly what the ignored writer emits —
    // drift in either direction fails here first.
    let path = scenarios_dir().join("regression-0001-tinv-lockstep-mixed-fleet.json");
    let bytes = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run the ignored writer test)", path.display()));
    assert_eq!(bytes, regression_0001().to_json_string());
}

/// Regenerates the seed corpus file. Run manually:
/// `cargo test -p bench --test fuzz_regressions -- --ignored`.
#[test]
#[ignore = "writes into scenarios/; run explicitly to (re)generate the seed corpus"]
fn write_seed_corpus_entry() {
    let s = regression_0001();
    s.validate().unwrap();
    let path = scenarios_dir().join("regression-0001-tinv-lockstep-mixed-fleet.json");
    std::fs::write(&path, s.to_json_string()).unwrap();
}
