//! Property-style suite for the busy fast-forward at the scenario
//! layer: over seeded random `WorkloadSpec::Synthetic` phase patterns —
//! including adversarial cadences whose chunk durations land next to
//! quantum and `Tinv` boundaries — the event-driven `drive` loop must
//! be *bit-identical* to plain per-quantum stepping for all six
//! shipped governors.
//!
//! The engine suite (`simproc/tests/event_clock.rs`) proves the busy
//! advance arithmetic; the cluster suite proves BSP phase structure;
//! this one hammers the controller capacity answers with phase changes
//! that arrive at the worst possible clock offsets.

use bench::scenario::Scenario;
use cuttlefish::controller::{drive, NodePolicy, OracleEntry, OracleTable};
use cuttlefish::tipi::TipiSlab;
use cuttlefish::{Config, PidGains};
use simproc::freq::Freq;
use simproc::SimProcessor;
use workloads::{ChunkPhase, SyntheticSpec};

/// Small deterministic PRNG (PCG-ish LCG), same recipe as the engine
/// suite, so failures reproduce from their seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Instruction counts whose compute time sits a hair's breadth around
/// `k` quanta at a nominal 2.3 GHz / CPI 0.9 — the cadences most
/// likely to expose an off-by-one in the busy runway bound (`k = 20`
/// is exactly one `Tinv`).
fn boundary_instr(rng: &mut Lcg, k: u64) -> u64 {
    // quantum_ns = 1 ms -> 2.3e6 cycles -> ~2.55e6 instructions.
    let per_quantum = 2_555_555u64;
    let jitter = rng.range(0, 2_000) as i64 - 1_000;
    (per_quantum * k).saturating_add_signed(jitter)
}

fn random_spec(rng: &mut Lcg) -> SyntheticSpec {
    let n_phases = rng.range(2, 4) as usize;
    let mut phases = Vec::new();
    for _ in 0..n_phases {
        let memoryish = rng.next().is_multiple_of(2);
        let instructions = match rng.next() % 3 {
            // Sub-quantum churn.
            0 => rng.range(100_000, 2_000_000),
            // Near a quantum-multiple boundary.
            1 => {
                let k = rng.range(1, 5);
                boundary_instr(rng, k)
            }
            // Near the Tinv boundary (20 quanta).
            _ => boundary_instr(rng, 20),
        };
        phases.push(if memoryish {
            ChunkPhase {
                chunks: rng.range(1, 5),
                instructions,
                misses_local: 56_000,
                misses_remote: 8_000,
                cpi: 0.55,
                mlp: 12.0,
            }
        } else {
            ChunkPhase {
                chunks: rng.range(1, 5),
                instructions,
                misses_local: rng.range(0, 2_000),
                misses_remote: 0,
                cpi: 0.9,
                mlp: 4.0,
            }
        });
    }
    SyntheticSpec {
        phases,
        total_chunks: Some(rng.range(40, 160)),
    }
}

fn policies() -> Vec<NodePolicy> {
    let table = OracleTable {
        slab_width: 0.004,
        tinv_ns: 20_000_000,
        entries: vec![
            OracleEntry {
                slab: TipiSlab(0),
                cf: Freq(23),
                uf: Freq(12),
            },
            OracleEntry {
                slab: TipiSlab(16),
                cf: Freq(12),
                uf: Freq(22),
            },
        ],
    };
    vec![
        NodePolicy::Default,
        NodePolicy::Cuttlefish(Config::default()),
        NodePolicy::Pinned {
            cf: Freq(14),
            uf: Freq(24),
        },
        NodePolicy::Ondemand,
        NodePolicy::Oracle(table),
        NodePolicy::PidUncore {
            config: Config::default(),
            gains: PidGains::default(),
        },
    ]
}

#[derive(PartialEq, Debug)]
struct Fingerprint {
    energy_bits: u64,
    instructions_bits: u64,
    time_ns: u64,
    residency: Vec<((u32, u32), u64)>,
    cf: Freq,
    uf: Freq,
    power_bits: u64,
}

fn fingerprint(p: &SimProcessor) -> Fingerprint {
    Fingerprint {
        energy_bits: p.total_energy_joules().to_bits(),
        instructions_bits: p.total_instructions().to_bits(),
        time_ns: p.now_ns(),
        residency: p
            .frequency_residency()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect(),
        cf: p.core_freq(),
        uf: p.uncore_freq(),
        power_bits: p.last_quantum().power_watts.to_bits(),
    }
}

fn run(policy: &NodePolicy, spec: &SyntheticSpec, event_driven: bool) -> (Fingerprint, u64, u64) {
    let scenario = Scenario::synthetic(spec.clone())
        .policy(policy.clone())
        .build();
    let (mut proc, mut wl, mut ctrl) = scenario.build_single_node();
    if event_driven {
        drive(&mut proc, wl.as_mut(), ctrl.as_mut());
    } else {
        while !proc.workload_drained(wl.as_mut()) {
            proc.step(wl.as_mut());
            ctrl.on_quantum(&mut proc);
        }
    }
    (
        fingerprint(&proc),
        proc.busy_advanced_quanta(),
        proc.total_quanta(),
    )
}

#[test]
fn random_phase_patterns_are_bit_identical_for_all_governors() {
    let mut busy_advanced_total = 0u64;
    for seed in 1..=10u64 {
        let mut rng = Lcg(seed ^ 0xB05B);
        let spec = random_spec(&mut rng);
        for policy in policies() {
            let (slow, _, slow_total) = run(&policy, &spec, false);
            let (fast, busy_advanced, fast_total) = run(&policy, &spec, true);
            assert_eq!(
                slow,
                fast,
                "seed {seed}, policy {}: event-driven run must be bit-identical",
                policy.name()
            );
            assert_eq!(slow_total, fast_total, "seed {seed}: identical timelines");
            if matches!(policy, NodePolicy::PidUncore { .. }) {
                assert_eq!(
                    busy_advanced, 0,
                    "seed {seed}: a per-quantum PID cannot fast-forward while busy"
                );
            }
            busy_advanced_total += busy_advanced;
        }
    }
    assert!(
        busy_advanced_total > 0,
        "no seeded pattern exercised the busy fast path"
    );
}

#[test]
fn tinv_aligned_phases_keep_tick_schedules_exact() {
    // The nastiest cadence for the tick-scheduled controllers: every
    // phase lasts almost exactly one Tinv, so capacity answers that
    // are off by one quantum would shift a profile tick.
    let mut rng = Lcg(0x71CC);
    let spec = SyntheticSpec {
        phases: vec![
            ChunkPhase {
                chunks: 1,
                instructions: boundary_instr(&mut rng, 20),
                misses_local: 56_000,
                misses_remote: 8_000,
                cpi: 0.55,
                mlp: 12.0,
            },
            ChunkPhase {
                chunks: 1,
                instructions: boundary_instr(&mut rng, 20),
                misses_local: 1_000,
                misses_remote: 0,
                cpi: 0.9,
                mlp: 4.0,
            },
        ],
        total_chunks: Some(600),
    };
    for policy in [
        NodePolicy::Cuttlefish(Config::default()),
        NodePolicy::PidUncore {
            config: Config::default(),
            gains: PidGains::default(),
        },
    ] {
        let (slow, _, _) = run(&policy, &spec, false);
        let (fast, _, _) = run(&policy, &spec, true);
        assert_eq!(
            slow,
            fast,
            "policy {}: Tinv-aligned phases must not shift ticks",
            policy.name()
        );
    }
}
