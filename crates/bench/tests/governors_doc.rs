//! `docs/GOVERNORS.md` promises that every JSON block it shows is a
//! runnable scenario file. This test keeps that promise: it extracts
//! each fenced ```json block and decodes it through the
//! `cuttlefish/scenario/v1` codec, so a schema change that would break
//! the documented snippets breaks CI instead.

use bench::scenario::Scenario;

/// The fenced ```json blocks of a markdown document, in order.
fn json_blocks(markdown: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in markdown.lines() {
        match &mut current {
            None if line.trim_start().starts_with("```json") => current = Some(String::new()),
            None => {}
            Some(block) => {
                if line.trim_start().starts_with("```") {
                    blocks.push(current.take().expect("open block"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```json fence");
    blocks
}

#[test]
fn every_governors_md_snippet_is_a_valid_scenario() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/GOVERNORS.md");
    let text = std::fs::read_to_string(path).expect("docs/GOVERNORS.md exists");
    let blocks = json_blocks(&text);
    // One snippet per governor: the guide documents all six.
    assert!(
        blocks.len() >= 6,
        "expected a snippet per governor, found {}",
        blocks.len()
    );
    let mut labels = Vec::new();
    for (i, block) in blocks.iter().enumerate() {
        let scenario = Scenario::from_json_str(block).unwrap_or_else(|e| {
            panic!("GOVERNORS.md json block #{i} is not a valid scenario: {e}\n{block}")
        });
        labels.push(scenario.label.clone());
        // Documented snippets must also round-trip: what the page
        // shows is what a tool would write back.
        let reparsed = Scenario::from_json_str(&scenario.to_json_string()).expect("round-trips");
        assert_eq!(reparsed, scenario, "snippet #{i} round-trips losslessly");
    }
    for governor in [
        "Default",
        "Pinned-1.2-2.2",
        "Cuttlefish",
        "Ondemand",
        "Oracle",
        "PidUncore",
    ] {
        assert!(
            labels.iter().any(|l| l == governor),
            "no snippet for {governor} (found {labels:?})"
        );
    }
}
