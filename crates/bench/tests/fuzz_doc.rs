//! `docs/FUZZING.md` promises that every JSON block it shows is a
//! runnable scenario file (campaign-report excerpts use ```text
//! fences precisely so this stays true). This test keeps the promise
//! the same way `governors_doc.rs` does for the governor guide: each
//! fenced ```json block must decode through the
//! `cuttlefish/scenario/v1` codec, validate, and round-trip.

use bench::scenario::Scenario;

/// The fenced ```json blocks of a markdown document, in order.
fn json_blocks(markdown: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in markdown.lines() {
        match &mut current {
            None if line.trim_start().starts_with("```json") => current = Some(String::new()),
            None => {}
            Some(block) => {
                if line.trim_start().starts_with("```") {
                    blocks.push(current.take().expect("open block"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```json fence");
    blocks
}

#[test]
fn every_fuzzing_md_snippet_is_a_valid_scenario() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/FUZZING.md");
    let text = std::fs::read_to_string(path).expect("docs/FUZZING.md exists");
    let blocks = json_blocks(&text);
    // At least the generated-case example and the seed corpus entry.
    assert!(
        blocks.len() >= 2,
        "expected the generated-case and seed-corpus snippets, found {}",
        blocks.len()
    );
    let mut scenarios = Vec::new();
    for (i, block) in blocks.iter().enumerate() {
        let scenario = Scenario::from_json_str(block).unwrap_or_else(|e| {
            panic!("FUZZING.md json block #{i} is not a valid scenario: {e}\n{block}")
        });
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("FUZZING.md json block #{i} does not validate: {e}"));
        let reparsed = Scenario::from_json_str(&scenario.to_json_string()).expect("round-trips");
        assert_eq!(reparsed, scenario, "snippet #{i} round-trips losslessly");
        scenarios.push(scenario);
    }
    // The documented seed-corpus snippet must be the committed file,
    // not a paraphrase of it.
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/regression-0001-tinv-lockstep-mixed-fleet.json"
    ))
    .expect("committed seed corpus entry");
    let committed = Scenario::from_json_str(&committed).expect("committed entry parses");
    assert!(
        scenarios.contains(&committed),
        "FUZZING.md must show the committed regression-0001 entry verbatim"
    );
}
