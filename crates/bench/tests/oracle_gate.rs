//! Full-scale online-vs-oracle gate (paper §5's central claim).
//!
//! Runs the `table2` grid at paper scale (`CUTTLEFISH_SCALE=1.0`
//! equivalent — the spec pins scale 1.0 directly so the gate cannot be
//! weakened through the environment) and asserts that Cuttlefish's
//! *online* search lands within a small energy gap of the *static
//! oracle* derived from each benchmark's traced Default run.
//!
//! `#[ignore]` by default: this is a multi-second release-mode run, far
//! beyond unit-test budgets, and meaningless in debug builds. CI runs
//! it as an informational stage via `ci.sh`:
//!
//! ```text
//! cargo test --release -p bench --test oracle_gate -- --ignored
//! ```
//!
//! Bounds are set from measured behaviour with headroom, not from the
//! paper's numbers: at scale 1.0 the per-benchmark gap peaks around
//! +14 % (HPCCG, whose TIPI ranges resolve slowest) and the mean sits
//! near +4 %.

use bench::grid::{AxisSet, GridSetup, GridSpec};
use bench::Setup;
use cuttlefish::Policy;

/// Worst acceptable per-benchmark energy gap (online vs oracle).
const MAX_GAP_PCT: f64 = 20.0;
/// Worst acceptable suite-mean energy gap.
const MAX_MEAN_GAP_PCT: f64 = 8.0;

#[test]
#[ignore = "paper-scale run; ci.sh invokes it in release mode as an informational stage"]
fn online_search_tracks_static_oracle_at_full_scale() {
    let mut spec = GridSpec::new("table2", 1.0);
    let benchmarks = spec.full_suite();
    spec.push(AxisSet::new(
        benchmarks.clone(),
        vec![
            GridSetup::new("Default", Setup::Default).with_trace(),
            GridSetup::new("Cuttlefish", Setup::Cuttlefish(Policy::Both)),
        ],
    ));
    spec.push(AxisSet::new(
        benchmarks.clone(),
        vec![GridSetup::new("Oracle", Setup::Oracle)],
    ));

    let result = spec.run(bench::cli::default_shards());

    let mut gaps = Vec::new();
    for bench in &benchmarks {
        let cuttlefish = result.cell(bench, "Cuttlefish").expect("cuttlefish cell");
        let oracle = result.cell(bench, "Oracle").expect("oracle cell");
        let gap_pct = (cuttlefish.joules / oracle.joules - 1.0) * 100.0;
        eprintln!("{bench}: online-vs-oracle energy gap {gap_pct:+.1}%");
        assert!(
            gap_pct <= MAX_GAP_PCT,
            "{bench}: online search burned {gap_pct:+.1}% more energy than the \
             static oracle (bound {MAX_GAP_PCT}%)"
        );
        gaps.push(gap_pct);
    }
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    eprintln!("suite mean gap {mean:+.1}%");
    assert!(
        mean <= MAX_MEAN_GAP_PCT,
        "suite mean online-vs-oracle gap {mean:+.1}% exceeds {MAX_MEAN_GAP_PCT}%"
    );
}
