//! Criterion microbenchmarks: the runtime costs that matter for a
//! tuning daemon that wakes every 20 ms and must not perturb the
//! application it tunes.
//!
//! * `daemon_tick` — one Algorithm 1 wake-up (the paper's overhead
//!   claim rests on this being microseconds);
//! * `exploration_advance` — one Algorithm 2 step;
//! * `tipi_list` — node insertion with neighbour inheritance and
//!   §4.5 propagation at AMG-like list sizes;
//! * `engine_quantum` — one 20-core simulator quantum (the
//!   reproduction's experiment throughput);
//! * `scheduler_pull` — work-stealing chunk acquisition;
//! * `grid_cell` — one end-to-end scenario-grid cell at tiny scale
//!   (what each `--shards` worker executes per steal; the setup path
//!   is shared with every figure/table bin);
//! * `serve_submit_hit` — a warm submission's full round trip against
//!   a live `cuttlefish-serve` daemon (vs `grid_cell_warm`'s raw
//!   store load: the difference is the protocol tax);
//! * `bsp_superstep_{lockstep,event}` — one imbalanced 4-node
//!   superstep under the cycle-box reference vs the event heap.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cuttlefish::daemon::Daemon;
use cuttlefish::explore::Exploration;
use cuttlefish::list::TipiList;
use cuttlefish::{Config, TipiSlab};
use simproc::engine::{Chunk, SimProcessor, Workload};
use simproc::freq::{Freq, FreqDomain, HASWELL_2650V3};
use simproc::perf::CostProfile;
use simproc::profile::Sample;
use std::hint::black_box;

fn sample(tipi: f64, jpi: f64) -> Sample {
    Sample {
        tipi,
        jpi,
        instructions: 1_000_000,
        joules: jpi * 1e6,
        dt_ns: 20_000_000,
    }
}

fn bench_daemon_tick(c: &mut Criterion) {
    let core = FreqDomain::new(Freq(12), Freq(23));
    let uncore = FreqDomain::new(Freq(12), Freq(30));
    c.bench_function("daemon_tick_steady", |b| {
        let mut d = Daemon::new(Config::default(), core.clone(), uncore.clone());
        // Warm the daemon into the Done state for one slab.
        for _ in 0..4000 {
            d.tick(sample(0.065, 4.0));
        }
        b.iter(|| black_box(d.tick(sample(0.065, 4.0))));
    });
    c.bench_function("daemon_tick_exploring", |b| {
        b.iter_batched(
            || Daemon::new(Config::default(), core.clone(), uncore.clone()),
            |mut d| {
                for i in 0..64 {
                    black_box(d.tick(sample(0.065, 4.0 + (i % 7) as f64 * 0.01)));
                }
                d
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_exploration(c: &mut Criterion) {
    c.bench_function("exploration_advance", |b| {
        b.iter_batched(
            || Exploration::new(0, 11, 12, 10),
            |mut e| {
                for _ in 0..100 {
                    let adv = e.advance();
                    if e.opt().is_some() {
                        break;
                    }
                    e.record(adv.next, 5.0 + adv.next as f64 * 0.1);
                }
                e
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_tipi_list(c: &mut Criterion) {
    c.bench_function("tipi_list_insert_60_ranges", |b| {
        b.iter(|| {
            let mut list = TipiList::new();
            // AMG-like: 60 distinct ranges arriving in scattered order.
            for i in 0..60u32 {
                let slab = TipiSlab((i * 37) % 83);
                if list.get(slab).is_none() {
                    list.insert(slab, 12, 10);
                    list.propagate_cf(slab, true, true);
                }
            }
            black_box(list.len())
        });
    });
}

fn bench_engine(c: &mut Criterion) {
    struct Steady(Chunk);
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(self.0.clone())
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    c.bench_function("engine_quantum_20core", |b| {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl =
            Steady(Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0)));
        b.iter(|| {
            p.step(&mut wl);
            black_box(p.now_ns())
        });
    });
}

fn bench_scheduler(c: &mut Criterion) {
    use tasking::{TaskDag, WorkStealingScheduler};
    fn wide_dag(n: usize) -> TaskDag {
        let mut b = TaskDag::builder();
        for _ in 0..n {
            b.add_task(Chunk::new(100_000, 1000, 0));
        }
        b.build()
    }
    c.bench_function("worksteal_pull_10k_tasks", |b| {
        b.iter_batched(
            || WorkStealingScheduler::new(wide_dag(10_000), 20, 7),
            |mut s| {
                let mut handed = 0u64;
                for core in (0..20).cycle() {
                    if s.next_chunk(core, 0).is_none() {
                        if s.is_done() {
                            break;
                        }
                    } else {
                        handed += 1;
                    }
                }
                black_box(handed)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_grid_cell(c: &mut Criterion) {
    use bench::grid::{run_cell, CellSpec};
    use bench::Setup;
    use workloads::ProgModel;

    let scale = 0.01;
    let cell = CellSpec {
        bench: "UTS".into(),
        model: ProgModel::OpenMp,
        label: "Default".into(),
        setup: Setup::Default,
        config: Config::default(),
        nodes: 1,
        rep: 0,
        trace: false,
        machines: None,
        bsp: None,
        oracle: None,
        stepping: cluster::SteppingMode::default(),
    };
    c.bench_function("grid_cell_uts_tiny", |b| {
        b.iter(|| black_box(run_cell(&HASWELL_2650V3, scale, &cell)))
    });

    // The same cell through the result store's two paths: a miss
    // (simulate + commit) vs a hit (key + load + verify). The gap is
    // what the warm CI stage banks per cached cell.
    use bench::grid::run_cell_timed;
    use bench::store::Store;
    let root = std::env::temp_dir().join(format!("cuttlefish-micro-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Store::with_code_version(root, "micro-bench");
    let key = store.key(&cell.store_identity(&HASWELL_2650V3, scale));
    c.bench_function("grid_cell_cold", |b| {
        b.iter(|| {
            let (result, timing) = run_cell_timed(&HASWELL_2650V3, scale, &cell);
            store.commit(&key, &result, &timing).expect("commit");
            black_box(result)
        })
    });
    c.bench_function("grid_cell_warm", |b| {
        b.iter(|| {
            let key = store.key(&cell.store_identity(&HASWELL_2650V3, scale));
            black_box(store.load(&key).expect("warm bench must hit"))
        })
    });

    // The same warm cell through the serving path: one full
    // submit + result round trip against a live in-process daemon
    // (connect, coalesced key lookup, artifact transfer). The gap to
    // `grid_cell_warm` is the protocol tax a memoized submission pays
    // over a raw store load.
    let serve_root =
        std::env::temp_dir().join(format!("cuttlefish-micro-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_root);
    let serve_store = Store::with_code_version(serve_root, "micro-bench");
    {
        let key = serve_store.key(&cell.store_identity(&HASWELL_2650V3, scale));
        let (result, timing) = run_cell_timed(&HASWELL_2650V3, scale, &cell);
        serve_store.commit(&key, &result, &timing).expect("commit");
    }
    let server = serve::Server::bind("127.0.0.1:0", serve_store, 1).expect("bind");
    let client = serve::Client::new(server.local_addr().to_string());
    let daemon = std::thread::spawn(move || server.run().expect("server runs"));
    let submission = || {
        serve::Submission::Cell(Box::new(serve::protocol::CellSubmission {
            machine: HASWELL_2650V3.clone(),
            scale,
            cell: cell.clone(),
        }))
    };
    c.bench_function("serve_submit_hit", |b| {
        b.iter(|| {
            black_box(
                client
                    .submit_and_fetch(submission())
                    .expect("warm round trip"),
            )
        })
    });
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon exits cleanly");
}

fn bench_bsp_superstep(c: &mut Criterion) {
    use cluster::{BspApp, Cluster, CommModel, NodePolicy, SteppingMode};

    // One 4-node superstep under both driving planes: the lockstep
    // "cycle-box" reference vs the event heap. Same numbers by the
    // equivalence suites; this pair tracks the wall-clock gap the
    // discrete-event scheduler buys on barrier-heavy fleets.
    let chunks = || {
        (0..12)
            .map(|_| {
                Chunk::new(3_000_000, 139_000, 59_000).with_profile(CostProfile::new(0.55, 12.0))
            })
            .collect::<Vec<_>>()
    };
    let app = BspApp::imbalanced(4, 1, 0, 3, chunks);
    for (name, mode) in [
        ("bsp_superstep_lockstep", SteppingMode::Lockstep),
        ("bsp_superstep_event", SteppingMode::EventDriven),
    ] {
        let app = app.clone();
        c.bench_function(name, move |b| {
            b.iter_batched(
                || {
                    let mut cl = Cluster::new(4, NodePolicy::Default, CommModel::default());
                    cl.set_stepping(mode);
                    cl
                },
                |mut cl| black_box(cl.run_program(&mut &app)),
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_advance_idle(c: &mut Criterion) {
    struct Never;
    impl Workload for Never {
        fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
        fn next_wake_ns(&self, _: u64) -> Option<u64> {
            None
        }
    }
    // The cluster-barrier hot path before and after the virtual-clock
    // layer: 1000 idle quanta stepped one by one vs one analytic
    // advance (numerically identical by construction).
    c.bench_function("idle_1k_quanta_stepped", |b| {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        b.iter(|| {
            for _ in 0..1000 {
                p.step(&mut Never);
            }
            black_box(p.now_ns())
        });
    });
    c.bench_function("idle_1k_quanta_advanced", |b| {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        b.iter(|| {
            p.advance_idle_quanta(1000);
            black_box(p.now_ns())
        });
    });
}

fn bench_advance_busy(c: &mut Criterion) {
    struct Steady(Chunk);
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(self.0.clone())
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    let chunk =
        || Steady(Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0)));
    // The busy steady-state hot path before and after the analytic
    // fast-forward: 1000 saturated quanta stepped one by one vs one
    // `advance_busy_quanta` call (bit-identical by construction — the
    // advance replays the same per-quantum arithmetic, so the win is
    // scheduling/bookkeeping, not skipped work; expect a smaller ratio
    // than the idle pair's).
    c.bench_function("busy_1k_quanta_stepped", |b| {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = chunk();
        b.iter(|| {
            for _ in 0..1000 {
                p.step(&mut wl);
            }
            black_box(p.now_ns())
        });
    });
    c.bench_function("busy_1k_quanta_advanced", |b| {
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = chunk();
        // Enter the saturated steady state once so the advance starts
        // from the same machine regime the stepped loop settles into.
        p.step(&mut wl);
        b.iter(|| {
            black_box(p.advance_busy_quanta(&mut wl, 1000));
            black_box(p.now_ns())
        });
    });
}

/// Fuzz-campaign throughput: scenario generation alone, and one full
/// differential case (pin sweep + all six governors + rotating
/// stepping/replay twins) — the per-case cost that sizes how many
/// cases a CI budget buys.
fn bench_fuzz(c: &mut Criterion) {
    use bench::fuzz::{all_governors, generate, run_case, Tolerances};

    c.bench_function("fuzz_case_generate", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(generate(bench::HARNESS_SEED, i % 1024))
        });
    });

    c.bench_function("fuzz_case_differential", |b| {
        // A fixed bounded single-node synthetic case, so the number
        // tracks executor overhead rather than generator luck.
        let scenario = generate(bench::HARNESS_SEED, 0);
        let governors = all_governors();
        let tol = Tolerances::default();
        b.iter(|| black_box(run_case(0, &scenario, &governors, &tol)));
    });
}

criterion_group!(
    benches,
    bench_daemon_tick,
    bench_exploration,
    bench_tipi_list,
    bench_engine,
    bench_scheduler,
    bench_grid_cell,
    bench_bsp_superstep,
    bench_advance_idle,
    bench_advance_busy,
    bench_fuzz
);
criterion_main!(benches);
