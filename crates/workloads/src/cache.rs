//! Kernel cost models: from per-point arithmetic to chunks.
//!
//! Every benchmark kernel is characterized by how many instructions it
//! retires per grid point (or matrix nonzero) and how many cache lines
//! it pulls past the LLC per point. The latter comes from first
//! principles: a kernel streaming one `f64` array touches `8/64 = 1/8`
//! of a line per point; a Jacobi sweep reading one array and writing
//! another (read-for-ownership) touches two lines per eight points; a
//! CG `waxpby` streams three arrays, and so on. These are exactly the
//! ratios that put the paper's benchmarks in their Table 1 TIPI slabs.
//!
//! NUMA: the evaluation machine interleaves allocations across two
//! sockets (`numactl --interleave`); a fixed fraction of misses is
//! charged to the remote socket.

use simproc::engine::Chunk;
use simproc::perf::CostProfile;

/// Fraction of LLC misses served by the remote socket under interleaved
/// allocation. Interleaving puts half the pages remote, but the L3
/// snoop filter resolves a share of those locally; 0.3 is a
/// representative effective value.
pub const REMOTE_MISS_FRACTION: f64 = 0.3;

/// Cost model of one kernel: per-point instruction and miss rates plus
/// the pipeline/prefetch profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Instructions retired per point.
    pub instr_per_point: f64,
    /// LLC misses (TOR inserts) per point.
    pub misses_per_point: f64,
    /// Pipeline/prefetch profile (base CPI, memory-level parallelism).
    pub profile: CostProfile,
}

impl KernelCost {
    pub const fn new(instr_per_point: f64, misses_per_point: f64, cpi: f64, mlp: f64) -> Self {
        KernelCost {
            instr_per_point,
            misses_per_point,
            profile: CostProfile::new(cpi, mlp),
        }
    }

    /// The TIPI this kernel exhibits while running alone.
    pub fn tipi(&self) -> f64 {
        if self.instr_per_point <= 0.0 {
            0.0
        } else {
            self.misses_per_point / self.instr_per_point
        }
    }

    /// Materialize a chunk covering `points` grid points.
    pub fn chunk(&self, points: u64) -> Chunk {
        let instr = (points as f64 * self.instr_per_point).round() as u64;
        let misses = points as f64 * self.misses_per_point;
        let remote = (misses * REMOTE_MISS_FRACTION).round() as u64;
        let local = (misses * (1.0 - REMOTE_MISS_FRACTION)).round() as u64;
        Chunk {
            instructions: instr.max(1),
            misses_local: local,
            misses_remote: remote,
            profile: self.profile,
        }
    }

    /// A copy with the miss rate scaled by `factor` (used for phase
    /// drift: cache warm-up, level-dependent locality, …).
    pub fn scale_misses(&self, factor: f64) -> Self {
        KernelCost {
            misses_per_point: self.misses_per_point * factor,
            ..*self
        }
    }
}

/// Estimated seconds per point for a kernel at the nominal operating
/// point (CF 2.3 GHz, UF 2.2 GHz, 20-core bandwidth sharing) — used to
/// size phases to target durations. The estimate is the max of the
/// latency bound and the chip bandwidth bound, mirroring the engine's
/// roofline.
pub fn est_seconds_per_point(k: &KernelCost, n_cores: usize) -> f64 {
    let t_miss = 110.0 / 2.2e9 + 52e-9 + REMOTE_MISS_FRACTION * 30e-9;
    let compute = k.instr_per_point * k.profile.cpi / 2.3e9;
    let stall = k.misses_per_point * t_miss / k.profile.mlp;
    let t_bw = n_cores as f64 * k.misses_per_point * 64.0 / 56.0e9;
    (compute + stall).max(t_bw)
}

/// Points needed for `core_seconds` of per-core work at nominal speed.
pub fn points_for_core_seconds(k: &KernelCost, core_seconds: f64, n_cores: usize) -> u64 {
    let t = est_seconds_per_point(k, n_cores);
    ((core_seconds / t).round() as u64).max(1)
}

/// One phase of a phase-structured (work-sharing) mini-application.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// Label, for traces.
    pub name: &'static str,
    /// Kernel cost model.
    pub kernel: KernelCost,
    /// Target duration in core-seconds (wall seconds × cores busy).
    pub core_seconds: f64,
}

impl Phase {
    pub const fn new(name: &'static str, kernel: KernelCost, core_seconds: f64) -> Self {
        Phase {
            name,
            kernel,
            core_seconds,
        }
    }

    /// Materialize this phase as one statically partitioned region with
    /// `chunks_per_core` chunks per core. `core_seconds` is the total
    /// across all cores, so the wall time is `core_seconds / n_cores`.
    pub fn region(&self, n_cores: usize, chunks_per_core: usize) -> tasking::Region {
        let points = points_for_core_seconds(&self.kernel, self.core_seconds, n_cores);
        let n_chunks = (n_cores * chunks_per_core) as u64;
        let per_chunk = (points / n_chunks).max(1);
        let chunks: Vec<Chunk> = (0..n_chunks)
            .map(|_| self.kernel.chunk(per_chunk))
            .collect();
        tasking::Region::statically_partitioned(chunks, n_cores)
    }
}

/// Width of the TIPI slabs Cuttlefish quantizes into (paper §3.2).
pub const TIPI_SLAB: f64 = 0.004;

/// Slab index of a TIPI value (0.004-wide bins).
pub fn slab_of(tipi: f64) -> u32 {
    (tipi / TIPI_SLAB).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tipi_from_rates() {
        // SOR: 5 instructions/point, one line per 8 points.
        let k = KernelCost::new(5.0, 0.125, 2.0, 18.0);
        assert!((k.tipi() - 0.025).abs() < 1e-12);
        assert_eq!(slab_of(k.tipi()), 6, "0.025 sits in slab [0.024, 0.028)");
    }

    #[test]
    fn chunk_materialization_splits_remote() {
        let k = KernelCost::new(4.0, 0.26, 0.55, 12.0);
        let c = k.chunk(1_000_000);
        assert_eq!(c.instructions, 4_000_000);
        let total = c.misses_local + c.misses_remote;
        assert_eq!(total, 260_000);
        let rf = c.misses_remote as f64 / total as f64;
        assert!((rf - REMOTE_MISS_FRACTION).abs() < 1e-3);
        // The chunk's own TIPI matches the kernel's.
        assert!((c.tipi() - k.tipi()).abs() < 1e-6);
    }

    #[test]
    fn scale_misses_changes_only_miss_rate() {
        let k = KernelCost::new(4.0, 0.26, 0.55, 12.0);
        let k2 = k.scale_misses(0.5);
        assert_eq!(k2.instr_per_point, 4.0);
        assert!((k2.misses_per_point - 0.13).abs() < 1e-12);
        assert_eq!(k2.profile, k.profile);
    }

    #[test]
    fn zero_instruction_chunk_clamped_to_one() {
        let k = KernelCost::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(k.chunk(100).instructions, 1);
        assert_eq!(k.tipi(), 0.0);
    }

    #[test]
    fn slab_boundaries() {
        assert_eq!(slab_of(0.0), 0);
        assert_eq!(slab_of(0.0039), 0);
        assert_eq!(slab_of(0.004), 1);
        assert_eq!(slab_of(0.064), 16);
        assert_eq!(slab_of(0.3319), 82);
    }
}
