//! UTS — Unbalanced Tree Search (paper \[36\]), TIXXL configuration.
//!
//! UTS counts the nodes of an implicitly defined random tree whose
//! shape is wildly unbalanced — the canonical stress test for dynamic
//! load balancing. Its per-node work is a SHA-1-style hash evaluation:
//! pure register arithmetic, essentially no LLC traffic, which is why
//! Table 1 reports a TIPI range of 0–0.004 (a single slab) and why the
//! paper finds CFopt = 2.3 GHz / UFopt ≈ 1.2–1.3 GHz for it.
//!
//! The simulated workload pre-generates the task tree with a seeded
//! PRNG: each task explores a subtree chunk (millions of hash
//! evaluations), and spawns 0–4 child tasks with a skewed size
//! distribution, reproducing both the irregular DAG and the work
//! imbalance. The numeric reference in the tests is a miniature
//! geometric UTS with a splitmix-style node hash.

use crate::{Benchmark, BuiltWorkload, Scale, Style};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simproc::engine::Chunk;
use simproc::perf::CostProfile;
use tasking::{DagBuilder, TaskId};

/// Paper-reported Default execution time (Table 1).
pub const PAPER_TIME_S: f64 = 69.9;

/// Instructions per tree node (hash + bookkeeping).
pub const INSTR_PER_NODE: f64 = 30.0;

/// TIPI of the traversal: nearly compute-pure.
pub const TIPI: f64 = 0.0009;

/// Cost profile: branchy scalar hashing — CPI ~0.9, low MLP.
pub fn profile() -> CostProfile {
    CostProfile::new(0.9, 4.0)
}

/// Total instructions needed for the paper-scale run: 69.9 s × 20 cores
/// at 2.3 GHz / CPI 0.9.
fn paper_total_instructions() -> f64 {
    PAPER_TIME_S * 20.0 * 2.3e9 / 0.9
}

fn task_chunk(instr: u64) -> Chunk {
    let misses = instr as f64 * TIPI;
    let remote = (misses * crate::cache::REMOTE_MISS_FRACTION) as u64;
    let local = misses as u64 - remote.min(misses as u64);
    Chunk {
        instructions: instr,
        misses_local: local,
        misses_remote: remote,
        profile: profile(),
    }
}

/// Pre-generate the UTS task DAG: a skewed random tree of subtree-chunk
/// tasks whose total instruction count hits the scaled paper budget.
pub fn build(scale: Scale, _n_cores: usize) -> BuiltWorkload {
    let total = paper_total_instructions() * scale.0;
    let mut b = DagBuilder::default();
    let mut rng = SmallRng::seed_from_u64(0x0715_0001);

    // Frontier of (task, remaining-budget-for-subtree).
    let root_instr = 8.0e6;
    let root = b.add_task(task_chunk(root_instr as u64));
    let mut frontier: Vec<(TaskId, f64)> = vec![(root, total - root_instr)];

    while let Some((parent, budget)) = frontier.pop() {
        if budget <= 0.0 {
            continue;
        }
        // Number of children: skewed 1..=4 (geometric-ish); leaves occur
        // when the budget runs out, which the skewed splits make happen
        // at very different depths across the tree.
        let n_children = rng.gen_range(1..=4);
        let mut weights = [0.0f64; 4];
        let mut sum = 0.0;
        for w in weights.iter_mut().take(n_children) {
            *w = rng.gen_range(0.1..1.0f64).powi(2);
            sum += *w;
        }
        for w in weights.iter().take(n_children) {
            let share = budget * w / sum;
            // Each task does 4-16 M instructions of traversal itself.
            let own = rng.gen_range(4.0e6..16.0e6f64).min(share);
            if own < 1.0e6 {
                continue;
            }
            let child = b.add_task(task_chunk(own as u64));
            b.add_dep(parent, child);
            frontier.push((child, share - own));
        }
    }
    BuiltWorkload::Dag(b.build())
}

/// Table 1 row.
pub fn benchmark(scale: Scale) -> Benchmark {
    Benchmark::new(
        "UTS",
        Style::IrregularTasks,
        PAPER_TIME_S,
        (0.0, 0.004),
        move |n| build(scale, n),
    )
}

/// UTS with **online tree unfolding**: tasks are created while the
/// search runs, exactly like the real benchmark, instead of
/// pre-generating the DAG. Each simulated core owns a local stack of
/// subtree descriptors and steals from a shared overflow pool when it
/// runs dry — the self-scheduling structure of the original UTS
/// work-stealing implementation the paper notes UTS ships with.
///
/// Functionally equivalent to [`build`] for the profiler (same TIPI,
/// same aggregate work budget); exists to demonstrate that nothing in
/// the stack depends on the task graph being known up front.
#[derive(Debug)]
pub struct DynamicUts {
    /// Per-core local stacks of (seed, remaining-budget) descriptors.
    local: Vec<Vec<(u64, f64)>>,
    /// Shared overflow pool (victims push here when their stack grows).
    shared: Vec<(u64, f64)>,
    rng: SmallRng,
}

impl DynamicUts {
    /// Online UTS sized like the paper's run at `scale`.
    pub fn new(scale: Scale, n_cores: usize, seed: u64) -> Self {
        let total = paper_total_instructions() * scale.0;
        DynamicUts {
            local: vec![Vec::new(); n_cores],
            shared: vec![(seed, total)],
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Expand one descriptor: take its own work, split the rest among
    /// 0–4 children pushed back to `core`'s stack.
    fn expand(&mut self, core: usize, node_seed: u64, budget: f64) -> Chunk {
        let own = self.rng.gen_range(4.0e6..16.0e6f64).min(budget);
        let mut rest = budget - own;
        let n_children = self.rng.gen_range(1..=4usize);
        for c in 0..n_children {
            if rest < 1.0e6 {
                break;
            }
            let share = if c + 1 == n_children {
                rest
            } else {
                rest * self.rng.gen_range(0.2..0.8)
            };
            let child = (node_hash(node_seed ^ (c as u64 + 1)), share);
            // Overflow beyond a small local stack goes to the shared
            // pool where idle cores can grab it.
            if self.local[core].len() >= 8 {
                self.shared.push(child);
            } else {
                self.local[core].push(child);
            }
            rest -= share;
        }
        task_chunk(own as u64)
    }
}

impl simproc::engine::Workload for DynamicUts {
    fn next_chunk(&mut self, core: usize, _now_ns: u64) -> Option<Chunk> {
        // Expansion happens at hand-out; in-flight chunks are tracked by
        // the engine itself, so draining the stacks is the only state.
        let desc = self.local[core].pop().or_else(|| self.shared.pop())?;
        Some(self.expand(core, desc.0, desc.1))
    }

    fn is_done(&self) -> bool {
        self.shared.is_empty() && self.local.iter().all(Vec::is_empty)
    }
}

// ---------------------------------------------------------------------
// Reference numeric kernel: miniature geometric UTS.
// ---------------------------------------------------------------------

/// Splitmix64 — stands in for the SHA-1 node hash of real UTS.
pub fn node_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Count the nodes of a geometric UTS tree rooted at `id` with branching
/// factor drawn from the node hash: `P(child) = b/(b+1)` per slot, depth
/// capped at `max_depth`.
pub fn count_tree(id: u64, depth: u32, max_depth: u32, b: u32) -> u64 {
    if depth >= max_depth {
        return 1;
    }
    let h = node_hash(id);
    let mut count = 1;
    for slot in 0..b {
        // Child exists if the slot's hash bits pass a threshold that
        // shrinks with depth (geometric decay keeps the tree finite).
        let bits = (h >> (slot * 8)) & 0xff;
        let threshold = 256 * (max_depth - depth) / (max_depth + 1);
        if (bits as u32) < threshold {
            count += count_tree(node_hash(id ^ (slot as u64 + 1)), depth + 1, max_depth, b);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasking::TaskDag;

    fn dag(scale: f64) -> TaskDag {
        match build(Scale(scale), 20) {
            BuiltWorkload::Dag(d) => d,
            _ => panic!("UTS must be a DAG"),
        }
    }

    #[test]
    fn total_instructions_tracks_scale() {
        let d = dag(0.02);
        let got = d.total_instructions() as f64;
        let want = paper_total_instructions() * 0.02;
        let err = (got - want).abs() / want;
        assert!(err < 0.05, "budget error {err:.3}");
    }

    #[test]
    fn tipi_is_in_the_single_low_slab() {
        let d = dag(0.02);
        let t = d.aggregate_tipi();
        assert!((0.0..0.004).contains(&t), "UTS TIPI {t}");
    }

    #[test]
    fn tree_is_unbalanced() {
        let d = dag(0.02);
        // Measure subtree instruction totals of the root's children via
        // successor fan-out sizes as a proxy: at minimum, task sizes vary.
        let mut sizes: Vec<u64> = (0..d.len())
            .map(|i| d.chunk(TaskId(i as u32)).instructions)
            .collect();
        sizes.sort_unstable();
        let small = sizes[sizes.len() / 10];
        let large = sizes[sizes.len() * 9 / 10];
        assert!(
            large as f64 / small as f64 > 1.5,
            "task sizes should vary substantially: p10={small} p90={large}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = dag(0.01);
        let d2 = dag(0.01);
        assert_eq!(d1.len(), d2.len());
        assert_eq!(d1.total_instructions(), d2.total_instructions());
    }

    #[test]
    fn dynamic_uts_executes_full_budget() {
        use simproc::engine::Workload;
        use simproc::freq::HASWELL_2650V3;
        use simproc::SimProcessor;
        let scale = Scale(0.02);
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = DynamicUts::new(scale, p.n_cores(), 42);
        while !p.workload_drained(&wl) {
            p.step(&mut wl);
        }
        assert!(wl.is_done());
        let want = paper_total_instructions() * scale.0;
        let got = p.total_instructions();
        assert!(
            (got - want).abs() / want < 0.02,
            "dynamic unfolding must hit the same budget: {got} vs {want}"
        );
    }

    #[test]
    fn dynamic_uts_matches_pregenerated_tipi() {
        use simproc::freq::HASWELL_2650V3;
        use simproc::msr;
        use simproc::SimProcessor;
        let mut p = SimProcessor::new(HASWELL_2650V3.clone());
        let mut wl = DynamicUts::new(Scale(0.02), p.n_cores(), 42);
        while !p.workload_drained(&wl) {
            p.step(&mut wl);
        }
        let tor = (p.msr_read(msr::SIM_TOR_INSERT_MISS_LOCAL).unwrap()
            + p.msr_read(msr::SIM_TOR_INSERT_MISS_REMOTE).unwrap()) as f64;
        let tipi = tor / p.total_instructions();
        assert!(
            (0.0..0.004).contains(&tipi),
            "same single low slab as the pregenerated DAG, got {tipi}"
        );
    }

    #[test]
    fn dynamic_uts_is_deterministic() {
        use simproc::freq::HASWELL_2650V3;
        use simproc::SimProcessor;
        let run = || {
            let mut p = SimProcessor::new(HASWELL_2650V3.clone());
            let mut wl = DynamicUts::new(Scale(0.01), p.n_cores(), 5);
            while !p.workload_drained(&wl) {
                p.step(&mut wl);
            }
            (p.now_ns(), p.total_instructions())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn numeric_uts_counts_are_reproducible_and_unbalanced() {
        let a = count_tree(1, 0, 8, 4);
        let b = count_tree(1, 0, 8, 4);
        assert_eq!(a, b, "same seed, same count");
        // Different roots produce very different subtree sizes — the
        // imbalance UTS exists to create. (At moderate depth the
        // variance is large relative to the mean; deep trees average
        // out by the law of large numbers.)
        let sizes: Vec<u64> = (1..=40).map(|r| count_tree(r, 0, 8, 4)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(
            max > min.saturating_mul(3),
            "imbalance: min {min}, max {max}"
        );
    }

    #[test]
    fn node_hash_avalanches() {
        // Flipping one input bit changes about half the output bits.
        let x = 0xdead_beef_1234_5678u64;
        let mut total = 0;
        for bit in 0..64 {
            total += (node_hash(x) ^ node_hash(x ^ (1 << bit))).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&avg), "avalanche average {avg}");
    }
}
