//! AMG — algebraic multigrid solver (LLNL benchmark, paper \[32\]).
//! Configuration from Table 1: 256×256×1024 domain, 22 cycles,
//! work-sharing. The most phase-diverse benchmark of the suite: the
//! paper measures **60 distinct TIPI slabs** spanning 0.060–0.332,
//! with two frequent slabs (0.144–0.148 at 56 % and 0.148–0.152 at
//! 25 %, Table 2).
//!
//! ## Phase structure and cost model
//!
//! Each V-cycle walks a hierarchy of coarsening levels. The fine level
//! streams a structured stencil matrix (TIPI ≈ 0.146 relax /
//! ≈ 0.150 residual — the two frequent slabs). Galerkin-coarsened
//! operators grow denser and lose structure with depth, so misses per
//! nonzero climb steeply (irregular gather access, TIPI up to ~0.33 at
//! level 5) while the level's share of runtime shrinks ~4× per level.
//! The coarsest level fits in the LLC (TIPI ≈ 0.065). Per-cycle cache
//! drift perturbs every level's miss rate a few percent, which is what
//! spreads samples over the paper's ~60 slabs.

use crate::cache::{KernelCost, Phase};
use crate::{Benchmark, BuiltWorkload, Scale, Style};
use tasking::Region;

/// Paper execution time (Table 1).
pub const PAPER_TIME_S: f64 = 63.7;
/// Paper cycle count.
pub const PAPER_ITERS: usize = 22;
const CORES: f64 = 20.0;

/// Per-level description: (base TIPI, share of cycle core-seconds,
/// instructions per nonzero, CPI, MLP).
const LEVELS: &[(f64, f64, f64, f64, f64)] = &[
    (0.1460, 0.52, 3.3, 0.7, 8.0),  // level 0 relax (frequent slab #1)
    (0.1498, 0.24, 3.3, 0.7, 8.0),  // level 0 residual (frequent slab #2)
    (0.172, 0.12, 3.6, 0.75, 7.0),  // level 1
    (0.210, 0.06, 3.8, 0.8, 6.0),   // level 2
    (0.258, 0.03, 4.0, 0.8, 5.0),   // level 3
    (0.298, 0.015, 4.2, 0.85, 5.0), // level 4
    (0.326, 0.008, 4.4, 0.85, 4.0), // level 5 (range top)
    (0.065, 0.007, 3.0, 0.7, 10.0), // coarsest: LLC-resident
];

/// Deterministic per-cycle drift factor for `(cycle, level)` — the
/// cache-state variation that spreads AMG's samples across ~60 slabs.
/// The two fine-level phases drift only ±0.8 % (they must stay in
/// their Table 2 slabs); coarser levels drift ±4 %.
pub fn drift(cycle: usize, level: usize) -> f64 {
    // Low-discrepancy walk (golden-ratio rotation), deterministic.
    let t = ((cycle * 131 + level * 47) as f64 * 0.618_033_988_749_895).fract();
    let amp = if level <= 1 { 0.016 } else { 0.08 };
    1.0 + (t - 0.5) * amp
}

/// Kernel for one level in one cycle.
pub fn level_kernel(cycle: usize, level: usize) -> KernelCost {
    let (tipi, _, instr, cpi, mlp) = LEVELS[level];
    let t = tipi * drift(cycle, level);
    KernelCost::new(instr, t * instr, cpi, mlp)
}

/// Setup-phase kernels (coarsening + Galerkin products).
pub fn setup_kernel(i: usize) -> KernelCost {
    let tipi = [0.082, 0.104, 0.126][i % 3];
    KernelCost::new(4.0, tipi * 4.0, 0.8, 7.0)
}

/// Build the work-sharing workload.
pub fn build(scale: Scale, n_cores: usize) -> BuiltWorkload {
    let cycles = scale.iters(PAPER_ITERS);
    let total_core_s = PAPER_TIME_S * CORES * scale.0;
    let setup_core_s = total_core_s * 0.06;
    let cycle_core_s = (total_core_s - setup_core_s) / cycles as f64;

    let mut regions: Vec<Region> = Vec::new();
    for i in 0..3 {
        let ph = Phase::new("amg.setup", setup_kernel(i), setup_core_s / 3.0);
        regions.push(ph.region(n_cores, 6));
    }
    for cycle in 0..cycles {
        for (level, &(_, share, ..)) in LEVELS.iter().enumerate() {
            let ph = Phase::new(
                "amg.level",
                level_kernel(cycle, level),
                cycle_core_s * share,
            );
            regions.push(ph.region(n_cores, 4));
        }
    }
    BuiltWorkload::Regions(regions)
}

/// Table 1 row.
pub fn benchmark(scale: Scale) -> Benchmark {
    Benchmark::new(
        "AMG",
        Style::WorkSharing,
        PAPER_TIME_S,
        (0.060, 0.332),
        move |n| build(scale, n),
    )
}

// ---------------------------------------------------------------------
// Reference numeric kernel: a two-grid V-cycle on the 1-D Laplacian —
// the algorithmic skeleton the cost model abstracts.
// ---------------------------------------------------------------------

/// Damped-Jacobi relaxation for `A = tridiag(−1, 2, −1)`.
pub fn relax(x: &mut [f64], rhs: &[f64], sweeps: usize) {
    let n = x.len();
    let omega = 2.0 / 3.0;
    let mut next = vec![0.0; n];
    for _ in 0..sweeps {
        for i in 0..n {
            let mut sum = rhs[i];
            if i > 0 {
                sum += x[i - 1];
            }
            if i + 1 < n {
                sum += x[i + 1];
            }
            next[i] = (1.0 - omega) * x[i] + omega * sum / 2.0;
        }
        x.copy_from_slice(&next);
    }
}

fn residual(x: &[f64], rhs: &[f64], r: &mut [f64]) {
    let n = x.len();
    for i in 0..n {
        let mut ax = 2.0 * x[i];
        if i > 0 {
            ax -= x[i - 1];
        }
        if i + 1 < n {
            ax -= x[i + 1];
        }
        r[i] = rhs[i] - ax;
    }
}

/// One two-grid V-cycle (full-weighting restriction, linear
/// interpolation, exact-ish coarse solve via many relaxations).
pub fn v_cycle(x: &mut [f64], rhs: &[f64]) {
    let n = x.len();
    relax(x, rhs, 2);
    let mut r = vec![0.0; n];
    residual(x, rhs, &mut r);
    // Restrict (n odd: coarse points at even indices).
    let nc = n / 2;
    let mut rc = vec![0.0; nc];
    for (i, rci) in rc.iter_mut().enumerate() {
        let f = 2 * i + 1;
        *rci = 0.25 * r[f - 1] + 0.5 * r[f] + 0.25 * r[f + 1];
    }
    // Exact coarse solve (Thomas algorithm). With full weighting
    // R = ¼[1 2 1] and linear interpolation P = 2Rᵀ, expanding R·A·P
    // for A = tridiag(−1,2,−1) gives the Galerkin coarse operator
    // ¼·tridiag(−1, 2, −1); so solve tridiag(−1,2,−1)·e = 4·r_c.
    let rhs4: Vec<f64> = rc.iter().map(|v| 4.0 * v).collect();
    let ec = thomas_tridiag(&rhs4);
    // Interpolate and correct.
    for (i, &e) in ec.iter().enumerate() {
        let f = 2 * i + 1;
        x[f] += e;
        x[f - 1] += 0.5 * e;
        if f + 1 < n {
            x[f + 1] += 0.5 * e;
        }
    }
    relax(x, rhs, 2);
}

/// Direct solver for `tridiag(−1, 2, −1)·x = rhs` (Thomas algorithm).
pub fn thomas_tridiag(rhs: &[f64]) -> Vec<f64> {
    let n = rhs.len();
    let mut c = vec![0.0; n]; // modified super-diagonal
    let mut d = rhs.to_vec(); // modified rhs
    c[0] = -1.0 / 2.0;
    d[0] /= 2.0;
    for i in 1..n {
        let m = 2.0 + c[i - 1];
        c[i] = -1.0 / m;
        d[i] = (d[i] + d[i - 1]) / m;
    }
    let mut x = d;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c[i] * next;
    }
    x
}

#[cfg(test)]
fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::slab_of;

    #[test]
    fn frequent_slabs_match_table2() {
        // Level-0 relax and residual must stay in their Table 2 slabs
        // across all drift values.
        let mut relax_slabs = std::collections::BTreeSet::new();
        let mut resid_slabs = std::collections::BTreeSet::new();
        for cycle in 0..22 {
            relax_slabs.insert(slab_of(level_kernel(cycle, 0).tipi()));
            resid_slabs.insert(slab_of(level_kernel(cycle, 1).tipi()));
        }
        assert!(
            relax_slabs.contains(&36),
            "0.144-0.148 present: {relax_slabs:?}"
        );
        assert!(
            resid_slabs.contains(&37),
            "0.148-0.152 present: {resid_slabs:?}"
        );
    }

    #[test]
    fn level_tipis_span_paper_range() {
        let min = level_kernel(0, 7).tipi();
        let max = (0..22)
            .map(|c| level_kernel(c, 6).tipi())
            .fold(0.0, f64::max);
        assert!(min < 0.08, "coarse level near range bottom, got {min}");
        assert!(
            max > 0.31 && max < 0.34,
            "level 5 near range top, got {max}"
        );
    }

    #[test]
    fn drift_spreads_many_slabs() {
        let mut slabs = std::collections::BTreeSet::new();
        for cycle in 0..22 {
            for level in 0..LEVELS.len() {
                slabs.insert(slab_of(level_kernel(cycle, level).tipi()));
            }
        }
        assert!(
            (25..=70).contains(&slabs.len()),
            "AMG should produce tens of distinct slabs, got {}",
            slabs.len()
        );
    }

    #[test]
    fn level_shares_sum_to_one() {
        let sum: f64 = LEVELS.iter().map(|l| l.1).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
    }

    #[test]
    fn build_produces_regions() {
        match build(Scale(0.2), 4) {
            BuiltWorkload::Regions(r) => {
                let cycles = Scale(0.2).iters(PAPER_ITERS);
                assert_eq!(r.len(), 3 + cycles * LEVELS.len());
            }
            _ => panic!("AMG is work-sharing"),
        }
    }

    #[test]
    fn numeric_vcycle_beats_plain_relaxation() {
        // Multigrid's whole point: a V-cycle reduces smooth error far
        // faster than the same number of fine-grid relaxations.
        let n = 127;
        let rhs = vec![0.0; n];
        let init: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::PI * (i + 1) as f64 / (n + 1) as f64).sin())
            .collect();

        let mut x_mg = init.clone();
        v_cycle(&mut x_mg, &rhs);

        let mut x_relax = init.clone();
        relax(&mut x_relax, &rhs, 4); // same smoothing work, no coarse grid

        let e_mg = norm(&x_mg);
        let e_relax = norm(&x_relax);
        assert!(
            e_mg < e_relax * 0.5,
            "V-cycle error {e_mg:.2e} should beat relaxation {e_relax:.2e}"
        );
    }

    #[test]
    fn numeric_vcycle_converges_iteratively() {
        let n = 63;
        let rhs: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut x = vec![0.0; n];
        let mut r = vec![0.0; n];
        residual(&x, &rhs, &mut r);
        let r0 = norm(&r);
        for _ in 0..30 {
            v_cycle(&mut x, &rhs);
        }
        residual(&x, &rhs, &mut r);
        assert!(
            norm(&r) < r0 * 1e-3,
            "30 V-cycles should shrink the residual 1000x, got {} from {r0}",
            norm(&r)
        );
    }
}
