//! # workloads — the ten benchmarks of the Cuttlefish evaluation
//!
//! Table 1 of the paper evaluates Cuttlefish on ten OpenMP
//! benchmarks/mini-applications (plus HClib ports of six):
//!
//! | Benchmark | Style | TIPI range | Distinct slabs |
//! |---|---|---|---|
//! | UTS (TIXXL) | irregular tasks | 0–0.004 | 1 |
//! | SOR-irt / -rt / -ws (32K², 200 it) | tasks / tasks / work-sharing | 0.012–0.028 | 1 / 1 / 3 |
//! | Heat-irt / -rt / -ws (32K², 200 it) | tasks / tasks / work-sharing | 0.012–0.076 | 4 / 3 / 11 |
//! | MiniFE (256×512×512, 200) | work-sharing | 0.068–0.152 | 16 |
//! | HPCCG (256×256×1024, 149) | work-sharing | 0.060–0.148 | 17 |
//! | AMG (256×256×1024, 22) | work-sharing | 0.060–0.332 | 60 |
//!
//! Each benchmark here is a *generator*: it derives per-task
//! `(instructions, LLC misses)` counts from the kernel's actual
//! arithmetic — bytes streamed per grid point, instructions per point,
//! stencil reuse in the last-level cache — and emits either a
//! [`tasking::TaskDag`] (tasking styles) or a region list (work-sharing
//! style). The simulated Cuttlefish runtime sees exactly what the real
//! one sees: MSR counter streams. Memory contents are never simulated;
//! miniature *numeric* versions of the kernels live in each module's
//! tests to pin down the per-point arithmetic the cost models use.
//!
//! The `-irt`/`-rt` task variants use the regular/irregular execution
//! DAGs of the paper's Figure 1 (after Chen et al.), built by [`dag`].

pub mod amg;
pub mod cache;
pub mod dag;
pub mod heat;
pub mod hpccg;
pub mod minife;
pub mod sor;
pub mod spec;
pub mod uts;

pub use spec::{ChunkPhase, SyntheticSpec, SyntheticWorkload, WorkloadSpec};

use simproc::engine::Workload;
use tasking::{TaskDag, WorkSharingScheduler, WorkStealingScheduler};

/// Concurrency decomposition style (Table 1's "Parallelism Style").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Dynamic task parallelism, irregular execution DAG.
    IrregularTasks,
    /// Dynamic task parallelism, regular execution DAG.
    RegularTasks,
    /// Static loop partitioning with barriers.
    WorkSharing,
}

impl Style {
    /// Table-style short name.
    pub fn suffix(self) -> &'static str {
        match self {
            Style::IrregularTasks => "irt",
            Style::RegularTasks => "rt",
            Style::WorkSharing => "ws",
        }
    }
}

/// Parallel programming model executing the benchmark (the paper's
/// obliviousness axis: OpenMP vs HClib).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgModel {
    /// OpenMP: work-sharing regions for `-ws`, a central task pool for
    /// task pragmas.
    OpenMp,
    /// HClib: async–finish over a per-worker work-stealing runtime (all
    /// styles expressed as task DAGs).
    HClib,
}

/// Global scale factor for experiment duration. `1.0` reproduces the
/// paper's full-length runs (~60–80 virtual seconds); smaller values
/// shrink iteration counts proportionally for quick tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// The paper's full-length configuration.
    pub fn paper() -> Self {
        Scale(1.0)
    }

    /// Scaled iteration count, never below 1.
    pub fn iters(&self, paper_iters: usize) -> usize {
        ((paper_iters as f64 * self.0).round() as usize).max(1)
    }
}

/// The schedulable form of a benchmark: either a task DAG or a region
/// sequence.
pub enum BuiltWorkload {
    Dag(TaskDag),
    Regions(Vec<tasking::Region>),
}

impl BuiltWorkload {
    /// Wrap in the scheduler the programming model dictates.
    ///
    /// * OpenMP task pragmas → central shared task queue.
    /// * OpenMP work-sharing → static regions with barriers.
    /// * HClib (any style) → per-worker deques with random stealing.
    pub fn into_workload(self, model: ProgModel, n_cores: usize, seed: u64) -> Box<dyn Workload> {
        match (self, model) {
            (BuiltWorkload::Dag(dag), ProgModel::HClib) => {
                Box::new(WorkStealingScheduler::new(dag, n_cores, seed))
            }
            (BuiltWorkload::Dag(dag), ProgModel::OpenMp) => {
                Box::new(tasking::steal::CentralQueueScheduler::new(dag, n_cores))
            }
            (BuiltWorkload::Regions(regions), ProgModel::OpenMp) => {
                Box::new(WorkSharingScheduler::new(regions, n_cores))
            }
            (BuiltWorkload::Regions(regions), ProgModel::HClib) => {
                // HClib ports of the `-ws` variants express each region
                // as a flat forasync: a DAG of independent tasks with
                // barriers between regions.
                let mut b = TaskDag::builder();
                let mut prev: Vec<tasking::TaskId> = Vec::new();
                for region in regions {
                    let cur: Vec<tasking::TaskId> = region
                        .into_chunks()
                        .into_iter()
                        .map(|c| b.add_task(c))
                        .collect();
                    b.barrier(&prev, &cur);
                    prev = cur;
                }
                Box::new(WorkStealingScheduler::new(b.build(), n_cores, seed))
            }
        }
    }
}

/// A benchmark definition: everything the harness needs to run and
/// label one Table 1 row.
pub struct Benchmark {
    /// Display name, e.g. `"Heat-irt"`.
    pub name: String,
    /// Concurrency style.
    pub style: Style,
    /// Paper-reported Default execution time, seconds (Table 1) — used
    /// by calibration tests.
    pub paper_time_s: f64,
    /// Paper-reported TIPI range (Table 1).
    pub paper_tipi_range: (f64, f64),
    builder: Box<dyn Fn(usize) -> BuiltWorkload + Send + Sync>,
}

impl Benchmark {
    /// Construct; `builder` maps `n_cores` to the schedulable form.
    pub fn new(
        name: impl Into<String>,
        style: Style,
        paper_time_s: f64,
        paper_tipi_range: (f64, f64),
        builder: impl Fn(usize) -> BuiltWorkload + Send + Sync + 'static,
    ) -> Self {
        Benchmark {
            name: name.into(),
            style,
            paper_time_s,
            paper_tipi_range,
            builder: Box::new(builder),
        }
    }

    /// Build the schedulable form for `n_cores`.
    pub fn build(&self, n_cores: usize) -> BuiltWorkload {
        (self.builder)(n_cores)
    }

    /// Build and wrap in the model-appropriate scheduler.
    pub fn instantiate(&self, model: ProgModel, n_cores: usize, seed: u64) -> Box<dyn Workload> {
        self.build(n_cores).into_workload(model, n_cores, seed)
    }
}

/// The ten OpenMP benchmarks of Table 1, in table order.
pub fn openmp_suite(scale: Scale) -> Vec<Benchmark> {
    vec![
        uts::benchmark(scale),
        sor::benchmark(Style::IrregularTasks, scale),
        sor::benchmark(Style::RegularTasks, scale),
        sor::benchmark(Style::WorkSharing, scale),
        heat::benchmark(Style::IrregularTasks, scale),
        heat::benchmark(Style::RegularTasks, scale),
        heat::benchmark(Style::WorkSharing, scale),
        minife::benchmark(scale),
        hpccg::benchmark(scale),
        amg::benchmark(scale),
    ]
}

/// The six HClib ports of Section 5.2 (SOR and Heat variants; UTS,
/// MiniFE, HPCCG and AMG were not ported in the paper either).
pub fn hclib_suite(scale: Scale) -> Vec<Benchmark> {
    vec![
        sor::benchmark(Style::IrregularTasks, scale),
        sor::benchmark(Style::RegularTasks, scale),
        sor::benchmark(Style::WorkSharing, scale),
        heat::benchmark(Style::IrregularTasks, scale),
        heat::benchmark(Style::RegularTasks, scale),
        heat::benchmark(Style::WorkSharing, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(openmp_suite(Scale(0.05)).len(), 10);
        assert_eq!(hclib_suite(Scale(0.05)).len(), 6);
    }

    #[test]
    fn scale_iters_never_zero() {
        assert_eq!(Scale(0.001).iters(200), 1);
        assert_eq!(Scale::paper().iters(200), 200);
        assert_eq!(Scale(0.5).iters(149), 75);
    }

    #[test]
    fn style_suffixes() {
        assert_eq!(Style::IrregularTasks.suffix(), "irt");
        assert_eq!(Style::RegularTasks.suffix(), "rt");
        assert_eq!(Style::WorkSharing.suffix(), "ws");
    }
}
