//! MiniFE — implicit finite-element mini-application (Mantevo, paper
//! \[1, 11\]). Configuration from Table 1: 256×512×512 brick, 200 CG
//! iterations, work-sharing.
//!
//! ## Phase structure and cost model
//!
//! MiniFE assembles a sparse linear system from hexahedral elements and
//! solves it with unpreconditioned CG. Each CG iteration is a fixed
//! sequence of memory-streaming kernels, each with a first-principles
//! TIPI:
//!
//! * **fused vector updates** (`waxpby`-style, three `f64` streams at
//!   ~3.3 instructions/point): 3 lines per 8 points → TIPI
//!   `0.375/3.3 ≈ 0.114` — the paper's dominant 0.112–0.116 slab (76 %
//!   of samples, Table 2);
//! * **SpMV** (27-point stencil CSR: 12 B of matrix data per nonzero
//!   plus imperfect `x` reuse): TIPI ≈ 0.148 — the top of the paper's
//!   range;
//! * **dot products** (two streams, reduction): TIPI ≈ 0.071 — the
//!   bottom of the range (0.068).
//!
//! The assembly prologue walks intermediate miss rates as structures
//! grow and caches churn, which together with phase transitions yields
//! the ~16 distinct slabs of Table 1. Phase durations are calibrated to
//! the paper's sample shares (the timeline is the reproduction target,
//! not MiniFE's exact operation count).

use crate::cache::{KernelCost, Phase};
use crate::{Benchmark, BuiltWorkload, Scale, Style};
use tasking::Region;

/// Paper execution time (Table 1).
pub const PAPER_TIME_S: f64 = 78.5;
/// Paper CG iteration count.
pub const PAPER_ITERS: usize = 200;
/// Cores of the evaluation machine (used for core-second budgets).
const CORES: f64 = 20.0;

/// Fused vector-update kernel: TIPI 0.114.
pub fn waxpby_kernel() -> KernelCost {
    KernelCost::new(3.3, 0.376, 0.55, 14.0)
}

/// 27-point SpMV kernel: TIPI ≈ 0.1485.
pub fn spmv_kernel() -> KernelCost {
    KernelCost::new(3.3, 0.49, 0.7, 8.0)
}

/// Dot-product kernel: TIPI ≈ 0.0714.
pub fn dot_kernel() -> KernelCost {
    KernelCost::new(3.5, 0.25, 0.7, 14.0)
}

/// Assembly-prologue kernel for step `i` of `n`: miss rate climbs as
/// the matrix structure grows past the LLC.
pub fn assembly_kernel(i: usize, n: usize) -> KernelCost {
    let t = if n <= 1 {
        0.0
    } else {
        i as f64 / (n - 1) as f64
    };
    let tipi = 0.072 + t * 0.072; // 0.072 → 0.144
    let instr = 4.0;
    KernelCost::new(instr, tipi * instr, 0.8, 9.0)
}

/// Per-iteration phases: (kernel, share of the per-iteration budget).
fn iteration_phases(core_s: f64) -> Vec<Phase> {
    vec![
        Phase::new("minife.waxpby", waxpby_kernel(), core_s * 0.76),
        Phase::new("minife.spmv", spmv_kernel(), core_s * 0.12),
        Phase::new("minife.dot", dot_kernel(), core_s * 0.12),
    ]
}

/// Build the work-sharing workload.
pub fn build(scale: Scale, n_cores: usize) -> BuiltWorkload {
    let iters = scale.iters(PAPER_ITERS);
    let total_core_s = PAPER_TIME_S * CORES * scale.0;
    let assembly_core_s = total_core_s * 0.076;
    let iter_core_s = (total_core_s - assembly_core_s) / iters as f64;

    let mut regions: Vec<Region> = Vec::new();
    let n_assembly = 20.min(iters * 2).max(4);
    for i in 0..n_assembly {
        let k = assembly_kernel(i, n_assembly);
        let ph = Phase::new("minife.assembly", k, assembly_core_s / n_assembly as f64);
        regions.push(ph.region(n_cores, 6));
    }
    for _ in 0..iters {
        for ph in iteration_phases(iter_core_s) {
            regions.push(ph.region(n_cores, 6));
        }
    }
    BuiltWorkload::Regions(regions)
}

/// Table 1 row.
pub fn benchmark(scale: Scale) -> Benchmark {
    Benchmark::new(
        "MiniFE",
        Style::WorkSharing,
        PAPER_TIME_S,
        (0.068, 0.152),
        move |n| build(scale, n),
    )
}

// ---------------------------------------------------------------------
// Reference numeric kernel: CG on a small SPD system (1-D Laplacian),
// the algorithm MiniFE's solve phase runs.
// ---------------------------------------------------------------------

/// Multiply the tridiagonal 1-D Laplacian `[−1, 2, −1]` into `x`.
pub fn laplacian_spmv(x: &[f64], y: &mut [f64]) {
    let n = x.len();
    for i in 0..n {
        let mut v = 2.0 * x[i];
        if i > 0 {
            v -= x[i - 1];
        }
        if i + 1 < n {
            v -= x[i + 1];
        }
        y[i] = v;
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Unpreconditioned CG for the 1-D Laplacian; returns (solution,
/// iterations used).
pub fn conjugate_gradient(rhs: &[f64], max_iters: usize, tol: f64) -> (Vec<f64>, usize) {
    let n = rhs.len();
    let mut x = vec![0.0; n];
    let mut r = rhs.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot(&r, &r);
    for it in 0..max_iters {
        if rr.sqrt() < tol {
            return (x, it);
        }
        laplacian_spmv(&p, &mut ap);
        let alpha = rr / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    (x, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::slab_of;

    #[test]
    fn kernel_tipis_hit_paper_slabs() {
        assert_eq!(
            slab_of(waxpby_kernel().tipi()),
            28,
            "waxpby in [0.112,0.116)"
        );
        assert_eq!(slab_of(spmv_kernel().tipi()), 37, "spmv in [0.148,0.152)");
        assert_eq!(slab_of(dot_kernel().tipi()), 17, "dot in [0.068,0.072)");
    }

    #[test]
    fn assembly_walks_intermediate_slabs() {
        let mut slabs = std::collections::BTreeSet::new();
        for i in 0..20 {
            slabs.insert(slab_of(assembly_kernel(i, 20).tipi()));
        }
        assert!(
            slabs.len() >= 8,
            "assembly should span many slabs, got {}",
            slabs.len()
        );
    }

    #[test]
    fn phase_shares_match_table2_frequency() {
        let phases = iteration_phases(10.0);
        let total: f64 = phases.iter().map(|p| p.core_seconds).sum();
        let waxpby = phases[0].core_seconds / total;
        assert!((waxpby - 0.76).abs() < 1e-9);
    }

    #[test]
    fn build_produces_regions() {
        match build(Scale(0.02), 4) {
            BuiltWorkload::Regions(r) => {
                let iters = Scale(0.02).iters(PAPER_ITERS);
                assert!(r.len() >= iters * 3, "3 phases per iteration plus assembly");
            }
            _ => panic!("MiniFE is work-sharing"),
        }
    }

    #[test]
    fn numeric_cg_solves_laplacian() {
        let n = 64;
        let rhs = vec![1.0; n];
        let (x, iters) = conjugate_gradient(&rhs, 200, 1e-10);
        assert!(iters < 200, "CG should converge, used {iters}");
        // Verify A·x = rhs.
        let mut ax = vec![0.0; n];
        laplacian_spmv(&x, &mut ax);
        for i in 0..n {
            assert!(
                (ax[i] - rhs[i]).abs() < 1e-6,
                "residual at {i}: {}",
                ax[i] - rhs[i]
            );
        }
    }

    #[test]
    fn numeric_cg_exact_in_n_iterations() {
        // CG on an n×n SPD system converges in at most n steps (exact
        // arithmetic); with rounding, well under 2n.
        let n = 32;
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let (_, iters) = conjugate_gradient(&rhs, 4 * n, 1e-9);
        assert!(iters <= 2 * n, "used {iters}");
    }
}
