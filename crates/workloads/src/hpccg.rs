//! HPCCG — High Performance Computing Conjugate Gradients (Mantevo,
//! paper \[1, 11\]). Configuration from Table 1: 256×256×1024 domain,
//! 149 CG iterations, work-sharing.
//!
//! ## Phase structure and cost model
//!
//! HPCCG is a leaner CG than MiniFE: the 27-point SpMV dominates. With
//! HPCCG's row-major band structure the matrix stream costs ~12 B per
//! nonzero and `x` enjoys better reuse than MiniFE's unstructured
//! assembly, landing SpMV at TIPI ≈ 0.122 — the paper's dominant
//! 0.120–0.124 slab (76 % of samples, Table 2). Dot products
//! (TIPI ≈ 0.061, drifting with vector cache residency) give the
//! bottom of the range (0.060) and a periodic residual-recomputation
//! phase (TIPI ≈ 0.146) the top (0.148). Dot/waxpby drift across
//! iterations walks enough bins for the ~17 distinct slabs of Table 1.

use crate::cache::{KernelCost, Phase};
use crate::{Benchmark, BuiltWorkload, Scale, Style};
use tasking::Region;

/// Paper execution time (Table 1).
pub const PAPER_TIME_S: f64 = 60.0;
/// Paper CG iteration count.
pub const PAPER_ITERS: usize = 149;
const CORES: f64 = 20.0;

/// Banded 27-point SpMV: TIPI ≈ 0.122.
pub fn spmv_kernel() -> KernelCost {
    KernelCost::new(3.2, 0.39, 0.7, 9.0)
}

/// Dot-product kernel for iteration `iter`: residency drift cycles the
/// TIPI through [0.060, 0.072).
pub fn dot_kernel(iter: usize) -> KernelCost {
    let t = (iter % 4) as f64 / 4.0;
    let tipi = 0.0605 + t * 0.011;
    KernelCost::new(3.5, tipi * 3.5, 0.7, 14.0)
}

/// Vector-update kernel for iteration `iter`: TIPI in [0.110, 0.118).
pub fn waxpby_kernel(iter: usize) -> KernelCost {
    let t = (iter % 3) as f64 / 3.0;
    let tipi = 0.111 + t * 0.006;
    KernelCost::new(3.3, tipi * 3.3, 0.55, 14.0)
}

/// Periodic residual recomputation: TIPI ≈ 0.146 (the range top).
pub fn residual_kernel() -> KernelCost {
    KernelCost::new(3.3, 0.482, 0.7, 8.0)
}

/// Structure-generation prologue kernels.
pub fn prologue_kernel(i: usize) -> KernelCost {
    let tipi = [0.090, 0.102][i % 2];
    KernelCost::new(4.0, tipi * 4.0, 0.8, 9.0)
}

/// Build the work-sharing workload.
pub fn build(scale: Scale, n_cores: usize) -> BuiltWorkload {
    let iters = scale.iters(PAPER_ITERS);
    let total_core_s = PAPER_TIME_S * CORES * scale.0;
    let prologue_core_s = total_core_s * 0.02;
    let iter_core_s = (total_core_s - prologue_core_s) / iters as f64;

    let mut regions: Vec<Region> = Vec::new();
    for i in 0..2 {
        let ph = Phase::new("hpccg.gen", prologue_kernel(i), prologue_core_s / 2.0);
        regions.push(ph.region(n_cores, 6));
    }
    for iter in 0..iters {
        regions
            .push(Phase::new("hpccg.spmv", spmv_kernel(), iter_core_s * 0.76).region(n_cores, 6));
        regions
            .push(Phase::new("hpccg.dot", dot_kernel(iter), iter_core_s * 0.12).region(n_cores, 6));
        regions.push(
            Phase::new("hpccg.waxpby", waxpby_kernel(iter), iter_core_s * 0.12).region(n_cores, 6),
        );
        if iter % 10 == 9 {
            regions.push(
                Phase::new("hpccg.residual", residual_kernel(), iter_core_s * 0.08)
                    .region(n_cores, 6),
            );
        }
    }
    BuiltWorkload::Regions(regions)
}

/// Table 1 row.
pub fn benchmark(scale: Scale) -> Benchmark {
    Benchmark::new(
        "HPCCG",
        Style::WorkSharing,
        PAPER_TIME_S,
        (0.060, 0.148),
        move |n| build(scale, n),
    )
}

// ---------------------------------------------------------------------
// Reference numeric kernel: banded 27-point SpMV on a small 3-D grid —
// the operation the cost model abstracts.
// ---------------------------------------------------------------------

/// y = A·x for the 27-point stencil matrix on an `nx×ny×nz` grid with
/// diagonal 26 and off-diagonals −1 (HPCCG's generate_matrix).
pub fn stencil27_spmv(x: &[f64], y: &mut [f64], nx: usize, ny: usize, nz: usize) {
    let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let mut acc = 27.0 * x[idx(i, j, k)];
                for dk in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for di in -1i64..=1 {
                            if di == 0 && dj == 0 && dk == 0 {
                                continue;
                            }
                            let (ii, jj, kk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                            if ii < 0
                                || jj < 0
                                || kk < 0
                                || ii >= nx as i64
                                || jj >= ny as i64
                                || kk >= nz as i64
                            {
                                continue;
                            }
                            acc -= x[idx(ii as usize, jj as usize, kk as usize)];
                        }
                    }
                }
                y[idx(i, j, k)] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::slab_of;

    #[test]
    fn spmv_tipi_in_dominant_slab() {
        let t = spmv_kernel().tipi();
        assert!((0.120..0.124).contains(&t), "spmv TIPI {t}");
        assert_eq!(slab_of(t), 30);
    }

    #[test]
    fn dot_drift_covers_range_bottom() {
        let mut min = f64::INFINITY;
        let mut slabs = std::collections::BTreeSet::new();
        for iter in 0..8 {
            let t = dot_kernel(iter).tipi();
            min = min.min(t);
            slabs.insert(slab_of(t));
        }
        assert!((0.060..0.062).contains(&min), "range bottom {min}");
        assert!(slabs.len() >= 2);
    }

    #[test]
    fn residual_covers_range_top() {
        let t = residual_kernel().tipi();
        assert!((0.144..0.148).contains(&t), "residual TIPI {t}");
    }

    #[test]
    fn build_produces_expected_region_count() {
        let iters = Scale(0.1).iters(PAPER_ITERS);
        match build(Scale(0.1), 4) {
            BuiltWorkload::Regions(r) => {
                // 2 prologue + 3/iter + every-10th residual.
                let expect = 2 + iters * 3 + iters / 10;
                assert_eq!(r.len(), expect);
            }
            _ => panic!("HPCCG is work-sharing"),
        }
    }

    #[test]
    fn numeric_spmv_constant_vector_nulls_interior() {
        // For x ≡ 1, interior rows sum 27 − 26 neighbours... the 27-point
        // stencil row sums to 27 − 26 = 1 at full interior.
        let (nx, ny, nz) = (6, 6, 6);
        let x = vec![1.0; nx * ny * nz];
        let mut y = vec![0.0; nx * ny * nz];
        stencil27_spmv(&x, &mut y, nx, ny, nz);
        let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
        assert!((y[idx(3, 3, 3)] - 1.0).abs() < 1e-12, "interior row sum");
        // Corner rows have only 7 neighbours: 27 − 7 = 20.
        assert!((y[idx(0, 0, 0)] - 20.0).abs() < 1e-12, "corner row sum");
    }

    #[test]
    fn numeric_spmv_is_symmetric_operator() {
        // ⟨Ax, y⟩ = ⟨x, Ay⟩ for the symmetric stencil.
        let (nx, ny, nz) = (5, 4, 3);
        let n = nx * ny * nz;
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 17) % 7) as f64 - 3.0).collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        stencil27_spmv(&x, &mut ax, nx, ny, nz);
        stencil27_spmv(&y, &mut ay, nx, ny, nz);
        let d1: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let d2: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
        assert!((d1 - d2).abs() < 1e-9 * d1.abs().max(1.0));
    }
}
