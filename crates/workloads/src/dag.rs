//! Regular and irregular execution-DAG construction (paper Figure 1).
//!
//! The paper converts the loop-level parallelism of Heat and SOR into
//! task parallelism after Chen et al. [ICS'14]: a spawn tree whose
//! leaves are the loop blocks. The *regular* variant uses a uniform
//! interior degree; the *irregular* variant mixes degrees three and
//! five (the grey/black nodes of Figure 1), producing an unbalanced
//! spawn structure that exercises dynamic load balancing.
//!
//! Interior nodes are real (small) tasks — the spawning code itself —
//! so a parent is scheduled before any of its children, exactly like an
//! OpenMP `task` or HClib `async` that spawns further tasks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simproc::engine::Chunk;
use simproc::perf::CostProfile;
use tasking::{DagBuilder, TaskId};

/// Cost of an interior spawn node: a few tens of microseconds of
/// runtime bookkeeping, negligible misses.
pub fn spawn_node_chunk() -> Chunk {
    Chunk::new(40_000, 30, 10).with_profile(CostProfile::new(1.2, 2.0))
}

/// Degree sequence policy for the spawn tree.
#[derive(Debug, Clone, Copy)]
pub enum TreeShape {
    /// Uniform interior degree (regular DAG, Fig. 1 right).
    Regular(usize),
    /// Random degrees in {3, 5} (irregular DAG, Fig. 1 left).
    Irregular,
}

/// Build a spawn tree over `leaves` (already added to `b`), returning
/// the root task. Parents precede children; leaves hang off the last
/// interior level.
pub fn spawn_tree(
    b: &mut DagBuilder,
    leaves: &[TaskId],
    shape: TreeShape,
    rng: &mut SmallRng,
) -> TaskId {
    assert!(!leaves.is_empty(), "spawn tree needs at least one leaf");
    build_subtree(b, leaves, shape, rng)
}

fn pick_degree(shape: TreeShape, rng: &mut SmallRng) -> usize {
    match shape {
        TreeShape::Regular(d) => d.max(2),
        TreeShape::Irregular => {
            if rng.gen_bool(0.5) {
                3
            } else {
                5
            }
        }
    }
}

fn build_subtree(
    b: &mut DagBuilder,
    leaves: &[TaskId],
    shape: TreeShape,
    rng: &mut SmallRng,
) -> TaskId {
    let node = b.add_task(spawn_node_chunk());
    let d = pick_degree(shape, rng);
    if leaves.len() <= d {
        for &leaf in leaves {
            b.add_dep(node, leaf);
        }
        return node;
    }
    // Split the leaf span into `d` parts. The irregular shape skews the
    // split (first child gets a larger share) so subtree sizes — and
    // hence task availability over time — are uneven.
    let parts = match shape {
        TreeShape::Regular(_) => even_split(leaves.len(), d),
        TreeShape::Irregular => skewed_split(leaves.len(), d, rng),
    };
    let mut at = 0usize;
    for part in parts {
        if part == 0 {
            continue;
        }
        let child = build_subtree(b, &leaves[at..at + part], shape, rng);
        b.add_dep(node, child);
        at += part;
    }
    node
}

fn even_split(n: usize, d: usize) -> Vec<usize> {
    let base = n / d;
    let extra = n % d;
    (0..d).map(|i| base + usize::from(i < extra)).collect()
}

fn skewed_split(n: usize, d: usize, rng: &mut SmallRng) -> Vec<usize> {
    // First part takes 35-65% of the span, the rest split evenly.
    let first = ((n as f64) * rng.gen_range(0.35..0.65)).round() as usize;
    let first = first.clamp(1, n.saturating_sub(d - 1).max(1));
    let mut parts = vec![first];
    parts.extend(even_split(n - first, d - 1));
    parts
}

/// Build a complete iterative task workload: `iters` repetitions of a
/// leaf set produced by `make_leaves`, each iteration spawned from a
/// tree of the given shape, with a barrier between iterations (the
/// `finish` around each timestep).
pub fn iterative_tree_dag(
    iters: usize,
    shape: TreeShape,
    seed: u64,
    mut make_leaves: impl FnMut(usize, &mut DagBuilder) -> Vec<TaskId>,
) -> tasking::TaskDag {
    let mut b = DagBuilder::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut prev_leaves: Vec<TaskId> = Vec::new();
    for iter in 0..iters {
        let leaves = make_leaves(iter, &mut b);
        let root = spawn_tree(&mut b, &leaves, shape, &mut rng);
        b.barrier(&prev_leaves, &[root]);
        prev_leaves = leaves;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(b: &mut DagBuilder, n: usize) -> Vec<TaskId> {
        (0..n)
            .map(|_| b.add_task(Chunk::new(1_000_000, 1000, 0)))
            .collect()
    }

    fn interior_degrees(dag: &tasking::TaskDag, n_leaves: usize) -> Vec<usize> {
        // Interior nodes are those added after the leaves.
        (n_leaves..dag.len())
            .map(|i| dag.successors(TaskId(i as u32)).len())
            .filter(|&d| d > 0)
            .collect()
    }

    #[test]
    fn regular_tree_has_uniform_degree() {
        let mut b = DagBuilder::default();
        let ls = leaves(&mut b, 81);
        let mut rng = SmallRng::seed_from_u64(1);
        spawn_tree(&mut b, &ls, TreeShape::Regular(3), &mut rng);
        let dag = b.build();
        for d in interior_degrees(&dag, 81) {
            assert!(
                d <= 3,
                "regular degree-3 tree must not exceed 3 children, got {d}"
            );
        }
        // Exactly one root.
        assert_eq!(dag.roots().count(), 1);
    }

    #[test]
    fn irregular_tree_mixes_degrees() {
        let mut b = DagBuilder::default();
        let ls = leaves(&mut b, 200);
        let mut rng = SmallRng::seed_from_u64(7);
        spawn_tree(&mut b, &ls, TreeShape::Irregular, &mut rng);
        let dag = b.build();
        let degrees = interior_degrees(&dag, 200);
        assert!(degrees.contains(&3), "expected some degree-3 nodes");
        assert!(degrees.contains(&5), "expected some degree-5 nodes");
    }

    #[test]
    fn all_leaves_reachable() {
        for shape in [TreeShape::Regular(3), TreeShape::Irregular] {
            let mut b = DagBuilder::default();
            let ls = leaves(&mut b, 57);
            let mut rng = SmallRng::seed_from_u64(3);
            spawn_tree(&mut b, &ls, shape, &mut rng);
            let dag = b.build();
            // Every leaf has in-degree exactly 1 (its spawner).
            let indeg = dag.indegrees();
            for leaf in &ls {
                assert_eq!(indeg[leaf.0 as usize], 1);
            }
        }
    }

    #[test]
    fn single_leaf_tree() {
        let mut b = DagBuilder::default();
        let ls = leaves(&mut b, 1);
        let mut rng = SmallRng::seed_from_u64(3);
        let root = spawn_tree(&mut b, &ls, TreeShape::Irregular, &mut rng);
        let dag = b.build();
        assert_eq!(dag.successors(root), &[ls[0].0]);
    }

    #[test]
    fn iterative_dag_orders_iterations() {
        let dag = iterative_tree_dag(3, TreeShape::Regular(3), 5, |_, b| {
            (0..9)
                .map(|_| b.add_task(Chunk::new(100_000, 100, 0)))
                .collect()
        });
        // One root overall: iteration 0's spawn root.
        assert_eq!(dag.roots().count(), 1);
        // Executing with the work-stealing scheduler completes everything.
        use simproc::engine::SimProcessor;
        use simproc::freq::HYPOTHETICAL7;
        let total = dag.len();
        let mut p = SimProcessor::new(HYPOTHETICAL7.clone());
        let mut s = tasking::WorkStealingScheduler::new(dag, p.n_cores(), 2);
        p.run(&mut s, |_| {});
        assert_eq!(s.completed(), total);
    }

    #[test]
    fn deterministic_construction() {
        let d1 = iterative_tree_dag(2, TreeShape::Irregular, 11, |_, b| {
            (0..20)
                .map(|_| b.add_task(Chunk::new(100_000, 100, 0)))
                .collect()
        });
        let d2 = iterative_tree_dag(2, TreeShape::Irregular, 11, |_, b| {
            (0..20)
                .map(|_| b.add_task(Chunk::new(100_000, 100, 0)))
                .collect()
        });
        assert_eq!(d1.len(), d2.len());
        for i in 0..d1.len() {
            assert_eq!(
                d1.successors(TaskId(i as u32)),
                d2.successors(TaskId(i as u32))
            );
        }
    }
}
