//! SOR — Successive Over-Relaxation (Java Grande port, paper \[7\]).
//!
//! Configuration from Table 1: a 32768×32768 grid, 200 iterations.
//! Three concurrency variants: `-irt` (irregular task DAG), `-rt`
//! (regular task DAG), `-ws` (static work-sharing).
//!
//! ## Cost model
//!
//! An in-place red-black SOR sweep touches each grid line once per
//! sweep (the 5-point stencil's neighbour rows are still cached from
//! the preceding rows at 32 K×8 B = 256 KB per row against a 25 MB
//! LLC): `1/8` miss per point. The update
//! `u[i][j] += ω·(resid/4)` with the stencil sum is ~5 instructions per
//! point of dependent FP work (CPI ≈ 2, prefetch-covered streaming
//! MLP ≈ 18). TIPI = 0.125/5 = **0.025**, the paper's 0.024–0.028 slab.
//!
//! The `-ws` variant adds the Java-Grande-style sampled residual check
//! (every 4th row, 8 instructions and `1/8` miss per sampled point →
//! TIPI 0.0156), which is what gives SOR-ws its extra low slabs in
//! Table 1 (3 slabs vs 1 for the task variants).

use crate::cache::KernelCost;
use crate::dag::{iterative_tree_dag, TreeShape};
use crate::{Benchmark, BuiltWorkload, Scale, Style};
use tasking::Region;

/// Grid side (points); the paper's 32K.
pub const GRID: u64 = 32_768;
/// Paper iteration count.
pub const PAPER_ITERS: usize = 200;
/// Grid rows per leaf task / work-sharing chunk.
pub const ROWS_PER_TASK: u64 = 32;

/// The SOR sweep kernel cost (see module docs). The dependent-chain
/// CPI dominates; the hardware prefetcher covers the streaming misses
/// almost entirely (high MLP), so SOR behaves compute-bound despite
/// its 0.025 TIPI — exactly the paper's classification.
pub fn sweep_kernel() -> KernelCost {
    KernelCost::new(5.0, 0.125, 2.2, 26.0)
}

/// The sampled residual-check kernel of the `-ws` variant.
pub fn residual_kernel() -> KernelCost {
    KernelCost::new(8.0, 0.125, 1.0, 10.0)
}

fn sweep_chunks() -> Vec<simproc::engine::Chunk> {
    let tasks = GRID / ROWS_PER_TASK;
    let points = ROWS_PER_TASK * GRID;
    (0..tasks).map(|_| sweep_kernel().chunk(points)).collect()
}

/// Build the schedulable workload for one style.
pub fn build(style: Style, scale: Scale, n_cores: usize) -> BuiltWorkload {
    let iters = scale.iters(PAPER_ITERS);
    match style {
        Style::WorkSharing => {
            let mut regions = Vec::with_capacity(iters * 2);
            for iter in 0..iters {
                // OpenMP `schedule(static)`: one contiguous row block
                // per thread — perfectly balanced, so barriers add no
                // idle tail (unlike the task variants, where block
                // granularity feeds the load balancer).
                let per_core = GRID * GRID / n_cores as u64;
                regions.push(Region::from_parts(
                    (0..n_cores)
                        .map(|_| vec![sweep_kernel().chunk(per_core)])
                        .collect(),
                ));
                // Sampled residual check: every 4th iteration, GRID/4
                // rows × 4 (batching keeps its runtime share constant
                // but reduces the number of phase transitions that
                // contaminate the profiler's main-slab samples —
                // matching the real code's periodic convergence test).
                if iter % 4 == 3 {
                    // Every 16th row sampled, batched 4 iterations at a
                    // time: ~6 % of runtime, the paper's ~7 % share for
                    // the low-TIPI slab.
                    let sample_points = GRID * GRID / 4 / n_cores as u64;
                    let res: Vec<_> = (0..n_cores)
                        .map(|_| residual_kernel().chunk(sample_points))
                        .collect();
                    regions.push(Region::statically_partitioned(res, n_cores));
                }
            }
            BuiltWorkload::Regions(regions)
        }
        Style::IrregularTasks | Style::RegularTasks => {
            let shape = if style == Style::IrregularTasks {
                TreeShape::Irregular
            } else {
                TreeShape::Regular(3)
            };
            let dag = iterative_tree_dag(iters, shape, 0x50_0501, |_, b| {
                sweep_chunks().into_iter().map(|c| b.add_task(c)).collect()
            });
            BuiltWorkload::Dag(dag)
        }
    }
}

/// Table 1 row for the given style.
pub fn benchmark(style: Style, scale: Scale) -> Benchmark {
    let (name, time, range) = match style {
        Style::IrregularTasks => ("SOR-irt", 69.1, (0.024, 0.028)),
        Style::RegularTasks => ("SOR-rt", 69.4, (0.024, 0.028)),
        Style::WorkSharing => ("SOR-ws", 68.7, (0.012, 0.028)),
    };
    Benchmark::new(name, style, time, range, move |n| build(style, scale, n))
}

/// Reference numeric kernel: one red-black SOR sweep on a small grid.
/// This is the computation the cost model abstracts; tests use it to
/// validate convergence and the per-point instruction estimate.
pub fn sor_sweep(u: &mut [f64], n: usize, omega: f64) -> f64 {
    let mut max_delta = 0.0f64;
    for colour in 0..2 {
        for i in 1..n - 1 {
            let start = 1 + ((i + colour) % 2);
            let mut j = start;
            while j < n - 1 {
                let idx = i * n + j;
                let resid = u[idx - n] + u[idx + n] + u[idx - 1] + u[idx + 1] - 4.0 * u[idx];
                let delta = omega * resid / 4.0;
                u[idx] += delta;
                max_delta = max_delta.max(delta.abs());
                j += 2;
            }
        }
    }
    max_delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::slab_of;

    #[test]
    fn sweep_tipi_in_paper_slab() {
        let t = sweep_kernel().tipi();
        assert!((0.024..0.028).contains(&t), "sweep TIPI {t}");
        assert_eq!(slab_of(t), 6);
    }

    #[test]
    fn residual_tipi_in_low_slab() {
        let t = residual_kernel().tipi();
        assert!((0.012..0.016).contains(&t), "residual TIPI {t}");
    }

    #[test]
    fn ws_build_region_structure() {
        let iters = Scale(0.1).iters(PAPER_ITERS);
        let wl = build(Style::WorkSharing, Scale(0.1), 4);
        match wl {
            BuiltWorkload::Regions(r) => {
                // One sweep per iteration plus a batched residual every
                // 4th iteration.
                assert_eq!(r.len(), iters + iters / 4);
                // The sweep region is perfectly balanced: one chunk per
                // core, equal sizes.
                assert_eq!(r[0].width(), 4);
                assert_eq!(r[0].len(), 4);
            }
            _ => panic!("ws must build regions"),
        }
    }

    #[test]
    fn task_builds_are_dags() {
        for style in [Style::IrregularTasks, Style::RegularTasks] {
            match build(style, Scale(0.01), 4) {
                BuiltWorkload::Dag(d) => {
                    assert!(d.len() > (GRID / ROWS_PER_TASK) as usize);
                    assert_eq!(d.roots().count(), 1);
                }
                _ => panic!("task styles must build DAGs"),
            }
        }
    }

    #[test]
    fn aggregate_dag_tipi_close_to_kernel() {
        if let BuiltWorkload::Dag(d) = build(Style::IrregularTasks, Scale(0.01), 4) {
            let t = d.aggregate_tipi();
            assert!(
                (t - sweep_kernel().tipi()).abs() < 0.002,
                "spawn overhead should barely move aggregate TIPI, got {t}"
            );
        } else {
            panic!();
        }
    }

    #[test]
    fn numeric_sor_converges_to_laplace_solution() {
        // Boundary: u = 1 on the top edge, 0 elsewhere. SOR iterations
        // must monotonically shrink the update magnitude and converge.
        let n = 33;
        let mut u = vec![0.0f64; n * n];
        u[..n].fill(1.0);
        let mut last = f64::INFINITY;
        let mut converged = false;
        for _ in 0..2000 {
            let d = sor_sweep(&mut u, n, 1.5);
            assert!(d.is_finite());
            last = d;
            if d < 1e-10 {
                converged = true;
                break;
            }
        }
        assert!(converged, "SOR failed to converge, last delta {last}");
        // Interior values bounded by the boundary extremes (max principle).
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let v = u[i * n + j];
                assert!((0.0..=1.0).contains(&v), "max principle violated: {v}");
            }
        }
        // The centre of the square with one hot edge sits near 0.25.
        let centre = u[(n / 2) * n + n / 2];
        assert!((centre - 0.25).abs() < 0.02, "centre {centre}");
    }
}
