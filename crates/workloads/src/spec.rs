//! Declarative workload descriptions — the `workload` field of a
//! `bench::scenario::Scenario`.
//!
//! A [`WorkloadSpec`] is plain data (`Clone + PartialEq`, serde-ready)
//! naming *what* runs: either one of the paper's Table 1 benchmarks at
//! a given scale under a programming model, or a synthetic chunk
//! stream described phase by phase. [`WorkloadSpec::build`] turns the
//! description into the schedulable [`Workload`] the engine steps —
//! the one construction path shared by the evaluation grid, the
//! `--scenario` CLI, the examples, and the equivalence tests.

use crate::{openmp_suite, Benchmark, ProgModel, Scale};
use serde::{Deserialize, Serialize};
use simproc::engine::{Chunk, Workload};
use simproc::perf::CostProfile;

/// One phase of a synthetic chunk stream: `chunks` identical chunks
/// with the given counter footprint and cost profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkPhase {
    /// Chunks handed out per cycle of this phase.
    pub chunks: u64,
    /// Instructions retired per chunk.
    pub instructions: u64,
    /// LLC misses served by the local socket, per chunk.
    pub misses_local: u64,
    /// LLC misses served by the remote socket, per chunk.
    pub misses_remote: u64,
    /// Cycles per instruction of the pipeline model.
    pub cpi: f64,
    /// Memory-level parallelism of the stall model.
    pub mlp: f64,
}

impl ChunkPhase {
    /// The chunk this phase hands out.
    pub fn chunk(&self) -> Chunk {
        Chunk::new(self.instructions, self.misses_local, self.misses_remote)
            .with_profile(CostProfile::new(self.cpi, self.mlp))
    }

    /// A memory-bound streaming phase (TIPI ≈ 0.064, the paper's
    /// Heat-like access pattern).
    pub fn streaming(chunks: u64) -> Self {
        ChunkPhase {
            chunks,
            instructions: 1_000_000,
            misses_local: 56_000,
            misses_remote: 8_000,
            cpi: 0.55,
            mlp: 12.0,
        }
    }

    /// A cache-resident compute-bound phase (TIPI ≈ 0.001).
    pub fn compute(chunks: u64) -> Self {
        ChunkPhase {
            chunks,
            instructions: 1_000_000,
            misses_local: 800,
            misses_remote: 200,
            cpi: 0.9,
            mlp: 4.0,
        }
    }
}

/// A synthetic workload: the listed phases cycled in order until
/// `total_chunks` chunks were handed out (`None` = an endless stream —
/// pair it with a scenario duration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Phases cycled in order.
    pub phases: Vec<ChunkPhase>,
    /// Total chunk budget; `None` streams forever.
    pub total_chunks: Option<u64>,
}

impl SyntheticSpec {
    /// Chunks per full cycle of the phase list.
    pub fn cycle_len(&self) -> u64 {
        self.phases.iter().map(|p| p.chunks.max(1)).sum()
    }

    /// One full cycle of chunks, in phase order — the per-superstep
    /// unit of a bulk-synchronous synthetic scenario.
    pub fn cycle_chunks(&self) -> Vec<Chunk> {
        let mut out = Vec::new();
        for phase in &self.phases {
            for _ in 0..phase.chunks.max(1) {
                out.push(phase.chunk());
            }
        }
        out
    }
}

/// The schedulable form of a [`SyntheticSpec`]: hands out one chunk per
/// `next_chunk` call, cycling through the phases, until the budget is
/// exhausted.
pub struct SyntheticWorkload {
    spec: SyntheticSpec,
    handed: u64,
}

impl SyntheticWorkload {
    /// Build from a spec.
    ///
    /// # Panics
    /// Panics when the spec has no phases (there is nothing to stream).
    pub fn new(spec: SyntheticSpec) -> Self {
        assert!(
            !spec.phases.is_empty(),
            "synthetic workload needs at least one phase"
        );
        SyntheticWorkload { spec, handed: 0 }
    }

    fn current_chunk(&self) -> Chunk {
        let mut pos = self.handed % self.spec.cycle_len();
        for phase in &self.spec.phases {
            let n = phase.chunks.max(1);
            if pos < n {
                return phase.chunk();
            }
            pos -= n;
        }
        unreachable!("position is within the cycle by construction")
    }
}

impl Workload for SyntheticWorkload {
    fn next_chunk(&mut self, _core: usize, _now_ns: u64) -> Option<Chunk> {
        if let Some(total) = self.spec.total_chunks {
            if self.handed >= total {
                return None;
            }
        }
        let chunk = self.current_chunk();
        self.handed += 1;
        Some(chunk)
    }

    fn is_done(&self) -> bool {
        match self.spec.total_chunks {
            Some(total) => self.handed >= total,
            None => false,
        }
    }
}

/// Declarative description of what a scenario runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One Table 1 benchmark, resolved by name, instantiated under
    /// `model` at `scale` (1.0 = the paper's full-length runs).
    Bench {
        /// Benchmark name (e.g. `"Heat-irt"`).
        name: String,
        /// Programming model the scheduler mimics.
        model: ProgModel,
        /// Workload scale factor.
        scale: f64,
    },
    /// A synthetic chunk stream.
    Synthetic(SyntheticSpec),
}

impl WorkloadSpec {
    /// Benchmark-backed spec.
    pub fn bench(name: impl Into<String>, model: ProgModel, scale: f64) -> Self {
        WorkloadSpec::Bench {
            name: name.into(),
            model,
            scale,
        }
    }

    /// Display name (the benchmark's, or `"synthetic"`).
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Bench { name, .. } => name.clone(),
            WorkloadSpec::Synthetic(_) => "synthetic".to_string(),
        }
    }

    /// Programming model (synthetic streams schedule like OpenMP
    /// work-sharing: any idle core pulls the next chunk).
    pub fn model(&self) -> ProgModel {
        match self {
            WorkloadSpec::Bench { model, .. } => *model,
            WorkloadSpec::Synthetic(_) => ProgModel::OpenMp,
        }
    }

    /// Scale factor (1.0 for synthetic streams).
    pub fn scale(&self) -> f64 {
        match self {
            WorkloadSpec::Bench { scale, .. } => *scale,
            WorkloadSpec::Synthetic(_) => 1.0,
        }
    }

    /// The phase signature of this workload: the TIPI window its
    /// phases live in (Table 1's per-benchmark range for benchmarks, a
    /// per-phase min/max for synthetic streams). This is the key an
    /// oracle-table derivation filters trace samples with — readings
    /// outside the window are warm-up or idle noise, not a phase.
    pub fn paper_tipi_range(&self) -> Option<(f64, f64)> {
        match self {
            WorkloadSpec::Bench { .. } => self.resolve().ok().map(|b| b.paper_tipi_range),
            WorkloadSpec::Synthetic(spec) => {
                let tipis: Vec<f64> = spec.phases.iter().map(|p| p.chunk().tipi()).collect();
                let lo = tipis.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = tipis.iter().cloned().fold(0.0, f64::max);
                lo.is_finite().then_some((lo, hi))
            }
        }
    }

    /// Resolve a benchmark-backed spec against the Table 1 definitions.
    /// Every benchmark (OpenMP and HClib alike) draws from the same
    /// generator set, so resolution is by name; the model only selects
    /// the scheduler at [`build`](Self::build) time.
    pub fn resolve(&self) -> Result<Benchmark, String> {
        match self {
            WorkloadSpec::Bench { name, scale, .. } => {
                let suite = openmp_suite(Scale(*scale));
                suite
                    .into_iter()
                    .find(|b| b.name == *name)
                    .ok_or_else(|| format!("unknown benchmark `{name}`"))
            }
            WorkloadSpec::Synthetic(_) => Err("synthetic workloads have no benchmark".into()),
        }
    }

    /// Build the schedulable workload for an `n_cores` node.
    ///
    /// # Panics
    /// Panics on an unknown benchmark name — scenario files are
    /// validated before execution, so this is a programming error.
    pub fn build(&self, n_cores: usize, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Bench { model, .. } => {
                let def = self.resolve().unwrap_or_else(|e| panic!("{e}"));
                def.instantiate(*model, n_cores, seed)
            }
            WorkloadSpec::Synthetic(spec) => Box::new(SyntheticWorkload::new(spec.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_spec_resolves_and_builds() {
        let spec = WorkloadSpec::bench("UTS", ProgModel::OpenMp, 0.05);
        assert_eq!(spec.name(), "UTS");
        let def = spec.resolve().unwrap();
        assert_eq!(def.name, "UTS");
        let wl = spec.build(4, 1);
        assert!(!wl.is_done());
    }

    #[test]
    fn hclib_names_resolve_from_the_shared_generator_set() {
        let spec = WorkloadSpec::bench("Heat-ws", ProgModel::HClib, 0.05);
        assert!(spec.resolve().is_ok());
        let _ = spec.build(4, 1);
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let spec = WorkloadSpec::bench("NoSuch", ProgModel::OpenMp, 0.05);
        assert!(spec.resolve().is_err());
    }

    #[test]
    fn synthetic_budget_and_phases() {
        let spec = SyntheticSpec {
            phases: vec![ChunkPhase::streaming(2), ChunkPhase::compute(3)],
            total_chunks: Some(7),
        };
        assert_eq!(spec.cycle_len(), 5);
        assert_eq!(spec.cycle_chunks().len(), 5);
        let mut wl = SyntheticWorkload::new(spec);
        let mut tipis = Vec::new();
        while let Some(c) = wl.next_chunk(0, 0) {
            tipis.push(c.tipi());
        }
        assert_eq!(tipis.len(), 7);
        // 2 streaming, 3 compute, then the cycle restarts: 2 streaming.
        assert!(tipis[0] > 0.05 && tipis[1] > 0.05);
        assert!(tipis[2] < 0.01 && tipis[4] < 0.01);
        assert!(tipis[5] > 0.05 && tipis[6] > 0.05);
        assert!(wl.is_done());
    }

    #[test]
    fn endless_synthetic_never_finishes() {
        let spec = SyntheticSpec {
            phases: vec![ChunkPhase::streaming(1)],
            total_chunks: None,
        };
        let mut wl = SyntheticWorkload::new(spec);
        for _ in 0..100 {
            assert!(wl.next_chunk(0, 0).is_some());
        }
        assert!(!wl.is_done());
    }
}
