//! Heat — 2-D heat diffusion by Jacobi-type iteration (the Cilk-5.4.6
//! `heat` example, paper \[35\]).
//!
//! Configuration from Table 1: 32768×32768 grid, 200 iterations, three
//! concurrency variants like SOR.
//!
//! ## Cost model
//!
//! Jacobi is out-of-place: each sweep reads array `A` and writes array
//! `B`. Per 8 points (one line): one demand fetch of `A`'s line, one
//! read-for-ownership fetch of `B`'s line, plus a residual share of
//! neighbour-row traffic not covered by reuse — ≈ 0.325 misses/point.
//! The update `b = a + k·(north+south+east+west−4a)` vectorizes well:
//! ~5 instructions/point at CPI ≈ 0.55, MLP ≈ 12. TIPI = 0.325/5 =
//! **0.065** — the paper's dominant 0.064–0.068 slab. At 20 cores this
//! kernel saturates DRAM bandwidth, which is exactly why the paper
//! finds CFopt = 1.2 GHz and UFopt = 2.2 GHz for it.
//!
//! The first sweeps run against cold caches (the §4.1 warm-up
//! fluctuation): modelled as a miss-rate multiplier decaying over the
//! first iterations, which produces the 0.068–0.076 slabs at the top of
//! the paper's range. The `-rt` variant's page-aligned blocks give a
//! slightly lower steady miss rate on a sixth of the sweeps
//! (0.060–0.064 — the second frequent slab of Table 2); the `-ws`
//! variant has better static reuse overall (frequent slab 0.056–0.060)
//! plus per-iteration sampled-residual phases cycling through low TIPI
//! values (the 11 distinct slabs of Table 1).

use crate::cache::KernelCost;
use crate::dag::{iterative_tree_dag, TreeShape};
use crate::{Benchmark, BuiltWorkload, Scale, Style};
use tasking::Region;

/// Grid side (points).
pub const GRID: u64 = 32_768;
/// Paper iteration count.
pub const PAPER_ITERS: usize = 200;
/// Grid rows per leaf task / chunk.
pub const ROWS_PER_TASK: u64 = 32;

/// Steady-state Jacobi sweep kernel for the task variants.
pub fn sweep_kernel() -> KernelCost {
    KernelCost::new(5.0, 0.325, 0.55, 12.0)
}

/// The `-ws` sweep enjoys slightly better reuse from static blocking.
pub fn sweep_kernel_ws() -> KernelCost {
    KernelCost::new(5.0, 0.295, 0.55, 12.0)
}

/// Cold-cache multiplier for iteration `iter` (≥ 1, decaying to 1).
pub fn warmup_factor(iter: usize) -> f64 {
    match iter {
        0 => 1.15,
        1 => 1.10,
        2 => 1.06,
        3 => 1.03,
        _ => 1.0,
    }
}

/// Per-iteration miss factor of the `-rt` variant: every sixth sweep
/// lands page-aligned and drops to the 0.060–0.064 slab.
pub fn rt_factor(iter: usize) -> f64 {
    if iter % 6 == 5 {
        0.97
    } else {
        1.0
    }
}

/// Residual-sampling kernel of the `-ws` variant for iteration `iter`:
/// the sampled fraction cycles, walking the low TIPI slabs of Table 1.
pub fn ws_residual_kernel(iter: usize) -> KernelCost {
    // TIPI cycles through ~8 values in [0.013, 0.048].
    let steps = 8;
    let t = (iter % steps) as f64 / (steps - 1) as f64;
    let tipi = 0.013 + t * 0.035;
    let instr_per_point = 8.0;
    KernelCost::new(instr_per_point, tipi * instr_per_point, 1.0, 10.0)
}

fn sweep_chunks(kernel: KernelCost) -> Vec<simproc::engine::Chunk> {
    let tasks = GRID / ROWS_PER_TASK;
    let points = ROWS_PER_TASK * GRID;
    (0..tasks).map(|_| kernel.chunk(points)).collect()
}

/// Build the schedulable workload for one style.
pub fn build(style: Style, scale: Scale, n_cores: usize) -> BuiltWorkload {
    let iters = scale.iters(PAPER_ITERS);
    match style {
        Style::WorkSharing => {
            let mut regions = Vec::with_capacity(iters * 2);
            for iter in 0..iters {
                let k = sweep_kernel_ws().scale_misses(warmup_factor(iter));
                regions.push(Region::statically_partitioned(sweep_chunks(k), n_cores));
                let res = ws_residual_kernel(iter);
                let sample_points = (GRID / 8) * GRID / n_cores as u64;
                let chunks: Vec<_> = (0..n_cores).map(|_| res.chunk(sample_points)).collect();
                regions.push(Region::statically_partitioned(chunks, n_cores));
            }
            BuiltWorkload::Regions(regions)
        }
        Style::IrregularTasks | Style::RegularTasks => {
            let shape = if style == Style::IrregularTasks {
                TreeShape::Irregular
            } else {
                TreeShape::Regular(3)
            };
            let is_rt = style == Style::RegularTasks;
            let dag = iterative_tree_dag(iters, shape, 0x4e47_0001, move |iter, b| {
                let mut f = warmup_factor(iter);
                if is_rt {
                    f *= rt_factor(iter);
                }
                let k = sweep_kernel().scale_misses(f);
                sweep_chunks(k).into_iter().map(|c| b.add_task(c)).collect()
            });
            BuiltWorkload::Dag(dag)
        }
    }
}

/// Table 1 row for the given style.
pub fn benchmark(style: Style, scale: Scale) -> Benchmark {
    let (name, time, range) = match style {
        Style::IrregularTasks => ("Heat-irt", 76.6, (0.056, 0.076)),
        Style::RegularTasks => ("Heat-rt", 75.5, (0.056, 0.072)),
        Style::WorkSharing => ("Heat-ws", 70.9, (0.012, 0.068)),
    };
    Benchmark::new(name, style, time, range, move |n| build(style, scale, n))
}

/// Reference numeric kernel: one Jacobi sweep `b ← a + k·∇²a` with
/// Dirichlet boundaries (boundary rows copied unchanged).
pub fn jacobi_sweep(a: &[f64], b: &mut [f64], n: usize, k: f64) {
    b[..n].copy_from_slice(&a[..n]);
    b[(n - 1) * n..].copy_from_slice(&a[(n - 1) * n..]);
    for i in 1..n - 1 {
        b[i * n] = a[i * n];
        b[i * n + n - 1] = a[i * n + n - 1];
        for j in 1..n - 1 {
            let idx = i * n + j;
            let lap = a[idx - n] + a[idx + n] + a[idx - 1] + a[idx + 1] - 4.0 * a[idx];
            b[idx] = a[idx] + k * lap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::slab_of;

    #[test]
    fn sweep_tipi_in_dominant_slab() {
        let t = sweep_kernel().tipi();
        assert!((0.064..0.068).contains(&t), "irt sweep TIPI {t}");
        assert_eq!(slab_of(t), 16);
    }

    #[test]
    fn ws_sweep_tipi_one_slab_lower() {
        let t = sweep_kernel_ws().tipi();
        assert!((0.056..0.060).contains(&t), "ws sweep TIPI {t}");
    }

    #[test]
    fn warmup_walks_upper_slabs() {
        // Iter 0 must land in the paper's topmost Heat slab (0.072-0.076).
        let t0 = sweep_kernel().scale_misses(warmup_factor(0)).tipi();
        assert!((0.072..0.076).contains(&t0), "cold TIPI {t0}");
        // And the factors decay monotonically to 1.
        for i in 0..6 {
            assert!(warmup_factor(i) >= warmup_factor(i + 1));
        }
        assert_eq!(warmup_factor(100), 1.0);
    }

    #[test]
    fn rt_variant_has_second_frequent_slab() {
        let low = sweep_kernel().scale_misses(rt_factor(5)).tipi();
        assert!((0.060..0.064).contains(&low), "rt low slab TIPI {low}");
        // Roughly 1 in 6 iterations → the ~15% share of Table 2.
        let share = (0..600).filter(|&i| rt_factor(i) < 1.0).count() as f64 / 600.0;
        assert!((0.1..0.25).contains(&share));
    }

    #[test]
    fn ws_residual_cycles_low_slabs() {
        let mut slabs = std::collections::BTreeSet::new();
        for iter in 0..16 {
            let t = ws_residual_kernel(iter).tipi();
            assert!((0.012..0.052).contains(&t), "residual TIPI {t}");
            slabs.insert(slab_of(t));
        }
        assert!(
            slabs.len() >= 6,
            "residual should walk many slabs, got {}",
            slabs.len()
        );
    }

    #[test]
    fn builds_for_all_styles() {
        for style in [
            Style::IrregularTasks,
            Style::RegularTasks,
            Style::WorkSharing,
        ] {
            let wl = build(style, Scale(0.01), 4);
            match (style, wl) {
                (Style::WorkSharing, BuiltWorkload::Regions(r)) => assert!(!r.is_empty()),
                (_, BuiltWorkload::Dag(d)) => assert!(!d.is_empty()),
                _ => panic!("unexpected build shape"),
            }
        }
    }

    #[test]
    fn numeric_jacobi_diffuses_towards_uniform() {
        // A hot spot in the middle must spread and the total heat in the
        // interior must stay bounded by the initial extremes.
        let n = 33;
        let mut a = vec![0.0f64; n * n];
        a[(n / 2) * n + n / 2] = 100.0;
        let mut b = vec![0.0f64; n * n];
        for _ in 0..200 {
            jacobi_sweep(&a, &mut b, n, 0.2);
            std::mem::swap(&mut a, &mut b);
        }
        let centre = a[(n / 2) * n + n / 2];
        assert!(centre < 5.0, "hot spot must diffuse, still {centre}");
        let neighbour = a[(n / 2) * n + n / 2 + 3];
        assert!(neighbour > 0.0, "heat must spread outwards");
        for &v in &a {
            assert!(
                (0.0..=100.0).contains(&v),
                "maximum principle violated: {v}"
            );
        }
    }
}
