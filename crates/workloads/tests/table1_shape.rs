//! Table 1 shape validation: running each benchmark on the simulated
//! machine under the Default governor must reproduce (at scale) the
//! paper's execution times and TIPI timelines.

use simproc::freq::HASWELL_2650V3;
use simproc::governor::DefaultGovernor;
use simproc::profile::{delta, CounterSnapshot};
use simproc::SimProcessor;
use workloads::{openmp_suite, ProgModel, Scale};

const SCALE: f64 = 0.1;

struct RunResult {
    seconds: f64,
    /// Distinct TIPI slabs observed at 20 ms sampling.
    slabs: std::collections::BTreeSet<u32>,
    tipi_min: f64,
    tipi_max: f64,
}

fn run_default(bench: &workloads::Benchmark) -> RunResult {
    let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
    let mut gov = DefaultGovernor::new();
    let mut wl = bench.instantiate(ProgModel::OpenMp, proc.n_cores(), 42);

    let mut slabs = std::collections::BTreeSet::new();
    let mut tipi_min = f64::INFINITY;
    let mut tipi_max = 0.0f64;
    let mut last = CounterSnapshot::capture(&proc).unwrap();
    let mut quantum_count = 0u64;

    let start = proc.now_ns();
    while !proc.workload_drained(wl.as_mut()) {
        proc.step(wl.as_mut());
        gov.on_quantum(&mut proc);
        quantum_count += 1;
        if quantum_count.is_multiple_of(20) {
            // Sample at the paper's Tinv = 20 ms.
            let now = CounterSnapshot::capture(&proc).unwrap();
            if let Some(s) = delta(&last, &now) {
                slabs.insert(workloads::cache::slab_of(s.tipi));
                tipi_min = tipi_min.min(s.tipi);
                tipi_max = tipi_max.max(s.tipi);
            }
            last = now;
        }
    }
    RunResult {
        seconds: (proc.now_ns() - start) as f64 * 1e-9,
        slabs,
        tipi_min,
        tipi_max,
    }
}

#[test]
fn durations_and_tipi_ranges_match_table1() {
    let suite = openmp_suite(Scale(SCALE));
    let mut failures = Vec::new();
    for bench in &suite {
        let r = run_default(bench);
        let expect = bench.paper_time_s * SCALE;
        let time_err = (r.seconds - expect) / expect;
        let (lo, hi) = bench.paper_tipi_range;

        eprintln!(
            "{:>9}: {:6.2}s (paper×{SCALE}: {:5.2}s, err {:+5.1}%), TIPI [{:.3}, {:.3}] \
             (paper [{lo:.3}, {hi:.3}]), {} slabs",
            bench.name,
            r.seconds,
            expect,
            time_err * 100.0,
            r.tipi_min,
            r.tipi_max,
            r.slabs.len()
        );

        if time_err.abs() > 0.30 {
            failures.push(format!(
                "{}: duration off by {:+.0}% ({:.2}s vs {:.2}s)",
                bench.name,
                time_err * 100.0,
                r.seconds,
                expect
            ));
        }
        // The dominant sampled TIPI span must overlap the paper range
        // generously: the sampled max within (or near) the paper max.
        if r.tipi_max > hi * 1.25 + 0.004 {
            failures.push(format!(
                "{}: sampled TIPI max {:.4} far above paper {hi:.4}",
                bench.name, r.tipi_max
            ));
        }
        if r.tipi_max < lo {
            failures.push(format!(
                "{}: sampled TIPI max {:.4} below paper range start {lo:.4}",
                bench.name, r.tipi_max
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "Table 1 mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn slab_diversity_ordering_matches_table1() {
    // Table 1: UTS/SOR-irt/SOR-rt have 1 slab; AMG has by far the most
    // (60); MiniFE/HPCCG in the teens. Exact counts depend on sampling
    // alignment; the ordering and rough magnitudes are the target.
    let suite = openmp_suite(Scale(SCALE));
    let by_name: std::collections::HashMap<String, RunResult> = suite
        .iter()
        .map(|b| (b.name.clone(), run_default(b)))
        .collect();

    let n = |name: &str| by_name[name].slabs.len();
    assert!(n("UTS") <= 2, "UTS should be ~1 slab, got {}", n("UTS"));
    assert!(n("SOR-irt") <= 3, "SOR-irt ~1 slab, got {}", n("SOR-irt"));
    assert!(
        n("SOR-ws") >= 2,
        "SOR-ws has extra low slabs, got {}",
        n("SOR-ws")
    );
    assert!(n("Heat-ws") >= 5, "Heat-ws ~11 slabs, got {}", n("Heat-ws"));
    assert!(n("AMG") >= 15, "AMG has the most slabs, got {}", n("AMG"));
    assert!(
        n("AMG") > n("MiniFE") && n("MiniFE") > n("SOR-irt"),
        "slab ordering AMG > MiniFE > SOR: {} vs {} vs {}",
        n("AMG"),
        n("MiniFE"),
        n("SOR-irt")
    );
}
