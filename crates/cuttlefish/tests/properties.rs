//! Property-based tests over the Cuttlefish decision logic.
//!
//! The paper's runtime must behave sanely for *any* JPI landscape and
//! any sample stream — exploration always terminates, frequencies stay
//! in-domain, the sorted-list invariants survive arbitrary interleaved
//! discoveries, and bound clamping is monotone.

use cuttlefish::daemon::Daemon;
use cuttlefish::explore::Exploration;
use cuttlefish::ufrange::uf_window;
use cuttlefish::{Config, Policy, TipiSlab};
use proptest::prelude::*;
use simproc::freq::{Freq, FreqDomain};
use simproc::profile::Sample;

fn sample(tipi: f64, jpi: f64) -> Sample {
    Sample {
        tipi,
        jpi,
        instructions: 1_000_000,
        joules: jpi * 1e6,
        dt_ns: 20_000_000,
    }
}

proptest! {
    /// Exploration resolves within a bounded number of ticks for any
    /// positive JPI curve, and the optimum lies within the initial
    /// bounds.
    #[test]
    fn exploration_terminates_for_any_curve(
        curve in proptest::collection::vec(0.01f64..100.0, 12),
        lb in 0usize..12,
        width in 0usize..12,
    ) {
        let rb = (lb + width).min(11);
        let mut e = Exploration::new(lb, rb, 12, 10);
        let mut resolved = false;
        // 10 samples per level, ≤ 12 levels, plus slack.
        for _ in 0..500 {
            let adv = e.advance();
            if e.opt().is_some() {
                resolved = true;
                break;
            }
            e.record(adv.next, curve[adv.next]);
        }
        prop_assert!(resolved, "exploration must terminate");
        let opt = e.opt().unwrap();
        prop_assert!((lb..=rb).contains(&opt), "opt {opt} outside [{lb}, {rb}]");
    }

    /// `clamp_bounds` never widens a range and never un-resolves an
    /// optimum.
    #[test]
    fn clamp_is_monotone(
        ops in proptest::collection::vec((0usize..12, 0usize..12), 1..20),
    ) {
        let mut e = Exploration::new(0, 11, 12, 10);
        let mut prev = e.bounds();
        for (f, c) in ops {
            e.clamp_bounds(Some(f), Some(c));
            let now = e.bounds();
            prop_assert!(now.0 >= prev.0, "lb moved down: {now:?} from {prev:?}");
            prop_assert!(now.1 <= prev.1, "rb moved up: {now:?} from {prev:?}");
            prop_assert!(now.0 <= now.1, "bounds crossed: {now:?}");
            if let Some(o) = e.opt() {
                prop_assert!((now.0..=now.1).contains(&o));
            }
            prev = now;
        }
    }

    /// The Algorithm 3 window is always a valid, small sub-range.
    #[test]
    fn uf_window_always_valid(
        cf in 0usize..12,
        n_cf in 1usize..32,
        n_uf in 1usize..32,
        mult in 1.0f64..8.0,
    ) {
        let cf = cf.min(n_cf - 1);
        let (lb, rb) = uf_window(cf, n_cf, n_uf, mult);
        prop_assert!(lb <= rb);
        prop_assert!(rb < n_uf);
        let width = rb - lb + 1;
        let expect = ((mult * n_uf as f64) / n_cf as f64).ceil() as usize + 2;
        prop_assert!(width <= expect.max(1), "window {width} > expected {expect}");
    }

    /// The daemon survives any sample stream: frequencies stay within
    /// their domains and the monotonicity invariants of the TIPI list
    /// hold whenever optima are resolved.
    #[test]
    fn daemon_is_total_and_invariant_preserving(
        stream in proptest::collection::vec((0.0f64..0.35, 0.1f64..50.0), 1..800),
        policy in prop_oneof![
            Just(Policy::Both),
            Just(Policy::CoreOnly),
            Just(Policy::UncoreOnly)
        ],
    ) {
        let core = FreqDomain::new(Freq(12), Freq(23));
        let uncore = FreqDomain::new(Freq(12), Freq(30));
        let cfg = Config { samples_per_freq: 3, ..Config::default() }.with_policy(policy);
        let mut d = Daemon::new(cfg, core.clone(), uncore.clone());
        for (tipi, jpi) in stream {
            let (cf, uf) = d.tick(sample(tipi, jpi));
            prop_assert!(core.contains(cf), "core frequency {cf} out of domain");
            prop_assert!(uncore.contains(uf), "uncore frequency {uf} out of domain");
            match policy {
                Policy::CoreOnly => prop_assert_eq!(uf, Freq(30)),
                Policy::UncoreOnly => prop_assert_eq!(cf, Freq(23)),
                Policy::Both => {}
            }
        }
        if let Err(e) = d.list().check_invariants() {
            // Monotonicity can only be violated transiently if the JPI
            // landscape itself is adversarially inconsistent across
            // slabs — but bounds inheritance must still prevent
            // *resolved* optima from crossing.
            return Err(TestCaseError::fail(format!("invariant violated: {e}")));
        }
    }

    /// Slab quantization is order-preserving and consistent with its
    /// bounds.
    #[test]
    fn slab_quantization_consistent(t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        let w = 0.004;
        let s1 = TipiSlab::quantize(t1, w);
        let s2 = TipiSlab::quantize(t2, w);
        if t1 <= t2 {
            prop_assert!(s1 <= s2);
        }
        prop_assert!(s1.lo(w) <= t1 && t1 < s1.hi(w) + 1e-12);
    }
}
