//! The paper's worked examples (Figures 4–9) replayed on the
//! hypothetical seven-level machine (frequencies A–G for both domains)
//! as executable specifications.

use cuttlefish::daemon::Daemon;
use cuttlefish::{Config, TipiSlab};
use simproc::freq::{Freq, FreqDomain};
use simproc::profile::Sample;

/// Seven levels, A(=index 0) .. G(=index 6), as ratios 10..=16.
fn domains() -> (FreqDomain, FreqDomain) {
    (
        FreqDomain::new(Freq(10), Freq(16)),
        FreqDomain::new(Freq(10), Freq(16)),
    )
}

const A: Freq = Freq(10);
const C: Freq = Freq(12);
const G: Freq = Freq(16);

fn cfg() -> Config {
    Config {
        samples_per_freq: 3, // the walkthrough is count-independent
        ..Config::default()
    }
}

fn sample(tipi: f64, jpi: f64) -> Sample {
    Sample {
        tipi,
        jpi,
        instructions: 1_000_000,
        joules: jpi * 1e6,
        dt_ns: 20_000_000,
    }
}

/// Drive the daemon at a fixed TIPI over a landscape indexed by the
/// frequencies the daemon itself sets.
fn drive(d: &mut Daemon, tipi: f64, ticks: usize, jpi: &dyn Fn(Freq, Freq) -> f64) -> (Freq, Freq) {
    let (mut cf, mut uf) = d.initial_frequencies();
    for _ in 0..ticks {
        let s = sample(tipi, jpi(cf, uf));
        let (c, u) = d.tick(s);
        cf = c;
        uf = u;
    }
    (cf, uf)
}

#[test]
fn figure4_full_walkthrough_single_tipi() {
    // Figure 4: CF exploration descends G → E → C → A (JPI improves at
    // every step), so CFopt = A; Algorithm 3 then yields the uncore
    // window [C, G]; the UF exploration descends G → E → C and lands
    // UFopt = C at the window's left bound.
    let (core, uncore) = domains();
    let mut d = Daemon::new(cfg(), core.clone(), uncore.clone());

    // JPI falls toward low CF (memory-bound MAP) and toward low UF
    // within the window.
    let jpi = |cf: Freq, uf: Freq| 10.0 + (cf.0 - 10) as f64 * 0.5 + (uf.0 - 10) as f64 * 0.2;

    // Phase 1: enough ticks to resolve the core frequency.
    let mut cf_resolved_at = None;
    let (mut cf, mut uf) = d.initial_frequencies();
    for tick in 0..200 {
        let s = sample(0.05, jpi(cf, uf));
        let (c, u) = d.tick(s);
        cf = c;
        uf = u;
        let node = d.nodes().next().expect("node exists");
        if node.cf_opt().is_some() && cf_resolved_at.is_none() {
            cf_resolved_at = Some(tick);
            // Figure 4(d): CFopt = A.
            assert_eq!(node.cf_opt(), Some(0), "CFopt must be A");
            // Figure 4(e): Algorithm 3 window for CFopt = A is [C, G].
            let (lb, rb) = node.uf.as_ref().expect("uncore exploration begun").bounds();
            assert_eq!((lb, rb), (2, 6), "uncore window must be [C, G]");
            // Algorithm 1 line 23: UF exploration starts at its RB.
            assert_eq!(u, G, "first uncore probe at the window RB");
        }
    }
    assert!(cf_resolved_at.is_some(), "core exploration must resolve");

    // Phase 2: the uncore exploration resolves to C.
    let node = d.nodes().next().unwrap();
    assert_eq!(node.uf_opt(), Some(2), "UFopt must be C");
    let (final_cf, final_uf) = drive(&mut d, 0.05, 5, &jpi);
    assert_eq!((final_cf, final_uf), (A, C));
}

#[test]
fn figure5a_compute_bound_stays_at_g() {
    // Figure 5(a): JPI at E is higher than at G — the adjacent pair
    // [F, G] resolves to G to protect performance.
    let (core, uncore) = domains();
    let mut d = Daemon::new(cfg(), core, uncore);
    let jpi = |cf: Freq, _uf: Freq| 20.0 - (cf.0 - 10) as f64; // JPI falls with CF
    drive(&mut d, 0.001, 200, &jpi);
    let node = d.nodes().next().unwrap();
    assert_eq!(node.cf_opt(), Some(6), "CFopt must be G");
}

#[test]
fn figure5b_interior_bracket_resolves_low() {
    // Figure 5(b): descending succeeds to C but A is worse; the bracket
    // [B, C] resolves to B (the untested level — energy-favouring).
    let (core, uncore) = domains();
    let mut d = Daemon::new(cfg(), core, uncore);
    let jpi = |cf: Freq, _uf: Freq| match cf.0 {
        10 => 12.0, // A worse than C
        12 => 8.0,  // C best measured
        14 => 10.0, // E
        16 => 11.0, // G
        _ => 9.0,
    };
    drive(&mut d, 0.05, 200, &jpi);
    let node = d.nodes().next().unwrap();
    assert_eq!(node.cf_opt(), Some(1), "CFopt must be B = RB−1");
}

#[test]
fn figure6_insertion_inherits_neighbour_bounds() {
    // Figure 6: TIPI-3 resolves CFopt = B; TIPI-1 (more compute-bound)
    // is then discovered and must start with CFLB = B, CFRB = G.
    let (core, uncore) = domains();
    let mut d = Daemon::new(cfg(), core, uncore);

    // TIPI-3 (slab of 0.050): landscape with minimum at B.
    let jpi3 = |cf: Freq, _uf: Freq| ((cf.0 as f64) - 11.0).abs() + 1.0;
    drive(&mut d, 0.050, 400, &jpi3);
    let n3 = d.list().get(TipiSlab::quantize(0.050, 0.004)).unwrap();
    let cf3 = n3.cf_opt().expect("TIPI-3 resolved");
    assert!(cf3 <= 2, "TIPI-3's optimum is low (B-ish), got {cf3}");

    // TIPI-1 (slab of 0.010) appears: one tick creates the node.
    d.tick(sample(0.010, 5.0));
    let n1 = d.list().get(TipiSlab::quantize(0.010, 0.004)).unwrap();
    let (lb, rb) = n1.cf.bounds();
    assert_eq!(lb, cf3, "CFLB inherited from the right neighbour's CFopt");
    assert_eq!(rb, 6, "CFRB defaults to G (no left neighbour)");
}

#[test]
fn figure9b_uf_propagation_collapses_neighbour() {
    // Figure 9(b)-style: two memory-bound slabs; when the more
    // compute-bound one resolves its UFopt, the neighbour's UFLB rises;
    // with matching bounds it collapses to the same optimum without
    // ever exploring.
    let (core, uncore) = domains();
    let mut d = Daemon::new(cfg(), core, uncore);

    // Slab X (0.050): CF minimum at A, UF minimum at E (index 4).
    let jpi_x =
        |cf: Freq, uf: Freq| (cf.0 - 10) as f64 * 0.5 + ((uf.0 as f64) - 14.0).abs() * 0.3 + 1.0;
    drive(&mut d, 0.050, 500, &jpi_x);
    let x = d.list().get(TipiSlab::quantize(0.050, 0.004)).unwrap();
    assert!(x.uf_opt().is_some(), "slab X fully resolved");
    let uf_x = x.uf_opt().unwrap();

    // Slab Y (0.060, more memory-bound): its UFLB must be ≥ X's UFopt
    // as soon as its uncore exploration opens.
    let jpi_y =
        |cf: Freq, uf: Freq| (cf.0 - 10) as f64 * 0.5 + ((uf.0 as f64) - 14.0).abs() * 0.3 + 2.0;
    drive(&mut d, 0.060, 500, &jpi_y);
    let y = d.list().get(TipiSlab::quantize(0.060, 0.004)).unwrap();
    if let Some(uf) = y.uf.as_ref() {
        assert!(
            uf.bounds().0 >= uf_x,
            "monotonicity: Y's UFLB {} must be ≥ X's UFopt {uf_x}",
            uf.bounds().0
        );
    }
    assert!(d.list().check_invariants().is_ok());
}

#[test]
fn exploration_count_matches_paper_worst_case() {
    // §4.3: on the hypothetical machine the worst case (optimum at the
    // default minimum) takes total/2 ≈ 3–4 probes, not 7.
    let (core, uncore) = domains();
    let mut d = Daemon::new(cfg(), core, uncore);
    let jpi = |cf: Freq, _uf: Freq| (cf.0 - 9) as f64; // min at A
    drive(&mut d, 0.05, 300, &jpi);
    let node = d.nodes().next().unwrap();
    assert_eq!(node.cf_opt(), Some(0));
    let measured: Vec<usize> = (0..7).filter(|&l| node.cf.jpi_at(l).is_some()).collect();
    assert_eq!(measured, vec![0, 2, 4, 6], "probes at A, C, E, G only");
}
