//! TIPI slab quantization (§3.2).
//!
//! Raw TIPI readings are binned into fixed slabs of width 0.004
//! (empirically derived in the paper): readings 0.004, 0.005 and 0.007
//! all report as the range 0.004–0.008. Every slab discovered at
//! runtime gets one node in the sorted TIPI list; the slab *index*
//! orders nodes from compute-bound (low) to memory-bound (high).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantized TIPI range `[index·width, (index+1)·width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TipiSlab(pub u32);

impl TipiSlab {
    /// Quantize a raw TIPI reading with the given slab width.
    pub fn quantize(tipi: f64, width: f64) -> Self {
        debug_assert!(width > 0.0);
        let t = tipi.max(0.0);
        TipiSlab((t / width).floor() as u32)
    }

    /// Lower bound of the range.
    pub fn lo(self, width: f64) -> f64 {
        self.0 as f64 * width
    }

    /// Upper bound (exclusive) of the range.
    pub fn hi(self, width: f64) -> f64 {
        (self.0 + 1) as f64 * width
    }

    /// Paper-style label like `"0.064-0.068"`.
    pub fn label(self, width: f64) -> String {
        format!("{:.3}-{:.3}", self.lo(width), self.hi(width))
    }
}

impl fmt::Display for TipiSlab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slab#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 0.004;

    #[test]
    fn paper_example_bins_together() {
        // "TIPI values 0.004, 0.005 and 0.007 would be reported under
        // the TIPI range 0.004-0.008."
        let a = TipiSlab::quantize(0.004, W);
        let b = TipiSlab::quantize(0.005, W);
        let c = TipiSlab::quantize(0.007, W);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, TipiSlab(1));
        assert_eq!(a.label(W), "0.004-0.008");
    }

    #[test]
    fn boundaries_are_half_open() {
        assert_eq!(TipiSlab::quantize(0.0079999, W), TipiSlab(1));
        assert_eq!(TipiSlab::quantize(0.008, W), TipiSlab(2));
    }

    #[test]
    fn negative_or_zero_clamps_to_slab_zero() {
        assert_eq!(TipiSlab::quantize(0.0, W), TipiSlab(0));
        assert_eq!(TipiSlab::quantize(-1.0, W), TipiSlab(0));
    }

    #[test]
    fn ordering_tracks_memory_boundedness() {
        let uts = TipiSlab::quantize(0.001, W);
        let sor = TipiSlab::quantize(0.025, W);
        let heat = TipiSlab::quantize(0.065, W);
        let amg = TipiSlab::quantize(0.150, W);
        assert!(uts < sor && sor < heat && heat < amg);
    }

    #[test]
    fn bounds_roundtrip() {
        let s = TipiSlab::quantize(0.065, W);
        assert!(s.lo(W) <= 0.065 && 0.065 < s.hi(W));
        assert_eq!(s.label(W), "0.064-0.068");
    }
}
