//! A TIPI-range node: the per-MAP state of the daemon (§4.2).
//!
//! Each node owns two [`Exploration`]s — core first, then uncore — plus
//! occurrence statistics (used for the paper's "frequent TIPI" notion:
//! a range seen in more than 10 % of all `Tinv` samplings).

use crate::explore::Exploration;
use crate::tipi::TipiSlab;
use serde::{Deserialize, Serialize};

/// Which exploration stage the node is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Exploring the core frequency (uncore pinned at max).
    Core,
    /// Core resolved; exploring the uncore frequency.
    Uncore,
    /// Both optima resolved.
    Done,
}

/// Per-TIPI-range state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// The quantized TIPI range this node represents.
    pub slab: TipiSlab,
    /// Core-frequency exploration.
    pub cf: Exploration,
    /// Uncore-frequency exploration; created only when the core
    /// optimum resolves (Algorithm 3 needs CFopt).
    pub uf: Option<Exploration>,
    /// Number of `Tinv` samples attributed to this range.
    pub occurrences: u64,
}

impl Node {
    /// Fresh node exploring the core domain over `[cf_lb, cf_rb]`.
    pub fn new(slab: TipiSlab, cf_lb: usize, cf_rb: usize, n_cf: usize, needed: u32) -> Self {
        Node {
            slab,
            cf: Exploration::new(cf_lb, cf_rb, n_cf, needed),
            uf: None,
            occurrences: 0,
        }
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        if self.cf.opt().is_none() {
            Stage::Core
        } else {
            match &self.uf {
                Some(uf) if uf.opt().is_some() => Stage::Done,
                _ => Stage::Uncore,
            }
        }
    }

    /// Resolved core optimum (domain index).
    pub fn cf_opt(&self) -> Option<usize> {
        self.cf.opt()
    }

    /// Resolved uncore optimum (domain index).
    pub fn uf_opt(&self) -> Option<usize> {
        self.uf.as_ref().and_then(|u| u.opt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_progression() {
        let mut n = Node::new(TipiSlab(5), 0, 6, 7, 1);
        assert_eq!(n.stage(), Stage::Core);

        // Resolve CF by driving the exploration.
        loop {
            let adv = n.cf.advance();
            if adv.resolved {
                break;
            }
            n.cf.record(adv.next, 4.0 + adv.next as f64);
        }
        assert_eq!(n.cf_opt(), Some(0));
        assert_eq!(n.stage(), Stage::Uncore);

        n.uf = Some(Exploration::new(2, 6, 7, 1));
        assert_eq!(n.stage(), Stage::Uncore);
        loop {
            let adv = n.uf.as_mut().unwrap().advance();
            if adv.resolved {
                break;
            }
            n.uf.as_mut().unwrap().record(adv.next, adv.next as f64);
        }
        assert_eq!(n.stage(), Stage::Done);
        assert_eq!(n.uf_opt(), Some(2));
    }

    #[test]
    fn occurrences_start_at_zero() {
        let n = Node::new(TipiSlab(0), 0, 11, 12, 10);
        assert_eq!(n.occurrences, 0);
        assert_eq!(n.uf_opt(), None);
    }
}
