//! The unified frequency-control plane: every way of driving the two
//! frequency knobs of a simulated package — the firmware-like
//! [`DefaultGovernor`], the paper's [`CuttlefishDriver`], or a fixed
//! [`Pinned`] operating point — behind one object-safe trait.
//!
//! Before this module existed, every consumer (the evaluation harness,
//! the cluster simulator, each example) carried its own
//! `DefaultGovernor`-vs-`CuttlefishDriver` dispatch; adding a
//! controller meant editing all of them. Now consumers hold a
//! `Box<dyn FrequencyController>` built by [`NodePolicy::build`], and a
//! new governor is one `impl` plus one factory arm.

use crate::daemon::NodeReport;
use crate::driver::CuttlefishDriver;
use crate::tipi::TipiSlab;
use crate::Config;
use serde::{Deserialize, Serialize};
use simproc::freq::Freq;
use simproc::governor::DefaultGovernor;
use simproc::SimProcessor;

/// A frequency controller driving one simulated package.
///
/// The engine advances in fixed quanta; after every
/// [`SimProcessor::step`] the controller gets [`on_quantum`] to observe
/// counters and set the core/uncore frequencies for the next quantum.
///
/// [`on_quantum`]: FrequencyController::on_quantum
pub trait FrequencyController {
    /// Observe the last quantum and apply frequency decisions.
    fn on_quantum(&mut self, proc: &mut SimProcessor);

    /// Per-TIPI-range view of what the controller has learned
    /// (Table 2 shape). Static controllers report one synthetic range
    /// covering the whole run; profiling controllers report the ranges
    /// discovered so far — which may be none (the Cuttlefish daemon's
    /// report is empty until its first post-warm-up sample), so
    /// consumers must not assume a non-empty vector.
    fn report(&self) -> Vec<NodeReport>;

    /// Display name (the paper's setup labels).
    fn name(&self) -> &'static str;

    /// Fractions of reported ranges with resolved core / uncore optima.
    fn resolved_fractions(&self) -> (f64, f64) {
        let report = self.report();
        let n = report.len().max(1) as f64;
        let cf = report.iter().filter(|r| r.cf_opt.is_some()).count() as f64;
        let uf = report.iter().filter(|r| r.uf_opt.is_some()).count() as f64;
        (cf / n, uf / n)
    }

    /// Release the machine: restore any platform state captured when
    /// the controller attached (the library's `cuttlefish::stop()`).
    /// Controllers that captured nothing do nothing.
    fn stop(&mut self, proc: &mut SimProcessor) {
        let _ = proc;
    }

    /// How many consecutive idle quanta, starting at `proc`'s current
    /// virtual time, this controller can be fast-forwarded across: its
    /// `on_quantum` over that stretch would neither touch the machine
    /// nor change any state beyond what
    /// [`note_idle_quanta`](Self::note_idle_quanta) replays. The engine
    /// advances `min(capacity, idle stretch)` quanta analytically and
    /// calls `note_idle_quanta` once instead of `on_quantum` per
    /// quantum; a capacity of 0 forces a real per-quantum step (the
    /// conservative default, which reproduces pre-virtual-clock
    /// behaviour exactly for controllers that don't opt in).
    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        let _ = proc;
        0
    }

    /// Account a stretch of `quanta` idle quanta the engine
    /// fast-forwarded past this controller. Only ever called with
    /// `quanta <= idle_quanta_capacity()`; implementations replay
    /// whatever per-quantum bookkeeping their `on_quantum` would have
    /// done (bit-identically), and nothing else.
    fn note_idle_quanta(&mut self, quanta: u64) {
        let _ = quanta;
    }
}

/// Run `wl` to completion under `ctrl`, fast-forwarding any stretch
/// where every core is parked and both the workload
/// ([`simproc::engine::Workload::next_wake_ns`]) and the controller
/// ([`FrequencyController::idle_quanta_capacity`]) declare the quanta
/// uneventful. Numerically identical to the plain
/// step-then-`on_quantum` loop — the fast path performs the same
/// arithmetic analytically (see `SimProcessor::advance_idle`) — and
/// degrades to exactly that loop when either party declines. Returns
/// the virtual seconds elapsed.
pub fn drive(
    proc: &mut SimProcessor,
    wl: &mut dyn simproc::engine::Workload,
    ctrl: &mut dyn FrequencyController,
) -> f64 {
    let start = proc.now_ns();
    while !proc.workload_drained(wl) {
        if proc.cores_parked() {
            let quantum = proc.spec().quantum_ns;
            // How far the workload lets the clock jump; `None` (never
            // wakes again) cannot occur for an undrained workload that
            // terminates, so treat it as one quantum and keep polling.
            let runway = match proc.next_event_ns(wl) {
                Some(event) => (event - proc.now_ns()) / quantum,
                None => 1,
            };
            if runway > 1 {
                let k = (runway - 1).min(ctrl.idle_quanta_capacity(proc));
                if k > 0 {
                    proc.advance_idle_quanta(k);
                    ctrl.note_idle_quanta(k);
                    continue;
                }
            }
        }
        proc.step(wl);
        ctrl.on_quantum(proc);
    }
    (proc.now_ns() - start) as f64 * 1e-9
}

/// One synthetic whole-run range for controllers that do not profile
/// TIPI (label conveys the policy; optima are what the controller has
/// pinned, if anything). `share` is 1.0 — the policy genuinely covers
/// the entire run — so the entry reads as "frequent"; `occurrences`
/// carries the quanta actually observed (zero for controllers that
/// keep no count), letting consumers distinguish a synthetic range
/// from daemon-sampled ones.
fn static_report(
    label: &str,
    cf_opt: Option<Freq>,
    uf_opt: Option<Freq>,
    occurrences: u64,
) -> Vec<NodeReport> {
    vec![NodeReport {
        slab: TipiSlab(0),
        label: label.to_string(),
        cf_opt,
        uf_opt,
        occurrences,
        share: 1.0,
    }]
}

impl FrequencyController for DefaultGovernor {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        DefaultGovernor::on_quantum(self, proc);
    }

    fn report(&self) -> Vec<NodeReport> {
        // The firmware resolves no per-MAP optima; it tracks traffic.
        static_report("firmware-auto", None, None, 0)
    }

    fn name(&self) -> &'static str {
        "Default"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Until the traffic EWMA decays below the ramp and the uncore
        // lands on its idle floor, the firmware moves the knobs every
        // quantum and must be stepped for real; from the fixed point
        // onward only the EWMA decays, which note_idle_quanta replays.
        if self.is_idle_stable(proc) {
            u64::MAX
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        self.skip_idle_quanta(quanta);
    }
}

impl FrequencyController for CuttlefishDriver {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        CuttlefishDriver::on_quantum(self, proc);
    }

    fn report(&self) -> Vec<NodeReport> {
        self.daemon().report()
    }

    fn name(&self) -> &'static str {
        self.daemon().config().policy.name()
    }

    fn resolved_fractions(&self) -> (f64, f64) {
        self.daemon().resolved_fractions()
    }

    fn stop(&mut self, proc: &mut SimProcessor) {
        CuttlefishDriver::stop(self, proc);
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Everything up to the next scheduled Tinv tick is a pure clock
        // comparison; the tick itself (a counter snapshot that feeds the
        // next interval's delta) must run for real.
        CuttlefishDriver::idle_quanta_capacity(self, proc)
    }
    // note_idle_quanta: nothing to replay — the driver's schedule is
    // anchored to the engine's virtual clock, not to call counts.
}

/// A controller that pins both domains at a fixed operating point —
/// the §3.2 motivating sweeps (Figure 3) and any oracle/static-tuning
/// baseline.
#[derive(Debug, Clone)]
pub struct Pinned {
    cf: Freq,
    uf: Freq,
    quanta: u64,
}

impl Pinned {
    /// Pin core at `cf` and uncore at `uf`.
    pub fn new(cf: Freq, uf: Freq) -> Self {
        Pinned { cf, uf, quanta: 0 }
    }

    /// The pinned core frequency.
    pub fn core(&self) -> Freq {
        self.cf
    }

    /// The pinned uncore frequency.
    pub fn uncore(&self) -> Freq {
        self.uf
    }
}

impl FrequencyController for Pinned {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        // Re-assert every quantum: the pin must hold even if something
        // else (a sysadmin model, a test) moved the knobs.
        proc.set_core_freq(self.cf);
        proc.set_uncore_freq(self.uf);
        self.quanta += 1;
    }

    fn report(&self) -> Vec<NodeReport> {
        static_report("pinned", Some(self.cf), Some(self.uf), self.quanta)
    }

    fn name(&self) -> &'static str {
        "Pinned"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Re-asserting an already-applied pin is a no-op; only the
        // quanta counter (report occurrences) needs replaying.
        if proc.core_freq() == proc.spec().core.clamp(self.cf)
            && proc.uncore_freq() == proc.spec().uncore.clamp(self.uf)
        {
            u64::MAX
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        self.quanta += quanta;
    }
}

/// An ondemand/schedutil-style software governor — the classic
/// utilization-proportional baseline the kernel ships, here as proof
/// that the policy axis is open: one `impl` plus one [`NodePolicy`]
/// arm, and every consumer (harness grid, cluster, scenario JSON,
/// examples) can run it.
///
/// Each quantum it reads the engine's utilization telemetry and steers
/// each domain toward `margin ×` the proportional target — core
/// frequency follows mean pipeline utilization (schedutil's
/// `1.25 · f_max · util`), uncore frequency follows the achieved
/// memory-traffic fraction — moving at most [`max_step`](Self) ratio
/// steps per quantum (the kernel's rate limit, and what keeps the
/// decision sequence deterministic and oscillation-bounded).
#[derive(Debug, Clone)]
pub struct Ondemand {
    /// Headroom multiplier over the proportional target (schedutil's
    /// 1.25).
    pub margin: f64,
    /// Ratio steps each domain may move per quantum.
    pub max_step: u32,
    quanta: u64,
}

impl Default for Ondemand {
    fn default() -> Self {
        Ondemand {
            margin: 1.25,
            max_step: 2,
            quanta: 0,
        }
    }
}

impl Ondemand {
    /// Governor with the schedutil-like defaults.
    pub fn new() -> Self {
        Self::default()
    }

    fn step_toward(cur: Freq, target: Freq, max_step: u32) -> Freq {
        if target.0 > cur.0 {
            Freq(cur.0 + (target.0 - cur.0).min(max_step))
        } else {
            Freq(cur.0 - (cur.0 - target.0).min(max_step))
        }
    }

    /// The `(core, uncore)` operating point this governor asks for at
    /// the given utilization signals (before the per-quantum rate
    /// limit).
    pub fn targets(&self, proc: &SimProcessor, util: f64, traffic: f64) -> (Freq, Freq) {
        let spec = proc.spec();
        let want = |max: Freq, signal: f64| {
            Freq((self.margin * signal.clamp(0.0, 1.0) * f64::from(max.0)).ceil() as u32)
        };
        (
            spec.core.clamp(want(spec.core.max(), util)),
            spec.uncore.clamp(want(spec.uncore.max(), traffic)),
        )
    }

    fn is_idle_stable(&self, proc: &SimProcessor) -> bool {
        let stats = proc.last_quantum();
        let (cf, uf) = self.targets(proc, 0.0, 0.0);
        stats.instructions == 0.0
            && stats.achieved_bw == 0.0
            && proc.core_freq() == cf
            && proc.uncore_freq() == uf
    }
}

impl FrequencyController for Ondemand {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        let stats = proc.last_quantum();
        let traffic = stats.achieved_bw / proc.perf_model().dram_peak_bw;
        let (cf_t, uf_t) = self.targets(proc, stats.mean_util, traffic);
        let cf = Self::step_toward(proc.core_freq(), cf_t, self.max_step);
        let uf = Self::step_toward(proc.uncore_freq(), uf_t, self.max_step);
        proc.set_core_freq(cf);
        proc.set_uncore_freq(uf);
        self.quanta += 1;
    }

    fn report(&self) -> Vec<NodeReport> {
        // Utilization-driven, not MAP-driven: no per-range optima.
        static_report("ondemand", None, None, self.quanta)
    }

    fn name(&self) -> &'static str {
        "Ondemand"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // At the idle fixed point (zero signals, both domains already at
        // the idle targets) every further on_quantum re-writes the same
        // frequencies — idempotent — and only counts the quantum.
        if self.is_idle_stable(proc) {
            u64::MAX
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        self.quanta += quanta;
    }
}

/// Frequency policy for a node — the factory input shared by the
/// evaluation harness, the cluster simulator, and the examples.
///
/// The policy is plain data (`Clone + PartialEq`, serde-ready): the
/// grid runner in `bench::grid` embeds it in per-cell scenario
/// descriptors that cross thread boundaries and round-trip through
/// JSON artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodePolicy {
    /// `performance` governor + firmware Auto uncore.
    Default,
    /// One Cuttlefish instance with this configuration.
    Cuttlefish(Config),
    /// Both domains pinned at a fixed operating point.
    Pinned {
        /// Core frequency to pin.
        cf: Freq,
        /// Uncore frequency to pin.
        uf: Freq,
    },
    /// The ondemand/schedutil-style utilization-proportional governor.
    Ondemand,
}

impl NodePolicy {
    /// Display name of the controller this policy builds.
    pub fn name(&self) -> &'static str {
        match self {
            NodePolicy::Default => "Default",
            NodePolicy::Cuttlefish(cfg) => cfg.policy.name(),
            NodePolicy::Pinned { .. } => "Pinned",
            NodePolicy::Ondemand => "Ondemand",
        }
    }

    /// Build the controller for `proc`.
    ///
    /// Takes the processor mutably so controllers that need an initial
    /// actuation can apply it before the first quantum runs: `Pinned`
    /// sets its operating point here (the Figure 3 sweeps measure from
    /// the very first quantum), while `Cuttlefish` keeps its lazy
    /// Algorithm 1 line 2 behaviour (max frequencies on the first
    /// `on_quantum`), bit-identical with driving [`CuttlefishDriver`]
    /// directly.
    pub fn build(&self, proc: &mut SimProcessor) -> Box<dyn FrequencyController> {
        match self {
            NodePolicy::Default => Box::new(DefaultGovernor::new()),
            NodePolicy::Cuttlefish(cfg) => Box::new(CuttlefishDriver::new(proc, cfg.clone())),
            NodePolicy::Pinned { cf, uf } => {
                proc.set_core_freq(*cf);
                proc.set_uncore_freq(*uf);
                Box::new(Pinned::new(*cf, *uf))
            }
            NodePolicy::Ondemand => Box::new(Ondemand::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;
    use simproc::engine::{Chunk, Workload};
    use simproc::freq::HASWELL_2650V3;
    use simproc::perf::CostProfile;

    struct Steady(Chunk);
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(self.0.clone())
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    fn memory_chunk() -> Chunk {
        Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0))
    }

    #[test]
    fn factory_names_match_policies() {
        assert_eq!(NodePolicy::Default.name(), "Default");
        assert_eq!(
            NodePolicy::Cuttlefish(Config::default()).name(),
            "Cuttlefish"
        );
        assert_eq!(
            NodePolicy::Cuttlefish(Config::default().with_policy(Policy::CoreOnly)).name(),
            "Cuttlefish-Core"
        );
        let pinned = NodePolicy::Pinned {
            cf: Freq(12),
            uf: Freq(22),
        };
        assert_eq!(pinned.name(), "Pinned");
    }

    #[test]
    fn built_controllers_report_uniformly() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        for policy in [
            NodePolicy::Default,
            NodePolicy::Cuttlefish(Config::default()),
            NodePolicy::Pinned {
                cf: Freq(15),
                uf: Freq(20),
            },
        ] {
            let mut ctrl = policy.build(&mut proc);
            let mut wl = Steady(memory_chunk());
            for _ in 0..50 {
                proc.step(&mut wl);
                ctrl.on_quantum(&mut proc);
            }
            assert_eq!(ctrl.name(), policy.name());
            // Uniform contract: a report is never empty (the Cuttlefish
            // daemon is still in warm-up here, so its list is empty and
            // report() returns no ranges — that is the one exception and
            // it resolves once samples arrive; static controllers always
            // report their synthetic range).
            if !matches!(policy, NodePolicy::Cuttlefish(_)) {
                assert!(!ctrl.report().is_empty(), "{} report empty", ctrl.name());
            }
        }
    }

    #[test]
    fn pinned_holds_its_operating_point() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Pinned {
            cf: Freq(15),
            uf: Freq(20),
        }
        .build(&mut proc);
        let mut wl = Steady(memory_chunk());
        for _ in 0..200 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(proc.core_freq(), Freq(15));
        assert_eq!(proc.uncore_freq(), Freq(20));
        // The pin is applied at build time: the residency map must
        // contain only the pinned point.
        assert_eq!(proc.frequency_residency().len(), 1);
        let ((cf, uf), _) = proc.frequency_residency().iter().next().unwrap();
        assert_eq!((*cf, *uf), (15, 20));
        let (rc, ru) = ctrl.resolved_fractions();
        assert_eq!((rc, ru), (1.0, 1.0));
    }

    #[test]
    fn ondemand_tracks_the_bound_resource() {
        // Memory-bound streaming: cores stall, so CF sinks well below
        // max while the uncore chases the saturated traffic signal.
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Ondemand.build(&mut proc);
        let mut wl = Steady(memory_chunk());
        for _ in 0..400 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert!(
            proc.core_freq() < Freq(20),
            "stalled cores must not stay near max, got {}",
            proc.core_freq()
        );
        assert!(
            proc.uncore_freq() > Freq(25),
            "saturated traffic must raise the uncore, got {}",
            proc.uncore_freq()
        );
        assert_eq!(ctrl.name(), "Ondemand");
        let report = ctrl.report();
        assert_eq!(report.len(), 1);
        assert!(report[0].occurrences >= 400);

        // Compute-bound: pipeline saturated, no traffic — CF at max,
        // uncore at the floor.
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Ondemand.build(&mut proc);
        let compute = Chunk::new(1_000_000, 0, 0).with_profile(CostProfile::new(1.0, 6.0));
        let mut wl = Steady(compute);
        for _ in 0..400 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(proc.core_freq(), HASWELL_2650V3.core.max());
        assert_eq!(proc.uncore_freq(), HASWELL_2650V3.uncore.min());
    }

    #[test]
    fn ondemand_idle_fast_forward_matches_stepping() {
        struct Never;
        impl Workload for Never {
            fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
                None
            }
            fn is_done(&self) -> bool {
                true
            }
            fn next_wake_ns(&self, _: u64) -> Option<u64> {
                None
            }
        }
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = Ondemand::new();
        let mut wl = Steady(memory_chunk());
        for _ in 0..100 {
            proc.step(&mut wl);
            FrequencyController::on_quantum(&mut ctrl, &mut proc);
        }
        // Busy machine: must be stepped for real.
        assert_eq!(ctrl.idle_quanta_capacity(&proc), 0);
        // Idle down to the fixed point by real stepping.
        let mut guard = 0;
        while ctrl.idle_quanta_capacity(&proc) == 0 {
            proc.step(&mut Never);
            FrequencyController::on_quantum(&mut ctrl, &mut proc);
            guard += 1;
            assert!(guard < 1000, "ondemand must reach its idle fixed point");
        }
        // From the fixed point, skipping equals stepping bit for bit.
        let mut p2 = proc.clone();
        let mut c2 = ctrl.clone();
        for _ in 0..37 {
            proc.step(&mut Never);
            FrequencyController::on_quantum(&mut ctrl, &mut proc);
        }
        p2.advance_idle_quanta(37);
        c2.note_idle_quanta(37);
        assert_eq!(proc.core_freq(), p2.core_freq());
        assert_eq!(proc.uncore_freq(), p2.uncore_freq());
        assert_eq!(
            proc.total_energy_joules().to_bits(),
            p2.total_energy_joules().to_bits()
        );
        assert_eq!(ctrl.quanta, c2.quanta);
    }

    #[test]
    fn default_resolves_nothing() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let ctrl = NodePolicy::Default.build(&mut proc);
        assert_eq!(ctrl.resolved_fractions(), (0.0, 0.0));
        assert_eq!(ctrl.report().len(), 1);
        assert!(ctrl.report()[0].cf_opt.is_none());
    }
}
