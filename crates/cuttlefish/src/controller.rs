//! The unified frequency-control plane: every way of driving the two
//! frequency knobs of a simulated package — the firmware-like
//! [`DefaultGovernor`], the paper's [`CuttlefishDriver`], or a fixed
//! [`Pinned`] operating point — behind one object-safe trait.
//!
//! Before this module existed, every consumer (the evaluation harness,
//! the cluster simulator, each example) carried its own
//! `DefaultGovernor`-vs-`CuttlefishDriver` dispatch; adding a
//! controller meant editing all of them. Now consumers hold a
//! `Box<dyn FrequencyController>` built by [`NodePolicy::build`], and a
//! new governor is one `impl` plus one factory arm.

use crate::daemon::NodeReport;
use crate::driver::CuttlefishDriver;
use crate::tipi::TipiSlab;
use crate::Config;
use serde::{Deserialize, Serialize};
use simproc::freq::Freq;
use simproc::governor::DefaultGovernor;
use simproc::SimProcessor;

/// A frequency controller driving one simulated package.
///
/// The engine advances in fixed quanta; after every
/// [`SimProcessor::step`] the controller gets [`on_quantum`] to observe
/// counters and set the core/uncore frequencies for the next quantum.
///
/// [`on_quantum`]: FrequencyController::on_quantum
pub trait FrequencyController {
    /// Observe the last quantum and apply frequency decisions.
    fn on_quantum(&mut self, proc: &mut SimProcessor);

    /// Per-TIPI-range view of what the controller has learned
    /// (Table 2 shape). Static controllers report one synthetic range
    /// covering the whole run; profiling controllers report the ranges
    /// discovered so far — which may be none (the Cuttlefish daemon's
    /// report is empty until its first post-warm-up sample), so
    /// consumers must not assume a non-empty vector.
    fn report(&self) -> Vec<NodeReport>;

    /// Display name (the paper's setup labels).
    fn name(&self) -> &'static str;

    /// Fractions of reported ranges with resolved core / uncore optima.
    fn resolved_fractions(&self) -> (f64, f64) {
        let report = self.report();
        let n = report.len().max(1) as f64;
        let cf = report.iter().filter(|r| r.cf_opt.is_some()).count() as f64;
        let uf = report.iter().filter(|r| r.uf_opt.is_some()).count() as f64;
        (cf / n, uf / n)
    }

    /// Release the machine: restore any platform state captured when
    /// the controller attached (the library's `cuttlefish::stop()`).
    /// Controllers that captured nothing do nothing.
    fn stop(&mut self, proc: &mut SimProcessor) {
        let _ = proc;
    }

    /// How many consecutive idle quanta, starting at `proc`'s current
    /// virtual time, this controller can be fast-forwarded across: its
    /// `on_quantum` over that stretch would neither touch the machine
    /// nor change any state beyond what
    /// [`note_idle_quanta`](Self::note_idle_quanta) replays. The engine
    /// advances `min(capacity, idle stretch)` quanta analytically and
    /// calls `note_idle_quanta` once instead of `on_quantum` per
    /// quantum; a capacity of 0 forces a real per-quantum step (the
    /// conservative default, which reproduces pre-virtual-clock
    /// behaviour exactly for controllers that don't opt in).
    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        let _ = proc;
        0
    }

    /// Account a stretch of `quanta` idle quanta the engine
    /// fast-forwarded past this controller. Only ever called with
    /// `quanta <= idle_quanta_capacity()`; implementations replay
    /// whatever per-quantum bookkeeping their `on_quantum` would have
    /// done (bit-identically), and nothing else.
    fn note_idle_quanta(&mut self, quanta: u64) {
        let _ = quanta;
    }
}

/// Run `wl` to completion under `ctrl`, fast-forwarding any stretch
/// where every core is parked and both the workload
/// ([`simproc::engine::Workload::next_wake_ns`]) and the controller
/// ([`FrequencyController::idle_quanta_capacity`]) declare the quanta
/// uneventful. Numerically identical to the plain
/// step-then-`on_quantum` loop — the fast path performs the same
/// arithmetic analytically (see `SimProcessor::advance_idle`) — and
/// degrades to exactly that loop when either party declines. Returns
/// the virtual seconds elapsed.
pub fn drive(
    proc: &mut SimProcessor,
    wl: &mut dyn simproc::engine::Workload,
    ctrl: &mut dyn FrequencyController,
) -> f64 {
    let start = proc.now_ns();
    while !proc.workload_drained(wl) {
        if proc.cores_parked() {
            let quantum = proc.spec().quantum_ns;
            // How far the workload lets the clock jump; `None` (never
            // wakes again) cannot occur for an undrained workload that
            // terminates, so treat it as one quantum and keep polling.
            let runway = match proc.next_event_ns(wl) {
                Some(event) => (event - proc.now_ns()) / quantum,
                None => 1,
            };
            if runway > 1 {
                let k = (runway - 1).min(ctrl.idle_quanta_capacity(proc));
                if k > 0 {
                    proc.advance_idle_quanta(k);
                    ctrl.note_idle_quanta(k);
                    continue;
                }
            }
        }
        proc.step(wl);
        ctrl.on_quantum(proc);
    }
    (proc.now_ns() - start) as f64 * 1e-9
}

/// One synthetic whole-run range for controllers that do not profile
/// TIPI (label conveys the policy; optima are what the controller has
/// pinned, if anything). `share` is 1.0 — the policy genuinely covers
/// the entire run — so the entry reads as "frequent"; `occurrences`
/// carries the quanta actually observed (zero for controllers that
/// keep no count), letting consumers distinguish a synthetic range
/// from daemon-sampled ones.
fn static_report(
    label: &str,
    cf_opt: Option<Freq>,
    uf_opt: Option<Freq>,
    occurrences: u64,
) -> Vec<NodeReport> {
    vec![NodeReport {
        slab: TipiSlab(0),
        label: label.to_string(),
        cf_opt,
        uf_opt,
        occurrences,
        share: 1.0,
    }]
}

impl FrequencyController for DefaultGovernor {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        DefaultGovernor::on_quantum(self, proc);
    }

    fn report(&self) -> Vec<NodeReport> {
        // The firmware resolves no per-MAP optima; it tracks traffic.
        static_report("firmware-auto", None, None, 0)
    }

    fn name(&self) -> &'static str {
        "Default"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Until the traffic EWMA decays below the ramp and the uncore
        // lands on its idle floor, the firmware moves the knobs every
        // quantum and must be stepped for real; from the fixed point
        // onward only the EWMA decays, which note_idle_quanta replays.
        if self.is_idle_stable(proc) {
            u64::MAX
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        self.skip_idle_quanta(quanta);
    }
}

impl FrequencyController for CuttlefishDriver {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        CuttlefishDriver::on_quantum(self, proc);
    }

    fn report(&self) -> Vec<NodeReport> {
        self.daemon().report()
    }

    fn name(&self) -> &'static str {
        self.daemon().config().policy.name()
    }

    fn resolved_fractions(&self) -> (f64, f64) {
        self.daemon().resolved_fractions()
    }

    fn stop(&mut self, proc: &mut SimProcessor) {
        CuttlefishDriver::stop(self, proc);
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Everything up to the next scheduled Tinv tick is a pure clock
        // comparison; the tick itself (a counter snapshot that feeds the
        // next interval's delta) must run for real.
        CuttlefishDriver::idle_quanta_capacity(self, proc)
    }
    // note_idle_quanta: nothing to replay — the driver's schedule is
    // anchored to the engine's virtual clock, not to call counts.
}

/// A controller that pins both domains at a fixed operating point —
/// the §3.2 motivating sweeps (Figure 3) and any oracle/static-tuning
/// baseline.
#[derive(Debug, Clone)]
pub struct Pinned {
    cf: Freq,
    uf: Freq,
    quanta: u64,
}

impl Pinned {
    /// Pin core at `cf` and uncore at `uf`.
    pub fn new(cf: Freq, uf: Freq) -> Self {
        Pinned { cf, uf, quanta: 0 }
    }

    /// The pinned core frequency.
    pub fn core(&self) -> Freq {
        self.cf
    }

    /// The pinned uncore frequency.
    pub fn uncore(&self) -> Freq {
        self.uf
    }
}

impl FrequencyController for Pinned {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        // Re-assert every quantum: the pin must hold even if something
        // else (a sysadmin model, a test) moved the knobs.
        proc.set_core_freq(self.cf);
        proc.set_uncore_freq(self.uf);
        self.quanta += 1;
    }

    fn report(&self) -> Vec<NodeReport> {
        static_report("pinned", Some(self.cf), Some(self.uf), self.quanta)
    }

    fn name(&self) -> &'static str {
        "Pinned"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Re-asserting an already-applied pin is a no-op; only the
        // quanta counter (report occurrences) needs replaying.
        if proc.core_freq() == proc.spec().core.clamp(self.cf)
            && proc.uncore_freq() == proc.spec().uncore.clamp(self.uf)
        {
            u64::MAX
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        self.quanta += quanta;
    }
}

/// Frequency policy for a node — the factory input shared by the
/// evaluation harness, the cluster simulator, and the examples.
///
/// The policy is plain data (`Clone + PartialEq`, serde-ready): the
/// grid runner in `bench::grid` embeds it in per-cell scenario
/// descriptors that cross thread boundaries and round-trip through
/// JSON artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodePolicy {
    /// `performance` governor + firmware Auto uncore.
    Default,
    /// One Cuttlefish instance with this configuration.
    Cuttlefish(Config),
    /// Both domains pinned at a fixed operating point.
    Pinned {
        /// Core frequency to pin.
        cf: Freq,
        /// Uncore frequency to pin.
        uf: Freq,
    },
}

impl NodePolicy {
    /// Display name of the controller this policy builds.
    pub fn name(&self) -> &'static str {
        match self {
            NodePolicy::Default => "Default",
            NodePolicy::Cuttlefish(cfg) => cfg.policy.name(),
            NodePolicy::Pinned { .. } => "Pinned",
        }
    }

    /// Build the controller for `proc`.
    ///
    /// Takes the processor mutably so controllers that need an initial
    /// actuation can apply it before the first quantum runs: `Pinned`
    /// sets its operating point here (the Figure 3 sweeps measure from
    /// the very first quantum), while `Cuttlefish` keeps its lazy
    /// Algorithm 1 line 2 behaviour (max frequencies on the first
    /// `on_quantum`), bit-identical with driving [`CuttlefishDriver`]
    /// directly.
    pub fn build(&self, proc: &mut SimProcessor) -> Box<dyn FrequencyController> {
        match self {
            NodePolicy::Default => Box::new(DefaultGovernor::new()),
            NodePolicy::Cuttlefish(cfg) => Box::new(CuttlefishDriver::new(proc, cfg.clone())),
            NodePolicy::Pinned { cf, uf } => {
                proc.set_core_freq(*cf);
                proc.set_uncore_freq(*uf);
                Box::new(Pinned::new(*cf, *uf))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;
    use simproc::engine::{Chunk, Workload};
    use simproc::freq::HASWELL_2650V3;
    use simproc::perf::CostProfile;

    struct Steady(Chunk);
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(self.0.clone())
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    fn memory_chunk() -> Chunk {
        Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0))
    }

    #[test]
    fn factory_names_match_policies() {
        assert_eq!(NodePolicy::Default.name(), "Default");
        assert_eq!(
            NodePolicy::Cuttlefish(Config::default()).name(),
            "Cuttlefish"
        );
        assert_eq!(
            NodePolicy::Cuttlefish(Config::default().with_policy(Policy::CoreOnly)).name(),
            "Cuttlefish-Core"
        );
        let pinned = NodePolicy::Pinned {
            cf: Freq(12),
            uf: Freq(22),
        };
        assert_eq!(pinned.name(), "Pinned");
    }

    #[test]
    fn built_controllers_report_uniformly() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        for policy in [
            NodePolicy::Default,
            NodePolicy::Cuttlefish(Config::default()),
            NodePolicy::Pinned {
                cf: Freq(15),
                uf: Freq(20),
            },
        ] {
            let mut ctrl = policy.build(&mut proc);
            let mut wl = Steady(memory_chunk());
            for _ in 0..50 {
                proc.step(&mut wl);
                ctrl.on_quantum(&mut proc);
            }
            assert_eq!(ctrl.name(), policy.name());
            // Uniform contract: a report is never empty (the Cuttlefish
            // daemon is still in warm-up here, so its list is empty and
            // report() returns no ranges — that is the one exception and
            // it resolves once samples arrive; static controllers always
            // report their synthetic range).
            if !matches!(policy, NodePolicy::Cuttlefish(_)) {
                assert!(!ctrl.report().is_empty(), "{} report empty", ctrl.name());
            }
        }
    }

    #[test]
    fn pinned_holds_its_operating_point() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Pinned {
            cf: Freq(15),
            uf: Freq(20),
        }
        .build(&mut proc);
        let mut wl = Steady(memory_chunk());
        for _ in 0..200 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(proc.core_freq(), Freq(15));
        assert_eq!(proc.uncore_freq(), Freq(20));
        // The pin is applied at build time: the residency map must
        // contain only the pinned point.
        assert_eq!(proc.frequency_residency().len(), 1);
        let ((cf, uf), _) = proc.frequency_residency().iter().next().unwrap();
        assert_eq!((*cf, *uf), (15, 20));
        let (rc, ru) = ctrl.resolved_fractions();
        assert_eq!((rc, ru), (1.0, 1.0));
    }

    #[test]
    fn default_resolves_nothing() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let ctrl = NodePolicy::Default.build(&mut proc);
        assert_eq!(ctrl.resolved_fractions(), (0.0, 0.0));
        assert_eq!(ctrl.report().len(), 1);
        assert!(ctrl.report()[0].cf_opt.is_none());
    }
}
